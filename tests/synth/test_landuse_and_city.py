"""Tests for the synthetic land-use map and city assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth import (CityConfig, LandUse, SyntheticCity, UrbanVillageConfig,
                         generate_city, generate_land_use, tiny_city)
from repro.synth.landuse import generate_land_use as generate_land_use_direct


def _small_config(**overrides) -> CityConfig:
    defaults = dict(name="unit", grid_height=20, grid_width=20, seed=3,
                    villages=UrbanVillageConfig(count=4, size_range=(2, 5)))
    defaults.update(overrides)
    return CityConfig(**defaults)


class TestLandUseGeneration:
    def test_shapes_and_value_ranges(self, rng):
        config = _small_config()
        land = generate_land_use(config, rng)
        assert land.land_use.shape == (20, 20)
        assert set(np.unique(land.land_use)).issubset({int(code) for code in LandUse})
        for field in (land.building_density, land.irregularity, land.greenery):
            assert field.shape == (20, 20)
            assert field.min() >= 0.0 and field.max() <= 1.0

    def test_villages_are_contiguous_patches(self, rng):
        config = _small_config()
        land = generate_land_use(config, rng)
        assert len(land.villages) >= 1
        for village in land.villages:
            # contiguity: every cell has at least one 4-neighbour inside the
            # village (trivially true for single-cell patches, which we forbid)
            assert len(village) >= 2
            for (row, col) in village:
                neighbours = {(row + 1, col), (row - 1, col), (row, col + 1), (row, col - 1)}
                assert neighbours & village, "village cell has no neighbour in patch"

    def test_village_cells_marked_in_land_use(self, rng):
        land = generate_land_use(_small_config(), rng)
        for (row, col) in land.village_cells():
            assert land.land_use[row, col] == int(LandUse.URBAN_VILLAGE)

    def test_urban_villages_are_denser_and_more_irregular(self, rng):
        land = generate_land_use(_small_config(grid_height=30, grid_width=30), rng)
        uv_mask = land.land_use == int(LandUse.URBAN_VILLAGE)
        suburb_mask = land.land_use == int(LandUse.SUBURB)
        if uv_mask.sum() and suburb_mask.sum():
            assert land.building_density[uv_mask].mean() > land.building_density[suburb_mask].mean()
            assert land.irregularity[uv_mask].mean() > land.irregularity[suburb_mask].mean()

    def test_downtown_exists_near_centers(self, rng):
        land = generate_land_use(_small_config(), rng)
        assert (land.land_use == int(LandUse.DOWNTOWN)).sum() > 0
        for (row, col) in land.downtown_centers:
            assert 0 <= row < 20 and 0 <= col < 20

    def test_deterministic_given_seed(self):
        config = _small_config()
        a = generate_land_use_direct(config, np.random.default_rng(11))
        b = generate_land_use_direct(config, np.random.default_rng(11))
        np.testing.assert_array_equal(a.land_use, b.land_use)

    def test_zero_villages_supported(self, rng):
        config = _small_config(villages=UrbanVillageConfig(count=0))
        land = generate_land_use(config, rng)
        assert len(land.villages) == 0
        assert (land.land_use == int(LandUse.URBAN_VILLAGE)).sum() == 0


class TestCityConfigValidation:
    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            CityConfig(grid_height=0, grid_width=10)

    def test_invalid_water_fraction(self):
        with pytest.raises(ValueError):
            CityConfig(water_green_fraction=1.2)

    def test_region_center(self):
        config = CityConfig(grid_height=4, grid_width=4, region_size_m=100.0)
        assert config.region_center(0, 0) == (50.0, 50.0)
        assert config.region_center(1, 2) == (250.0, 150.0)

    def test_num_regions(self):
        assert CityConfig(grid_height=6, grid_width=7).num_regions == 42


class TestGenerateCity:
    def test_full_city_assembly(self, tiny_city_data):
        city = tiny_city_data
        assert isinstance(city, SyntheticCity)
        assert city.num_regions == 256
        assert len(city.pois) > 0
        assert city.roads.num_intersections > 0
        assert city.imagery.features.shape == (256, 256)
        assert city.labels.ground_truth.shape == (256,)

    def test_summary_fields(self, tiny_city_data):
        summary = tiny_city_data.summary()
        for key in ("city", "regions", "pois", "road_segments", "true_uv_regions",
                    "labeled_uv", "labeled_non_uv"):
            assert key in summary
        assert summary["labeled_uv"] <= summary["true_uv_regions"]

    def test_reproducible_for_same_config(self):
        a = generate_city(tiny_city(seed=42))
        b = generate_city(tiny_city(seed=42))
        np.testing.assert_array_equal(a.labels.ground_truth, b.labels.ground_truth)
        np.testing.assert_allclose(a.imagery.features, b.imagery.features)
        assert len(a.pois) == len(b.pois)

    def test_different_seeds_differ(self):
        a = generate_city(tiny_city(seed=1))
        b = generate_city(tiny_city(seed=2))
        assert not np.array_equal(a.labels.ground_truth, b.labels.ground_truth) \
            or len(a.pois) != len(b.pois)
