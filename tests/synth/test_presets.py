"""Tests for the city presets mirroring the paper's three datasets."""

from __future__ import annotations

import pytest

from repro.synth import (PAPER_TABLE1, available_presets, beijing_city,
                         fuzhou_city, get_preset, paper_cities, shenzhen_city,
                         tiny_city)


class TestPresets:
    def test_all_presets_listed(self):
        names = available_presets()
        for expected in ("tiny", "mini", "shenzhen", "fuzhou", "beijing"):
            assert expected in names

    def test_get_preset_roundtrip(self):
        config = get_preset("shenzhen")
        assert config.name == "shenzhen"
        assert get_preset("SHENZHEN").name == "shenzhen"

    def test_get_preset_seed_override(self):
        assert get_preset("tiny", seed=99).seed == 99

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            get_preset("atlantis")

    def test_relative_city_sizes_match_paper_ordering(self):
        """Beijing largest, Fuzhou smallest — same ordering as Table I."""
        sizes = {name: config.num_regions for name, config in paper_cities().items()}
        assert sizes["beijing"] > sizes["shenzhen"] > sizes["fuzhou"]
        paper_sizes = {name: stats["regions"] for name, stats in PAPER_TABLE1.items()}
        assert paper_sizes["beijing"] > paper_sizes["shenzhen"] > paper_sizes["fuzhou"]

    def test_beijing_is_most_heterogeneous(self):
        assert beijing_city().downtown_centers > shenzhen_city().downtown_centers

    def test_paper_table1_reference_complete(self):
        for city in ("shenzhen", "fuzhou", "beijing"):
            stats = PAPER_TABLE1[city]
            assert {"regions", "edges", "uvs", "non_uvs"} <= set(stats)

    def test_distinct_seeds_across_cities(self):
        seeds = {shenzhen_city().seed, fuzhou_city().seed, beijing_city().seed,
                 tiny_city().seed}
        assert len(seeds) == 4
