"""Tests for the POI, road-network, imagery and label simulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth import (BASIC_FACILITY_TYPES, POI_CATEGORIES, RADIUS_POI_TYPES,
                         CityConfig, LandUse, UrbanVillageConfig, generate_city,
                         generate_image_features, generate_labels,
                         generate_land_use, generate_pois,
                         generate_road_network, masked_label_subset,
                         pois_per_region, region_pairs_within_hops, tiny_city)


@pytest.fixture(scope="module")
def module_city():
    config = CityConfig(name="module", grid_height=20, grid_width=20, seed=9,
                        villages=UrbanVillageConfig(count=5, size_range=(2, 5)))
    return config, generate_city(config)


class TestPoiCatalogue:
    def test_catalogue_sizes_match_paper(self):
        assert len(POI_CATEGORIES) == 23
        assert len(RADIUS_POI_TYPES) == 15
        assert len(BASIC_FACILITY_TYPES) == 9

    def test_no_duplicate_categories(self):
        assert len(set(POI_CATEGORIES)) == len(POI_CATEGORIES)
        assert len(set(RADIUS_POI_TYPES)) == len(RADIUS_POI_TYPES)


class TestPoiGeneration:
    def test_pois_lie_inside_their_region(self, module_city):
        config, city = module_city
        size = config.region_size_m
        for poi in city.pois[:500]:
            row, col = divmod(poi.region_index, config.grid_width)
            assert col * size <= poi.x <= (col + 1) * size
            assert row * size <= poi.y <= (row + 1) * size

    def test_categories_are_valid(self, module_city):
        _, city = module_city
        assert all(poi.category in POI_CATEGORIES for poi in city.pois)

    def test_downtown_denser_than_suburb(self, module_city):
        config, city = module_city
        counts = pois_per_region(city.pois, config.num_regions)
        land_use = city.land_use.land_use.reshape(-1)
        downtown = counts[land_use == int(LandUse.DOWNTOWN)]
        suburb = counts[land_use == int(LandUse.SUBURB)]
        if downtown.size and suburb.size:
            assert downtown.mean() > suburb.mean()

    def test_urban_villages_lack_basic_facilities(self):
        """UV regions should contain systematically fewer hospitals/schools."""
        config = CityConfig(name="uvpoi", grid_height=30, grid_width=30, seed=4,
                            villages=UrbanVillageConfig(count=10, size_range=(4, 8)))
        land = generate_land_use(config, np.random.default_rng(0))
        pois = generate_pois(config, land, np.random.default_rng(1))
        land_flat = land.land_use.reshape(-1)
        facility_types = {"Hospital", "School", "Subway Station", "Clinic"}
        uv_facilities = sum(1 for p in pois if p.poi_type in facility_types
                            and land_flat[p.region_index] == int(LandUse.URBAN_VILLAGE))
        res_facilities = sum(1 for p in pois if p.poi_type in facility_types
                             and land_flat[p.region_index] == int(LandUse.RESIDENTIAL))
        uv_regions = max((land_flat == int(LandUse.URBAN_VILLAGE)).sum(), 1)
        res_regions = max((land_flat == int(LandUse.RESIDENTIAL)).sum(), 1)
        assert uv_facilities / uv_regions < res_facilities / res_regions

    def test_facility_group_mapping(self, module_city):
        _, city = module_city
        groups = {poi.facility_group for poi in city.pois}
        # every produced group must be a known basic facility group or empty
        assert groups.issubset(set(BASIC_FACILITY_TYPES) | {""})


class TestRoadNetwork:
    def test_nodes_have_coordinates_and_regions(self, module_city):
        config, city = module_city
        graph = city.roads.graph
        assert graph.number_of_nodes() > 0
        for node, data in list(graph.nodes(data=True))[:50]:
            assert 0 <= data["region"] < config.num_regions
            assert 0 <= data["x"] <= config.grid_width * config.region_size_m
            assert 0 <= data["y"] <= config.grid_height * config.region_size_m

    def test_intersections_by_region_consistent(self, module_city):
        _, city = module_city
        for region, nodes in city.roads.intersections_by_region.items():
            for node in nodes:
                assert city.roads.graph.nodes[node]["region"] == region

    def test_region_pairs_within_hops_monotone_in_hops(self, module_city):
        config, city = module_city
        few = region_pairs_within_hops(city.roads, 2, config.num_regions)
        many = region_pairs_within_hops(city.roads, 5, config.num_regions)
        assert set(few).issubset(set(many))
        assert len(many) >= len(few)

    def test_region_pairs_exclude_self_pairs(self, module_city):
        config, city = module_city
        pairs = region_pairs_within_hops(city.roads, 3, config.num_regions)
        assert all(a != b for a, b in pairs)
        assert all(a < b for a, b in pairs)

    def test_zero_hops_yields_no_pairs_between_regions(self, module_city):
        config, city = module_city
        assert region_pairs_within_hops(city.roads, 0, config.num_regions) == []

    def test_negative_hops_raises(self, module_city):
        config, city = module_city
        with pytest.raises(ValueError):
            region_pairs_within_hops(city.roads, -1, config.num_regions)


class TestImagery:
    def test_feature_shapes(self, module_city):
        config, city = module_city
        assert city.imagery.features.shape == (config.num_regions,
                                               config.imagery.feature_dim)
        assert city.imagery.latent.shape == (config.num_regions,
                                             config.imagery.latent_dim)

    def test_features_nonnegative_like_vgg_relu_output(self, module_city):
        _, city = module_city
        # The simulated extractor ends with a ReLU plus small noise, so values
        # should be (almost) all non-negative.
        fraction_negative = (city.imagery.features < -0.5).mean()
        assert fraction_negative < 0.01

    def test_uv_regions_visually_distinct_from_suburbs(self, module_city):
        config, city = module_city
        land_flat = city.land_use.land_use.reshape(-1)
        uv = city.imagery.latent[land_flat == int(LandUse.URBAN_VILLAGE)]
        suburb = city.imagery.latent[land_flat == int(LandUse.SUBURB)]
        if len(uv) and len(suburb):
            # density * irregularity channel (index 3) separates them on average
            assert uv[:, 3].mean() > suburb[:, 3].mean()

    def test_deterministic(self, module_city):
        config, _ = module_city
        land = generate_land_use(config, np.random.default_rng(5))
        a = generate_image_features(config, land, np.random.default_rng(6))
        b = generate_image_features(config, land, np.random.default_rng(6))
        np.testing.assert_allclose(a.features, b.features)


class TestLabels:
    def test_label_consistency(self, module_city):
        _, city = module_city
        labels = city.labels
        # labelled mask and labels agree
        assert (labels.labels[~labels.labeled_mask] == -1).all()
        assert set(np.unique(labels.labels[labels.labeled_mask])).issubset({0, 1})

    def test_labeled_uvs_are_subset_of_ground_truth(self, module_city):
        _, city = module_city
        labels = city.labels
        labeled_uv = np.flatnonzero((labels.labels == 1) & labels.labeled_mask)
        true_uv = set(np.flatnonzero(labels.ground_truth == 1))
        # Crowdsourcing false positives are rare; allow at most one stray label.
        stray = sum(1 for index in labeled_uv if index not in true_uv)
        assert stray <= 1

    def test_label_scarcity_regime(self, module_city):
        config, city = module_city
        labels = city.labels
        # Only a minority of regions is labelled, as in the paper.
        assert labels.labeled_mask.sum() < 0.6 * config.num_regions
        # Not all true UVs are discovered.
        assert labels.num_labeled_uv <= labels.ground_truth.sum()

    def test_ground_truth_only_on_village_cells(self, module_city):
        _, city = module_city
        village_cells = {row * city.config.grid_width + col
                         for row, col in city.land_use.village_cells()}
        for index in np.flatnonzero(city.labels.ground_truth == 1):
            assert index in village_cells

    def test_masked_label_subset_ratio(self, module_city):
        _, city = module_city
        rng = np.random.default_rng(0)
        masked = masked_label_subset(city.labels, 0.5, rng)
        original = city.labels.labeled_mask.sum()
        assert masked.labeled_mask.sum() == pytest.approx(original * 0.5, abs=1)
        # masked labels must be a subset of the original labelled set
        assert np.all(city.labels.labeled_mask[masked.labeled_mask])

    def test_masked_label_subset_invalid_ratio(self, module_city):
        _, city = module_city
        with pytest.raises(ValueError):
            masked_label_subset(city.labels, 0.0, np.random.default_rng(0))
