"""Tests for every Table II baseline detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (BaselineTrainingConfig, GATDetector, GCNDetector,
                             ImGAGNConfig, ImGAGNDetector, MLPDetector,
                             MMREConfig, MMREDetector, MUVFCNDetector,
                             TABLE2_METHODS, UVLensDetector, available_methods,
                             histogram_equalize, make_detector)
from repro.baselines.gnn_layers import GATLayer, GCNLayer
from repro.nn.tensor import Tensor
from repro.urg import build_urg_variant
from repro.urg.relations import to_directed_edge_index

FAST = BaselineTrainingConfig(epochs=12, patience=None, seed=0)


def _train_indices(graph):
    return graph.labeled_indices()


class TestGnnLayers:
    def test_gcn_layer_shapes_and_grad(self, rng):
        layer = GCNLayer(5, 3, rng)
        x = Tensor(rng.normal(size=(6, 5)), requires_grad=True)
        edge_index = to_directed_edge_index([(0, 1), (1, 2), (4, 5)])
        out = layer(x, edge_index, 6)
        assert out.shape == (6, 3)
        (out * out).sum().backward()
        assert layer.linear.weight.grad is not None

    def test_gcn_isolated_node_keeps_self_information(self, rng):
        layer = GCNLayer(4, 4, rng, activation="identity")
        x = Tensor(np.eye(4)[:3])
        out = layer(x, np.zeros((2, 0), dtype=np.int64), 3)
        # with only self-loops, each row is just the transformed own feature
        expected = layer.linear(x).data
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_gat_layer_shapes(self, rng):
        layer = GATLayer(5, 6, rng, heads=2)
        x = Tensor(rng.normal(size=(4, 5)))
        out = layer(x, to_directed_edge_index([(0, 1), (2, 3)]), 4)
        assert out.shape == (4, 6)


class TestSimpleBaselines:
    @pytest.mark.parametrize("detector_cls", [MLPDetector, GCNDetector, GATDetector,
                                              MUVFCNDetector, UVLensDetector])
    def test_fit_predict_cycle(self, tiny_graph_small_image, detector_cls):
        graph = tiny_graph_small_image
        if detector_cls is UVLensDetector:
            detector = detector_cls(training=FAST, head_widths=(64, 32))
        else:
            detector = detector_cls(training=FAST)
        detector.fit(graph, _train_indices(graph))
        probs = detector.predict_proba(graph)
        assert probs.shape == (graph.num_nodes,)
        assert (probs >= 0).all() and (probs <= 1).all()
        assert detector.num_parameters() > 0
        assert len(detector.history) > 0
        assert detector.history[-1] <= detector.history[0]

    def test_predict_before_fit_raises(self, tiny_graph_small_image):
        with pytest.raises(RuntimeError):
            MLPDetector(training=FAST).predict_proba(tiny_graph_small_image)

    def test_fit_rejects_unlabeled_indices(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        with pytest.raises(ValueError):
            MLPDetector(training=FAST).fit(graph, graph.unlabeled_indices()[:4])

    def test_fit_rejects_empty_indices(self, tiny_graph_small_image):
        with pytest.raises(ValueError):
            MLPDetector(training=FAST).fit(tiny_graph_small_image, np.array([], dtype=int))

    def test_mlp_learns_training_labels(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = MLPDetector(training=BaselineTrainingConfig(epochs=120, seed=0))
        train = _train_indices(graph)
        detector.fit(graph, train)
        probs = detector.predict_proba(graph)[train]
        labels = graph.labels[train]
        assert probs[labels == 1].mean() > probs[labels == 0].mean()

    def test_image_only_methods_require_image_features(self, tiny_city_data):
        graph = build_urg_variant(tiny_city_data, "noImage")
        with pytest.raises(ValueError):
            MUVFCNDetector(training=FAST).fit(graph, _train_indices(graph))
        with pytest.raises(ValueError):
            UVLensDetector(training=FAST).fit(graph, _train_indices(graph))

    def test_mlp_handles_poi_only_graph(self, tiny_city_data):
        graph = build_urg_variant(tiny_city_data, "noImage")
        detector = MLPDetector(training=FAST)
        detector.fit(graph, _train_indices(graph))
        assert detector.predict_proba(graph).shape == (graph.num_nodes,)

    def test_histogram_equalize_normalises_rows(self, rng):
        x = rng.normal(loc=3.0, scale=2.0, size=(10, 30))
        out = histogram_equalize(x)
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-6)

    def test_uvlens_is_largest_model(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        train = _train_indices(graph)
        uvlens = UVLensDetector(training=FAST)
        uvlens.fit(graph, train)
        mlp = MLPDetector(training=FAST)
        mlp.fit(graph, train)
        assert uvlens.num_parameters() > mlp.num_parameters()


class TestMMRE:
    def test_fit_predict(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        config = MMREConfig(embedding_epochs=6, classifier_epochs=20, seed=0)
        detector = MMREDetector(config)
        detector.fit(graph, _train_indices(graph))
        probs = detector.predict_proba(graph)
        assert probs.shape == (graph.num_nodes,)
        assert len(detector.embedding_history) == 6
        assert len(detector.classifier_history) == 20
        assert detector.num_parameters() > 0

    def test_embedding_loss_decreases(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = MMREDetector(MMREConfig(embedding_epochs=15, classifier_epochs=5))
        detector.fit(graph, _train_indices(graph))
        assert detector.embedding_history[-1] < detector.embedding_history[0]

    def test_poi_only_graph_supported(self, tiny_city_data):
        graph = build_urg_variant(tiny_city_data, "noImage")
        detector = MMREDetector(MMREConfig(embedding_epochs=4, classifier_epochs=8))
        detector.fit(graph, graph.labeled_indices())
        assert detector.predict_proba(graph).shape == (graph.num_nodes,)


class TestImGAGN:
    def test_fit_predict(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        config = ImGAGNConfig(generator_epochs=4, discriminator_steps=2, seed=0)
        detector = ImGAGNDetector(config)
        detector.fit(graph, _train_indices(graph))
        probs = detector.predict_proba(graph)
        assert probs.shape == (graph.num_nodes,)
        assert detector.num_parameters() > 0

    def test_synthetic_nodes_proportional_to_minority(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        train = _train_indices(graph)
        n_uv = int((graph.labels[train] == 1).sum())
        config = ImGAGNConfig(generator_epochs=2, discriminator_steps=1,
                              minority_ratio=1.0)
        detector = ImGAGNDetector(config)
        detector.fit(graph, train)
        # the generator's link head has one output per real labelled UV node
        assert detector.generator.link_head.out_features == n_uv

    def test_handles_training_fold_without_uvs(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        train = _train_indices(graph)
        only_negatives = train[graph.labels[train] == 0][:10]
        detector = ImGAGNDetector(ImGAGNConfig(generator_epochs=2,
                                               discriminator_steps=1))
        detector.fit(graph, only_negatives)
        assert detector.predict_proba(graph).shape == (graph.num_nodes,)


class TestRegistry:
    def test_table2_method_list(self):
        assert TABLE2_METHODS[-1] == "CMSF"
        assert len(TABLE2_METHODS) == 8

    def test_available_methods_include_variants(self):
        methods = available_methods()
        for name in ("CMSF-M", "CMSF-G", "CMSF-H"):
            assert name in methods

    @pytest.mark.parametrize("name", ["MLP", "GCN", "GAT", "MMRE", "UVLens",
                                      "MUVFCN", "ImGAGN", "CMSF", "CMSF-G"])
    def test_factory_builds_each_method(self, name):
        detector = make_detector(name, seed=3, epochs=10)
        assert detector is not None
        assert hasattr(detector, "fit") and hasattr(detector, "predict_proba")

    def test_factory_unknown_method(self):
        with pytest.raises(KeyError):
            make_detector("ResNet")

    def test_factory_epoch_override(self):
        detector = make_detector("MLP", epochs=7)
        assert detector.training_config.epochs == 7
        cmsf = make_detector("CMSF", epochs=30)
        assert cmsf.config.master_epochs == 30
        assert cmsf.config.slave_epochs == 10

    def test_factory_seed_propagates(self):
        assert make_detector("GAT", seed=11).training_config.seed == 11
        assert make_detector("CMSF", seed=11).config.seed == 11
