"""Tests for the extra comparators (index-based classic ML, semi-lazy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (BaselineTrainingConfig, EXTRA_METHODS, IndexBasedDetector,
                             SemiLazyConfig, SemiLazyDetector, available_methods,
                             hand_crafted_indices, make_detector)

FAST = BaselineTrainingConfig(epochs=150, learning_rate=5e-3, patience=None, seed=0)


def _train_indices(graph):
    return graph.labeled_indices()


class TestHandCraftedIndices:
    def test_shape_and_standardisation(self, tiny_graph):
        indices = hand_crafted_indices(tiny_graph)
        assert indices.shape[0] == tiny_graph.num_nodes
        assert indices.shape[1] <= 20
        np.testing.assert_allclose(indices.mean(axis=0), 0.0, atol=1e-8)

    def test_poi_only_graph_still_works(self, tiny_city_data):
        from repro.urg import UrgBuildConfig, build_urg_variant
        graph = build_urg_variant(tiny_city_data, "noImage", UrgBuildConfig())
        indices = hand_crafted_indices(graph)
        assert indices.shape[1] == 4


class TestIndexBasedDetector:
    def test_learns_better_than_chance_on_training_data(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = IndexBasedDetector(training=FAST)
        detector.fit(graph, _train_indices(graph))
        probs = detector.predict_proba(graph)
        assert probs.shape == (graph.num_nodes,)
        assert (probs >= 0).all() and (probs <= 1).all()
        labeled = graph.labeled_indices()
        uv_mean = probs[labeled][graph.labels[labeled] == 1].mean()
        non_uv_mean = probs[labeled][graph.labels[labeled] == 0].mean()
        assert uv_mean > non_uv_mean

    def test_num_parameters_is_small(self, tiny_graph_small_image):
        detector = IndexBasedDetector(training=FAST)
        detector.fit(tiny_graph_small_image, _train_indices(tiny_graph_small_image))
        assert 0 < detector.num_parameters() < 50


class TestSemiLazyDetector:
    def test_predictions_are_probabilities(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = SemiLazyDetector(SemiLazyConfig(k_neighbors=7))
        detector.fit(graph, _train_indices(graph))
        probs = detector.predict_proba(graph)
        assert probs.shape == (graph.num_nodes,)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_training_regions_get_confident_predictions(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = SemiLazyDetector(SemiLazyConfig(k_neighbors=5))
        detector.fit(graph, _train_indices(graph))
        probs = detector.predict_proba(graph)
        labeled = graph.labeled_indices()
        uv_mean = probs[labeled][graph.labels[labeled] == 1].mean()
        non_uv_mean = probs[labeled][graph.labels[labeled] == 0].mean()
        assert uv_mean > non_uv_mean + 0.1

    def test_k_larger_than_training_set_is_clamped(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = SemiLazyDetector(SemiLazyConfig(k_neighbors=10_000))
        detector.fit(graph, _train_indices(graph))
        probs = detector.predict_proba(graph)
        # With k = full training set, every region gets a similar smoothed value.
        assert probs.std() < 0.5

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SemiLazyConfig(k_neighbors=0)
        with pytest.raises(ValueError):
            SemiLazyConfig(bandwidth_scale=0.0)

    def test_predict_before_fit_raises(self, tiny_graph_small_image):
        with pytest.raises(RuntimeError):
            SemiLazyDetector().predict_proba(tiny_graph_small_image)


class TestRegistryIntegration:
    def test_extra_methods_listed(self):
        names = available_methods()
        for method in EXTRA_METHODS:
            assert method in names

    @pytest.mark.parametrize("name", EXTRA_METHODS)
    def test_make_detector_builds_extras(self, name):
        detector = make_detector(name, seed=1, epochs=10)
        assert detector.name == name
