"""End-to-end contracts of the EdgePlan refactor and the dtype knob.

* training with the precomputed plans (the default) must reproduce the
  legacy per-call kernels **bit-for-bit** in float64, including through a
  saved-bundle round trip;
* the float32 fast path must train a usable detector whose artefacts record
  and enforce their precision.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CMSFConfig, CMSFDetector
from repro.nn.tensor import get_default_dtype
from repro.serve import InferenceEngine, load_bundle, save_bundle

FAST = dict(hidden_dim=16, image_reduce_dim=16, classifier_hidden=8,
            maga_layers=1, maga_heads=2, num_clusters=6, context_dim=8,
            master_epochs=10, slave_epochs=4, patience=None, dropout=0.0,
            seed=0)


def _fit(graph, **overrides):
    config = CMSFConfig(**{**FAST, **overrides})
    return CMSFDetector(config).fit(graph, graph.labeled_indices())


@pytest.fixture(scope="module")
def graph(tiny_graph_small_image):
    return tiny_graph_small_image


@pytest.fixture(scope="module")
def legacy_scores(graph):
    """Predictions of the pre-refactor path (per-call kernels, float64)."""
    return _fit(graph, use_edge_plan=False).predict_proba(graph)


class TestFloat64BitIdentity:
    def test_plan_training_matches_legacy_bit_for_bit(self, graph, legacy_scores):
        planned = _fit(graph, use_edge_plan=True)
        np.testing.assert_array_equal(planned.predict_proba(graph), legacy_scores)

    def test_bundle_roundtrip_matches_legacy_bit_for_bit(self, graph, legacy_scores,
                                                         tmp_path):
        detector = _fit(graph, use_edge_plan=True)
        save_bundle(detector, tmp_path / "bundle", graph, name="plan-test")
        loaded = load_bundle(tmp_path / "bundle")
        np.testing.assert_array_equal(loaded.detector.predict_proba(graph),
                                      legacy_scores)

    def test_default_dtype_restored_after_fit(self, graph):
        _fit(graph, dtype="float32")
        assert get_default_dtype() == np.float64


class TestFloat32FastPath:
    def test_parameters_and_output_are_float32(self, graph):
        detector = _fit(graph, dtype="float32")
        stage = detector.slave_result.stage
        assert all(p.data.dtype == np.float32 for p in stage.parameters())
        scores = detector.predict_proba(graph)
        assert scores.dtype == np.float32
        assert np.isfinite(scores).all()
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_close_to_float64_results(self, graph):
        f64 = _fit(graph).predict_proba(graph)
        f32 = _fit(graph, dtype="float32").predict_proba(graph)
        # Training trajectories diverge in low precision; the detector must
        # still land on essentially the same scores on this tiny problem.
        assert np.abs(f32.astype(np.float64) - f64).mean() < 0.05

    def test_bundle_records_and_reproduces_dtype(self, graph, tmp_path):
        detector = _fit(graph, dtype="float32")
        reference = detector.predict_proba(graph)
        save_bundle(detector, tmp_path / "bundle32", graph, name="f32")
        bundle = load_bundle(tmp_path / "bundle32")
        assert bundle.manifest.dtype == "float32"
        assert bundle.detector.config.dtype == "float32"
        np.testing.assert_array_equal(bundle.detector.predict_proba(graph),
                                      reference)
        engine = InferenceEngine.from_bundle(bundle)
        np.testing.assert_array_equal(engine.predict_proba(graph), reference)

    def test_engine_rejects_manifest_dtype_mismatch(self, graph):
        detector = _fit(graph)  # float64
        with pytest.raises(ValueError, match="dtype"):
            InferenceEngine(detector, expected_dtype="float32")


class TestValInterval:
    def test_interval_skips_validation_forwards(self, graph):
        # With a validation split, interval > 1 must still train and select
        # a model; the histories stay full-length (loss is recorded every
        # epoch, only the monitoring forward is skipped).
        sparse_val = _fit(graph, validation_fraction=0.3, val_interval=5)
        every_epoch = _fit(graph, validation_fraction=0.3, val_interval=1)
        assert len(sparse_val.training_history()["master"]) == FAST["master_epochs"]
        assert len(every_epoch.training_history()["master"]) == FAST["master_epochs"]
        scores = sparse_val.predict_proba(graph)
        assert np.isfinite(scores).all()

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            CMSFConfig(val_interval=0)
        with pytest.raises(ValueError):
            CMSFConfig(dtype="float16")
