"""Equivalence tests for delta-localised incremental scoring.

The acceptance contract: for float64 detectors, ``subset_rescore`` with the
``"wavefront"`` strategy produces scores **bit-identical** to a
full-rebuild ``predict_proba`` of the updated graph — across seeded delta
sequences covering feature patches, edge rewiring, region growth and
removal, every ablation variant, and deltas placed right at (and across)
the labelled-region boundary.  The ``"subgraph"`` strategy restricts all
work to the induced halo subgraph and is held to float64 round-off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (CMSFConfig, CMSFDetector, build_score_cache,
                        delta_seeds, subset_rescore)
from repro.nn.graphops import EdgePlan
from repro.stream import GraphDelta
from repro.synth import EvolutionConfig, generate_evolution

BASE = dict(hidden_dim=16, image_reduce_dim=16, classifier_hidden=8,
            maga_layers=1, maga_heads=2, num_clusters=6, context_dim=8,
            master_epochs=8, slave_epochs=4, patience=None, dropout=0.0,
            seed=0)


def _fit(graph, **overrides):
    config = dict(BASE)
    config.update(overrides)
    detector = CMSFDetector(CMSFConfig(**config))
    return detector.fit(graph, graph.labeled_indices())


def _walk(detector, graph, deltas, strategy):
    """Apply ``deltas`` incrementally; yield (kind, incremental, oracle)."""
    plan = EdgePlan.for_graph(graph)
    cache = build_score_cache(detector, graph, plan)
    current = graph
    for delta in deltas:
        updated = delta.apply(current)
        seeds = delta_seeds(delta, current)
        if delta.touches_topology:
            plan = EdgePlan.for_graph(updated)
        result = subset_rescore(detector, updated, plan, seeds, cache,
                                strategy=strategy)
        yield delta.kind, result, detector.predict_proba(updated)
        current, cache = updated, result.cache


def _evolution(graph, seed, steps=8):
    return generate_evolution(graph, EvolutionConfig(
        steps=steps, seed=seed,
        scenarios=("poi_churn", "road_rewiring", "imagery_refresh",
                   "region_growth")))


class TestWavefrontBitIdentity:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_mixed_delta_sequences(self, tiny_graph_small_image, seed):
        graph = tiny_graph_small_image
        detector = _fit(graph)
        for kind, result, oracle in _walk(detector, graph,
                                          _evolution(graph, seed), "wavefront"):
            assert oracle.dtype == np.float64
            assert np.array_equal(result.scores, oracle), kind

    @pytest.mark.parametrize("overrides", [
        dict(use_gate=False),
        dict(use_gate=False, use_gscm=False),
        dict(use_maga=False),
        dict(maga_layers=2),
        dict(maga_aggregation="sum"),
        dict(maga_aggregation="concat"),
        dict(cluster_aggregation="concat", use_gate=False),
    ], ids=["no-gate", "no-hierarchy", "no-maga", "two-layers", "agg-sum",
            "agg-concat", "cluster-concat"])
    def test_across_variants(self, tiny_graph_small_image, overrides):
        graph = tiny_graph_small_image
        detector = _fit(graph, **overrides)
        for kind, result, oracle in _walk(detector, graph,
                                          _evolution(graph, 7, steps=6),
                                          "wavefront"):
            assert np.array_equal(result.scores, oracle), kind

    def test_region_deltas_are_refused(self, tiny_graph_small_image):
        """Region growth/removal changes the node count — and with it the
        shape of every per-node BLAS product, which is exactly what the
        bit-stability guarantee rests on.  ``subset_rescore`` must refuse
        rather than return almost-right scores; the streaming layer routes
        these through the full path (covered in the streaming tests)."""
        graph = tiny_graph_small_image
        detector = _fit(graph)
        plan = EdgePlan.for_graph(graph)
        cache = build_score_cache(detector, graph, plan)
        shrink = GraphDelta(kind="shrink",
                            remove_regions=np.array([10, 20, 30]))
        updated = shrink.apply(graph)
        seeds = delta_seeds(shrink, graph)
        assert seeds.num_removed == 3
        with pytest.raises(ValueError, match="adds or removes regions"):
            subset_rescore(detector, updated, EdgePlan.for_graph(updated),
                           seeds, cache)
        smaller = updated
        grow = generate_evolution(smaller, EvolutionConfig(
            steps=1, seed=3, scenarios=("region_growth",)))
        assert grow, "removals must free grid cells for growth"
        grown = grow[0].apply(smaller)
        seeds = delta_seeds(grow[0], smaller)
        assert seeds.num_added > 0
        with pytest.raises(ValueError, match="adds or removes regions"):
            subset_rescore(detector, grown, EdgePlan.for_graph(grown),
                           seeds, cache)

    def test_deltas_at_and_across_the_labeled_boundary(
            self, tiny_graph_small_image):
        """Halo-boundary cases: patches adjacent to, and overlapping, the
        labelled mask behave no differently from any other region — the
        receptive field is structural, not label-aware."""
        graph = tiny_graph_small_image
        detector = _fit(graph)
        plan = EdgePlan.for_graph(graph)
        labeled = np.flatnonzero(graph.labeled_mask)
        src, dst = graph.edge_index
        boundary_mask = np.zeros(graph.num_nodes, dtype=bool)
        boundary_mask[dst[graph.labeled_mask[src]]] = True
        boundary_mask[labeled] = False
        adjacent = np.flatnonzero(boundary_mask)
        rng = np.random.default_rng(13)
        cases = {
            "overlapping-labels": labeled[:4],
            "adjacent-to-labels": adjacent[:4],
            "straddling": np.sort(np.concatenate([labeled[:2], adjacent[:2]])),
        }
        cache = build_score_cache(detector, graph, plan)
        for name, rows in cases.items():
            delta = GraphDelta(
                kind=name, poi_rows=rows,
                poi_values=graph.x_poi[rows]
                + rng.normal(0, 0.3, (rows.size, graph.poi_dim)))
            updated = delta.apply(graph)
            seeds = delta_seeds(delta, graph)
            result = subset_rescore(detector, updated, plan, seeds, cache)
            assert np.array_equal(result.scores,
                                  detector.predict_proba(updated)), name

    def test_empty_delta_returns_cached_scores(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = _fit(graph)
        plan = EdgePlan.for_graph(graph)
        cache = build_score_cache(detector, graph, plan)
        delta = GraphDelta(kind="empty")
        seeds = delta_seeds(delta, graph)
        assert seeds.is_empty
        result = subset_rescore(detector, graph, plan, seeds, cache)
        assert result.interior.size == 0
        assert np.array_equal(result.scores, cache.scores)

    def test_float32_matches_to_roundoff(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = _fit(graph, dtype="float32")
        for kind, result, oracle in _walk(detector, graph,
                                          _evolution(graph, 3, steps=4),
                                          "wavefront"):
            assert result.scores.dtype == np.float32
            np.testing.assert_allclose(result.scores, oracle,
                                       rtol=1e-4, atol=1e-5, err_msg=kind)


class TestSubgraphStrategy:
    @pytest.mark.parametrize("seed", [3, 17])
    def test_matches_oracle_to_roundoff(self, tiny_graph_small_image, seed):
        graph = tiny_graph_small_image
        detector = _fit(graph)
        for kind, result, oracle in _walk(detector, graph,
                                          _evolution(graph, seed, steps=6),
                                          "subgraph"):
            np.testing.assert_allclose(result.scores, oracle,
                                       rtol=0, atol=1e-11, err_msg=kind)

    def test_interior_is_receptive_field(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = _fit(graph)
        plan = EdgePlan.for_graph(graph)
        cache = build_score_cache(detector, graph, plan)
        rows = np.array([17])
        delta = GraphDelta(kind="poke", poi_rows=rows,
                           poi_values=graph.x_poi[rows] + 1.0)
        updated = delta.apply(graph)
        result = subset_rescore(detector, updated, plan,
                                delta_seeds(delta, graph), cache,
                                strategy="subgraph")
        from repro.nn.graphops import affected_regions
        expected = affected_regions(plan, rows, 1, direction="out")
        assert result.interior.tolist() == expected.tolist()
        assert result.strategy == "subgraph"


class TestApiSurface:
    def test_build_score_cache_matches_predict(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = _fit(graph)
        cache = detector.build_score_cache(graph)
        assert np.array_equal(cache.scores, detector.predict_proba(graph))
        assert cache.num_nodes == graph.num_nodes
        assert cache.nbytes() > 0

    def test_predict_proba_subset_public_api(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = _fit(graph)
        cache = detector.build_score_cache(graph)
        touched = np.array([3, 40])
        patched = graph.x_poi.copy()
        patched[touched] += 0.5
        updated = GraphDelta(kind="edit", poi_rows=touched,
                             poi_values=patched[touched]).apply(graph)
        result = detector.predict_proba_subset(updated, touched, cache=cache)
        assert np.array_equal(result.scores, detector.predict_proba(updated))
        assert touched.tolist() == sorted(
            set(touched.tolist()) & set(result.interior.tolist()))

    def test_predict_proba_subset_requires_cache(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = _fit(graph)
        with pytest.raises(ValueError, match="score cache"):
            detector.predict_proba_subset(graph, [0])

    def test_subset_rescore_rejects_bad_strategy(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = _fit(graph)
        cache = detector.build_score_cache(graph)
        plan = EdgePlan.for_graph(graph)
        delta = GraphDelta(kind="noop", poi_rows=np.array([0]),
                           poi_values=graph.x_poi[:1])
        with pytest.raises(ValueError, match="strategy"):
            subset_rescore(detector, graph, plan, delta_seeds(delta, graph),
                           cache, strategy="telepathy")

    def test_stale_cache_rejected(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = _fit(graph)
        cache = detector.build_score_cache(graph)
        # a cache whose row count disagrees with the graph must be refused
        smaller = GraphDelta(kind="shrink", remove_regions=np.array([0]))
        updated = smaller.apply(graph)
        seeds = delta_seeds(GraphDelta(kind="edit", poi_rows=np.array([1]),
                                       poi_values=graph.x_poi[1:2]), updated)
        plan = EdgePlan.for_graph(updated)
        with pytest.raises(ValueError, match="different version"):
            subset_rescore(detector, updated, plan, seeds, cache)
