"""Tests for the design-choice ablation switches (DESIGN.md §4).

The paper fixes two design choices that are worth ablating: the binarised
regions -> clusters message collection (Eq. 10) and the positive-unlabeled
rank loss of the pseudo-label predictor (Eq. 18).  Both have configuration
switches with paper-faithful defaults; these tests cover the alternative
settings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CMSFConfig, CMSFDetector, GlobalSemanticClustering
from repro.eval import block_kfold
from repro.nn.tensor import Tensor

FAST = dict(hidden_dim=16, image_reduce_dim=16, classifier_hidden=8, maga_layers=1,
            maga_heads=2, num_clusters=6, context_dim=8, master_epochs=12,
            slave_epochs=5, patience=None, dropout=0.0, seed=0)


class TestSoftCollection:
    def test_soft_and_hard_collection_differ(self, rng):
        local = Tensor(rng.normal(size=(30, 8)), requires_grad=True)
        hard_module = GlobalSemanticClustering(8, 4, rng, hard_collection=True)
        soft_module = GlobalSemanticClustering(8, 4, rng, hard_collection=False)
        soft_module.load_state_dict(hard_module.state_dict())
        hard_out = hard_module(local)
        soft_out = soft_module(local)
        assert hard_out.cluster_repr.shape == soft_out.cluster_repr.shape == (4, 8)
        assert not np.allclose(hard_out.cluster_repr.data, soft_out.cluster_repr.data)

    def test_soft_collection_gradients_flow_to_assignment_weights(self, rng):
        module = GlobalSemanticClustering(6, 3, rng, hard_collection=False)
        local = Tensor(rng.normal(size=(12, 6)), requires_grad=True)
        module(local).enhanced.sum().backward()
        assert module.assign.weight.grad is not None
        assert np.abs(module.assign.weight.grad).sum() > 0

    def test_detector_trains_with_soft_collection(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        split = block_kfold(graph, n_folds=3, seed=0)[0]
        config = CMSFConfig(gscm_hard_collection=False, **FAST)
        detector = CMSFDetector(config).fit(graph, split.train_indices)
        scores = detector.predict_proba(graph)
        assert np.isfinite(scores).all()
        assert 0.0 <= scores.min() and scores.max() <= 1.0


class TestPseudoLabelLoss:
    def test_bce_option_trains(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        split = block_kfold(graph, n_folds=3, seed=0)[0]
        config = CMSFConfig(pseudo_label_loss="bce", **FAST)
        detector = CMSFDetector(config).fit(graph, split.train_indices)
        history = detector.training_history()
        assert len(history["slave_rank"]) > 0
        assert all(np.isfinite(history["slave_rank"]))

    def test_invalid_loss_name_rejected(self):
        with pytest.raises(ValueError):
            CMSFConfig(pseudo_label_loss="hinge")

    def test_default_config_is_paper_faithful(self):
        config = CMSFConfig()
        assert config.pseudo_label_loss == "rank"
        assert config.gscm_hard_collection is True
