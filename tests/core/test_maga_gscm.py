"""Tests for the MAGA and GSCM building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gscm import GlobalSemanticClustering
from repro.core.maga import ContextAggregator, EdgeAttention, MAGAEncoder, MAGALayer
from repro.nn.tensor import Tensor
from repro.urg.relations import to_directed_edge_index


def _line_graph(num_nodes: int) -> np.ndarray:
    """Directed edge index of a path graph 0-1-2-...-n."""
    return to_directed_edge_index([(i, i + 1) for i in range(num_nodes - 1)])


class TestEdgeAttention:
    def test_output_shape_multi_head(self, rng):
        attention = EdgeAttention(dst_dim=5, src_dim=5, out_dim=8, heads=2, rng=rng,
                                  share_transform=True)
        x = Tensor(rng.normal(size=(6, 5)))
        out = attention(x, x, _line_graph(6), 6)
        assert out.shape == (6, 8)

    def test_cross_modal_dimensions(self, rng):
        attention = EdgeAttention(dst_dim=4, src_dim=10, out_dim=6, heads=1, rng=rng)
        x_dst = Tensor(rng.normal(size=(5, 4)))
        x_src = Tensor(rng.normal(size=(5, 10)))
        out = attention(x_dst, x_src, _line_graph(5), 5)
        assert out.shape == (5, 6)

    def test_isolated_node_gets_zero_message(self, rng):
        attention = EdgeAttention(4, 4, 4, 1, rng, share_transform=True)
        x = Tensor(rng.normal(size=(3, 4)))
        # only an edge 0 -> 1; node 2 receives nothing (ELU(0) = 0)
        edge_index = np.array([[0], [1]])
        out = attention(x, x, edge_index, 3)
        np.testing.assert_allclose(out.data[2], 0.0, atol=1e-12)

    def test_invalid_head_split(self, rng):
        with pytest.raises(ValueError):
            EdgeAttention(4, 4, 7, 2, rng)

    def test_gradients_flow_to_attention_parameters(self, rng):
        attention = EdgeAttention(4, 4, 4, 2, rng, share_transform=True)
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        out = attention(x, x, _line_graph(5), 5)
        (out * out).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0
        assert attention.attn_src.grad is not None
        assert attention.w_src.weight.grad is not None


class TestContextAggregator:
    @pytest.mark.parametrize("mode,expected_dim", [("sum", 6), ("concat", 12),
                                                   ("attention", 6)])
    def test_output_dims(self, rng, mode, expected_dim):
        aggregator = ContextAggregator(6, mode, rng)
        assert aggregator.output_dim == expected_dim
        a = Tensor(rng.normal(size=(4, 6)))
        b = Tensor(rng.normal(size=(4, 6)))
        assert aggregator(a, b).shape == (4, expected_dim)

    def test_sum_mode_is_exact_sum(self, rng):
        aggregator = ContextAggregator(3, "sum", rng)
        a, b = Tensor(np.ones((2, 3))), Tensor(np.full((2, 3), 2.0))
        np.testing.assert_allclose(aggregator(a, b).data, 3.0)

    def test_attention_mode_is_convex_combination(self, rng):
        aggregator = ContextAggregator(3, "attention", rng)
        a, b = Tensor(np.zeros((2, 3))), Tensor(np.ones((2, 3)))
        out = aggregator(a, b).data
        assert (out >= 0.0).all() and (out <= 1.0).all()

    def test_invalid_mode(self, rng):
        with pytest.raises(ValueError):
            ContextAggregator(4, "max", rng)


class TestMAGALayer:
    def test_output_dims_per_aggregation(self, rng):
        edge_index = _line_graph(5)
        x_poi = Tensor(rng.normal(size=(5, 7)))
        x_img = Tensor(rng.normal(size=(5, 9)))
        for aggregation, dim in (("sum", 8), ("attention", 8), ("concat", 16)):
            layer = MAGALayer(7, 9, 8, heads=2, aggregation=aggregation, rng=rng)
            out_poi, out_img = layer(x_poi, x_img, edge_index, 5)
            assert out_poi.shape == (5, dim)
            assert out_img.shape == (5, dim)
            assert layer.output_dim == dim

    def test_without_inter_modal_context(self, rng):
        layer = MAGALayer(7, 9, 8, heads=1, aggregation="sum", rng=rng,
                          use_inter_modal=False)
        x_poi = Tensor(rng.normal(size=(4, 7)))
        x_img = Tensor(rng.normal(size=(4, 9)))
        out_poi, out_img = layer(x_poi, x_img, _line_graph(4), 4)
        assert out_poi.shape == (4, 8)
        assert not hasattr(layer, "cross_poi_from_img")


class TestMAGAEncoder:
    def _encoder(self, rng, **kwargs):
        defaults = dict(poi_dim=7, img_dim=20, hidden_dim=8, num_layers=2, heads=2,
                        aggregation="attention", rng=rng, image_reduce_dim=10)
        defaults.update(kwargs)
        return MAGAEncoder(**defaults)

    def test_output_dimension(self, rng):
        encoder = self._encoder(rng)
        assert encoder.output_dim == 16
        x_poi = rng.normal(size=(6, 7))
        x_img = rng.normal(size=(6, 20))
        out = encoder(x_poi, x_img, _line_graph(6))
        assert out.shape == (6, 16)

    def test_image_reduction_applied(self, rng):
        encoder = self._encoder(rng, image_reduce_dim=5)
        assert encoder.image_reduce.out_features == 5

    def test_missing_image_modality(self, rng):
        encoder = self._encoder(rng, img_dim=0)
        out = encoder(rng.normal(size=(4, 7)), np.zeros((4, 0)), _line_graph(4))
        assert out.shape == (4, encoder.output_dim)

    def test_requires_at_least_one_modality(self, rng):
        with pytest.raises(ValueError):
            MAGAEncoder(poi_dim=0, img_dim=0, hidden_dim=8, num_layers=1, heads=1,
                        aggregation="sum", rng=rng)

    def test_gradients_reach_all_parameters(self, rng):
        encoder = self._encoder(rng, num_layers=1)
        out = encoder(rng.normal(size=(5, 7)), rng.normal(size=(5, 20)), _line_graph(5))
        (out * out).sum().backward()
        with_grads = sum(1 for p in encoder.parameters() if p.grad is not None
                         and np.abs(p.grad).sum() > 0)
        assert with_grads >= 0.8 * len(encoder.parameters())


class TestGSCM:
    def test_forward_shapes(self, rng):
        gscm = GlobalSemanticClustering(input_dim=8, num_clusters=4, rng=rng)
        local = Tensor(rng.normal(size=(10, 8)))
        out = gscm(local)
        assert out.enhanced.shape == (10, 8)
        assert out.assignment.shape == (10, 4)
        assert out.hard_assignment.shape == (10,)
        assert out.cluster_repr.shape == (4, 8)

    def test_concat_aggregation_doubles_dim(self, rng):
        gscm = GlobalSemanticClustering(8, 4, rng, aggregation="concat")
        out = gscm(Tensor(rng.normal(size=(6, 8))))
        assert out.enhanced.shape == (6, 16)
        assert gscm.output_dim == 16

    def test_assignment_rows_are_distributions(self, rng):
        gscm = GlobalSemanticClustering(8, 5, rng, temperature=0.5)
        out = gscm(Tensor(rng.normal(size=(12, 8))))
        np.testing.assert_allclose(out.assignment.data.sum(axis=1), 1.0, atol=1e-9)
        assert (out.assignment.data >= 0).all()

    def test_hard_assignment_is_argmax_of_soft(self, rng):
        gscm = GlobalSemanticClustering(8, 5, rng)
        out = gscm(Tensor(rng.normal(size=(12, 8))))
        np.testing.assert_array_equal(out.hard_assignment,
                                      out.assignment.data.argmax(axis=1))

    def test_temperature_sharpens_assignment(self, rng):
        local = Tensor(rng.normal(size=(20, 8)))
        sharp = GlobalSemanticClustering(8, 4, np.random.default_rng(0), temperature=0.05)
        soft = GlobalSemanticClustering(8, 4, np.random.default_rng(0), temperature=2.0)
        sharp_entropy = -(sharp(local).assignment.data *
                          np.log(sharp(local).assignment.data + 1e-12)).sum(axis=1).mean()
        soft_entropy = -(soft(local).assignment.data *
                         np.log(soft(local).assignment.data + 1e-12)).sum(axis=1).mean()
        assert sharp_entropy < soft_entropy

    def test_pseudo_labels_eq16(self):
        hard = np.array([0, 0, 1, 1, 2, 2])
        labels = np.array([1, -1, 0, -1, -1, -1])
        labeled_mask = np.array([True, False, True, False, False, False])
        pseudo = GlobalSemanticClustering.derive_pseudo_labels(hard, labels,
                                                               labeled_mask, 3)
        np.testing.assert_array_equal(pseudo, [1, 0, 0])

    def test_pseudo_labels_ignore_unlabeled_uvs(self):
        # A region with label -1 must not flip its cluster's pseudo label even
        # if its ground truth happens to be UV.
        hard = np.array([0, 1])
        labels = np.array([-1, -1])
        labeled_mask = np.array([False, False])
        pseudo = GlobalSemanticClustering.derive_pseudo_labels(hard, labels,
                                                               labeled_mask, 2)
        assert pseudo.sum() == 0

    def test_cluster_sizes(self, rng):
        gscm = GlobalSemanticClustering(8, 3, rng)
        sizes = gscm.cluster_sizes(np.array([0, 0, 2, 2, 2]))
        np.testing.assert_array_equal(sizes, [2, 0, 3])

    def test_invalid_aggregation(self, rng):
        with pytest.raises(ValueError):
            GlobalSemanticClustering(8, 3, rng, aggregation="mean")

    def test_gradients_flow_through_clustering(self, rng):
        gscm = GlobalSemanticClustering(6, 3, rng)
        local = Tensor(rng.normal(size=(8, 6)), requires_grad=True)
        out = gscm(local)
        (out.enhanced * out.enhanced).sum().backward()
        assert local.grad is not None
        assert gscm.assign.weight.grad is not None
        assert gscm.cluster_edge_logits.grad is not None
