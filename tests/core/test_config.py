"""Tests for the CMSF configuration object and its variant derivation."""

from __future__ import annotations

import pytest

from repro.core import COMPONENT_VARIANTS, CMSFConfig, variant_config


class TestCMSFConfig:
    def test_defaults_follow_paper_settings(self):
        config = CMSFConfig()
        assert config.hidden_dim == 64
        assert config.image_reduce_dim == 128
        assert config.maga_layers == 2
        assert config.lr_decay == pytest.approx(0.001)
        assert config.use_maga and config.use_gscm and config.use_gate

    def test_derived_dimensions_sum_aggregation(self):
        config = CMSFConfig(hidden_dim=32, maga_aggregation="sum",
                            cluster_aggregation="sum")
        assert config.modality_output_dim == 32
        assert config.representation_dim == 64
        assert config.enhanced_dim == 64

    def test_derived_dimensions_concat_aggregation(self):
        config = CMSFConfig(hidden_dim=32, maga_aggregation="concat",
                            cluster_aggregation="concat")
        assert config.modality_output_dim == 64
        assert config.representation_dim == 128
        assert config.enhanced_dim == 256

    def test_enhanced_dim_without_gscm(self):
        config = CMSFConfig(hidden_dim=32, use_gscm=False,
                            cluster_aggregation="concat")
        assert config.enhanced_dim == config.representation_dim

    def test_with_overrides_returns_new_object(self):
        config = CMSFConfig()
        modified = config.with_overrides(num_clusters=99)
        assert modified.num_clusters == 99
        assert config.num_clusters != 99

    @pytest.mark.parametrize("bad_kwargs", [
        {"hidden_dim": 0},
        {"maga_aggregation": "average"},
        {"cluster_aggregation": "attention"},
        {"num_clusters": 1},
        {"hidden_dim": 30, "maga_heads": 4},
        {"assignment_temperature": 0.0},
        {"dropout": 1.5},
        {"lambda_weight": -1.0},
        {"maga_layers": 0},
    ])
    def test_validation_errors(self, bad_kwargs):
        with pytest.raises(ValueError):
            CMSFConfig(**bad_kwargs)


class TestVariantConfig:
    def test_variant_names(self):
        assert set(COMPONENT_VARIANTS) == {"CMSF", "CMSF-M", "CMSF-G", "CMSF-H"}

    def test_cmsf_m_disables_inter_modal(self):
        config = variant_config(CMSFConfig(), "CMSF-M")
        assert not config.use_maga
        assert config.use_gscm and config.use_gate

    def test_cmsf_g_disables_gate_only(self):
        config = variant_config(CMSFConfig(), "CMSF-G")
        assert config.use_maga and config.use_gscm
        assert not config.use_gate

    def test_cmsf_h_disables_hierarchy(self):
        config = variant_config(CMSFConfig(), "CMSF-H")
        assert config.use_maga
        assert not config.use_gscm and not config.use_gate

    def test_full_variant_is_identity(self):
        base = CMSFConfig(num_clusters=17)
        assert variant_config(base, "cmsf") is base

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            variant_config(CMSFConfig(), "CMSF-X")
