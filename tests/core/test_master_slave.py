"""Tests for the master model, the MS-Gate and the two-stage CMSF detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (CMSFConfig, CMSFDetector, GateFunction, MasterClassifier,
                        MasterModel, PseudoLabelPredictor, SlaveStage, make_variant,
                        train_master, train_slave)
from repro.nn.tensor import Tensor


FAST_CONFIG = CMSFConfig(
    hidden_dim=16, image_reduce_dim=16, classifier_hidden=8, maga_layers=1,
    maga_heads=2, num_clusters=6, context_dim=8, master_epochs=15, slave_epochs=6,
    patience=None, dropout=0.0, seed=0,
)


@pytest.fixture(scope="module")
def trained_master(tiny_graph_small_image):
    """Train the master stage once and share it across this module's tests."""
    graph = tiny_graph_small_image
    rng = np.random.default_rng(0)
    model = MasterModel(graph.poi_dim, graph.image_dim, FAST_CONFIG, rng)
    result = train_master(model, graph, graph.labeled_indices(), FAST_CONFIG)
    return graph, result


class TestMasterClassifier:
    def test_forward_outputs_probabilities(self, rng):
        classifier = MasterClassifier(input_dim=10, hidden_dim=4, rng=rng)
        probs = classifier(Tensor(rng.normal(size=(7, 10))))
        assert probs.shape == (7,)
        assert (probs.data > 0).all() and (probs.data < 1).all()

    def test_num_gated_parameters(self, rng):
        classifier = MasterClassifier(10, 4, rng)
        assert classifier.num_gated_parameters == 4 * 10 + 4 + 4 + 1

    def test_gated_forward_with_all_ones_matches_ungated(self, rng):
        classifier = MasterClassifier(6, 3, rng)
        x = Tensor(rng.normal(size=(5, 6)))
        ungated = classifier(x)
        ones_filter = Tensor(np.ones((5, classifier.num_gated_parameters)))
        gated = classifier.forward_gated(x, ones_filter)
        np.testing.assert_allclose(gated.data, ungated.data, atol=1e-12)

    def test_gated_forward_zero_filter_gives_half_probability(self, rng):
        classifier = MasterClassifier(6, 3, rng)
        x = Tensor(rng.normal(size=(4, 6)))
        zero_filter = Tensor(np.zeros((4, classifier.num_gated_parameters)))
        gated = classifier.forward_gated(x, zero_filter)
        np.testing.assert_allclose(gated.data, 0.5, atol=1e-12)

    def test_gated_forward_differs_across_regions(self, rng):
        classifier = MasterClassifier(6, 3, rng)
        x = Tensor(np.tile(rng.normal(size=(1, 6)), (2, 1)))  # identical inputs
        filters = np.ones((2, classifier.num_gated_parameters))
        filters[1] *= 0.2  # second region gets a very different slave model
        out = classifier.forward_gated(x, Tensor(filters))
        assert abs(out.data[0] - out.data[1]) > 1e-6


class TestMasterTraining:
    def test_loss_decreases(self, trained_master):
        _, result = trained_master
        assert result.history[-1] < result.history[0]

    def test_hard_assignment_and_pseudo_labels(self, trained_master):
        graph, result = trained_master
        assert result.hard_assignment.shape == (graph.num_nodes,)
        assert result.hard_assignment.max() < FAST_CONFIG.num_clusters
        assert result.pseudo_labels.shape == (FAST_CONFIG.num_clusters,)
        assert set(np.unique(result.pseudo_labels)).issubset({0, 1})
        # at least one cluster contains a known UV
        assert result.num_clusters_with_uv >= 1

    def test_pseudo_labels_consistent_with_assignment(self, trained_master):
        graph, result = trained_master
        train_mask = np.zeros(graph.num_nodes, dtype=bool)
        train_mask[graph.labeled_indices()] = True
        uv_clusters = {result.hard_assignment[n]
                       for n in np.flatnonzero((graph.labels == 1) & train_mask)}
        np.testing.assert_array_equal(np.flatnonzero(result.pseudo_labels == 1),
                                      sorted(uv_clusters))

    def test_predict_proba_shape_and_range(self, trained_master):
        graph, result = trained_master
        probs = result.model.predict_proba(graph)
        assert probs.shape == (graph.num_nodes,)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_requires_labelled_training_indices(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        model = MasterModel(graph.poi_dim, graph.image_dim, FAST_CONFIG,
                            np.random.default_rng(0))
        with pytest.raises(ValueError):
            train_master(model, graph, np.array([], dtype=int), FAST_CONFIG)
        with pytest.raises(ValueError):
            train_master(model, graph, graph.unlabeled_indices()[:3], FAST_CONFIG)


class TestGateComponents:
    def test_pseudo_label_predictor_outputs_probabilities(self, rng):
        predictor = PseudoLabelPredictor(cluster_dim=8, rng=rng)
        out = predictor(Tensor(rng.normal(size=(5, 8))))
        assert out.shape == (5,)
        assert (out.data > 0).all() and (out.data < 1).all()

    def test_gate_function_shapes(self, rng):
        gate = GateFunction(num_clusters=6, context_dim=4, num_gated_parameters=37,
                            rng=rng)
        assignment = Tensor(np.full((9, 6), 1.0 / 6))
        inclusion = Tensor(np.linspace(0.1, 0.9, 6))
        filters = gate(assignment, inclusion)
        assert filters.shape == (9, 37)
        assert (filters.data > 0).all() and (filters.data < 1).all()

    def test_fresh_gate_is_near_passthrough(self, rng):
        gate = GateFunction(6, 4, 20, rng)
        assignment = Tensor(np.full((3, 6), 1.0 / 6))
        inclusion = Tensor(np.zeros(6))
        filters = gate(assignment, inclusion)
        # with the bias initialisation, an all-zero context produces ~sigmoid(2)
        np.testing.assert_allclose(filters.data, 1 / (1 + np.exp(-2.0)), atol=1e-6)

    def test_context_vector_depends_on_membership(self, rng):
        gate = GateFunction(4, 3, 10, rng)
        inclusion = Tensor(np.array([1.0, 0.0, 0.0, 0.0]))
        member_of_uv_cluster = Tensor(np.array([[1.0, 0.0, 0.0, 0.0]]))
        member_of_other = Tensor(np.array([[0.0, 1.0, 0.0, 0.0]]))
        a = gate.context_vector(member_of_uv_cluster, inclusion)
        b = gate.context_vector(member_of_other, inclusion)
        assert not np.allclose(a.data, b.data)

    def test_slave_stage_requires_gscm(self, tiny_graph_small_image, rng):
        graph = tiny_graph_small_image
        config = FAST_CONFIG.with_overrides(use_gscm=False)
        master = MasterModel(graph.poi_dim, graph.image_dim, config, rng)
        with pytest.raises(ValueError):
            SlaveStage(master, config, rng)


class TestSlaveTraining:
    def test_slave_stage_runs_and_returns_histories(self, trained_master):
        graph, master_result = trained_master
        result = train_slave(master_result, graph, graph.labeled_indices(),
                             FAST_CONFIG, np.random.default_rng(1))
        assert len(result.history) == FAST_CONFIG.slave_epochs
        assert len(result.rank_loss_history) == FAST_CONFIG.slave_epochs
        probs, inclusion = result.stage(graph)
        assert probs.shape == (graph.num_nodes,)
        assert inclusion.shape == (FAST_CONFIG.num_clusters,)


class TestCMSFDetector:
    def test_full_two_stage_fit_predict(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = CMSFDetector(FAST_CONFIG)
        detector.fit(graph, graph.labeled_indices())
        probs = detector.predict_proba(graph)
        assert probs.shape == (graph.num_nodes,)
        assert detector.slave_result is not None
        history = detector.training_history()
        assert "master" in history and "slave_detection" in history

    def test_predict_before_fit_raises(self, tiny_graph_small_image):
        with pytest.raises(RuntimeError):
            CMSFDetector(FAST_CONFIG).predict_proba(tiny_graph_small_image)

    def test_learns_better_than_chance_on_training_labels(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = CMSFDetector(FAST_CONFIG.with_overrides(master_epochs=60,
                                                           slave_epochs=15))
        labeled = graph.labeled_indices()
        detector.fit(graph, labeled)
        probs = detector.predict_proba(graph)[labeled]
        labels = graph.labels[labeled]
        mean_uv = probs[labels == 1].mean()
        mean_non_uv = probs[labels == 0].mean()
        assert mean_uv > mean_non_uv

    def test_variant_without_gate_skips_slave_stage(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = make_variant("CMSF-G", FAST_CONFIG)
        detector.fit(graph, graph.labeled_indices())
        assert detector.slave_result is None
        assert detector.predict_proba(graph).shape == (graph.num_nodes,)

    def test_variant_without_hierarchy(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = make_variant("CMSF-H", FAST_CONFIG)
        detector.fit(graph, graph.labeled_indices())
        assert detector.master_result.model.gscm is None
        assert detector.pseudo_labels().size == 0

    def test_save_and_load_roundtrip(self, tiny_graph_small_image, tmp_path):
        graph = tiny_graph_small_image
        detector = CMSFDetector(FAST_CONFIG)
        detector.fit(graph, graph.labeled_indices())
        before = detector.predict_proba(graph)
        path = detector.save(str(tmp_path / "cmsf"))
        # perturb parameters, then restore
        for parameter in detector.slave_result.stage.parameters():
            parameter.data = parameter.data + 1.0
        detector.load_parameters(path)
        after = detector.predict_proba(graph)
        np.testing.assert_allclose(before, after, atol=1e-10)

    def test_num_parameters_positive_after_fit(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = CMSFDetector(FAST_CONFIG)
        assert detector.num_parameters() == 0
        detector.fit(graph, graph.labeled_indices())
        assert detector.num_parameters() > 0

    def test_deterministic_given_seed(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        quick = FAST_CONFIG.with_overrides(master_epochs=8, slave_epochs=3)
        a = CMSFDetector(quick).fit(graph, graph.labeled_indices()).predict_proba(graph)
        b = CMSFDetector(quick).fit(graph, graph.labeled_indices()).predict_proba(graph)
        np.testing.assert_allclose(a, b, atol=1e-10)
