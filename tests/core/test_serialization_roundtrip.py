"""Save → load_parameters / from_parameters round-trips of the CMSF detector.

The serving layer's correctness rests on a loaded detector reproducing
``predict_proba`` bit-for-bit, so every assertion here is exact equality,
not approximate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CMSFConfig, CMSFDetector
from repro.nn.serialization import load_state_dict, state_dict_checksum

FAST_CONFIG = CMSFConfig(
    hidden_dim=16, image_reduce_dim=16, classifier_hidden=8, maga_layers=1,
    maga_heads=2, num_clusters=6, context_dim=8, master_epochs=12, slave_epochs=5,
    patience=None, dropout=0.0, seed=0,
)


@pytest.fixture(scope="module")
def fitted(tiny_graph_small_image):
    graph = tiny_graph_small_image
    detector = CMSFDetector(FAST_CONFIG).fit(graph, graph.labeled_indices())
    return graph, detector


@pytest.fixture(scope="module")
def fitted_master_only(tiny_graph_small_image):
    graph = tiny_graph_small_image
    config = FAST_CONFIG.with_overrides(use_gate=False)
    detector = CMSFDetector(config).fit(graph, graph.labeled_indices())
    return graph, detector


class TestLoadParameters:
    def test_roundtrip_into_fitted_detector_is_bit_exact(self, fitted, tmp_path):
        graph, detector = fitted
        reference = detector.predict_proba(graph)
        path = detector.save(str(tmp_path / "params"))

        other = CMSFDetector(FAST_CONFIG).fit(graph, graph.labeled_indices()[:20])
        assert not np.array_equal(other.predict_proba(graph), reference)
        other.load_parameters(path)
        np.testing.assert_array_equal(other.predict_proba(graph), reference)

    def test_mismatched_architecture_is_reported(self, fitted, fitted_master_only,
                                                 tmp_path):
        graph, detector = fitted
        _, master_only = fitted_master_only
        path = master_only.save(str(tmp_path / "master_only"))
        with pytest.raises(KeyError, match="does not match"):
            detector.load_parameters(path)

    def test_unfitted_detector_refuses_to_load(self, fitted, tmp_path):
        graph, detector = fitted
        path = detector.save(str(tmp_path / "params"))
        with pytest.raises(RuntimeError, match="must be fitted"):
            CMSFDetector(FAST_CONFIG).load_parameters(path)

    def test_missing_archive_is_reported(self, fitted, tmp_path):
        _, detector = fitted
        with pytest.raises(FileNotFoundError):
            detector.load_parameters(str(tmp_path / "nope"))


class TestFromParameters:
    def test_rebuilt_detector_is_bit_exact(self, fitted, tmp_path):
        graph, detector = fitted
        reference = detector.predict_proba(graph)
        path = detector.save(str(tmp_path / "params"))
        rebuilt = CMSFDetector.from_parameters(
            FAST_CONFIG, graph.poi_dim, graph.image_dim, load_state_dict(path),
            hard_assignment=detector.master_result.hard_assignment,
            pseudo_labels=detector.pseudo_labels())
        assert rebuilt.has_slave
        np.testing.assert_array_equal(rebuilt.predict_proba(graph), reference)
        np.testing.assert_array_equal(rebuilt.cluster_assignment(graph),
                                      detector.cluster_assignment(graph))
        np.testing.assert_array_equal(rebuilt.pseudo_labels(),
                                      detector.pseudo_labels())

    def test_master_only_rebuild_is_bit_exact(self, fitted_master_only, tmp_path):
        graph, detector = fitted_master_only
        reference = detector.predict_proba(graph)
        path = detector.save(str(tmp_path / "params"))
        rebuilt = CMSFDetector.from_parameters(
            detector.config, graph.poi_dim, graph.image_dim, load_state_dict(path))
        assert not rebuilt.has_slave
        np.testing.assert_array_equal(rebuilt.predict_proba(graph), reference)

    def test_state_dict_checksum_is_content_addressed(self, fitted, tmp_path):
        _, detector = fitted
        path = detector.save(str(tmp_path / "params"))
        state = load_state_dict(path)
        checksum = state_dict_checksum(state)
        assert checksum == state_dict_checksum(dict(reversed(list(state.items()))))
        name = next(iter(state))
        state[name] = state[name] + 1e-9
        assert checksum != state_dict_checksum(state)
