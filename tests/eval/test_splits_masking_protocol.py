"""Tests for the splitting protocol, label masking, the experiment drivers,
efficiency measurement and reporting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MLPDetector
from repro.baselines.base import BaselineTrainingConfig
from repro.eval import (LABEL_RATIOS, block_kfold, compare_methods, cross_validate,
                        evaluate_detector, format_metric_with_std, format_series,
                        format_table, mask_train_indices, measure_efficiency,
                        nested_cross_validation_splits, rank_regions, ratio_sweep,
                        single_holdout, table2_rows, train_validation_split,
                        TABLE2_HEADERS)
from repro.eval.splits import FoldSplit

FAST = BaselineTrainingConfig(epochs=10, patience=None, seed=0)


class TestBlockKFold:
    def test_folds_partition_labeled_set(self, tiny_graph):
        splits = block_kfold(tiny_graph, n_folds=3, seed=0)
        assert len(splits) == 3
        all_test = np.concatenate([split.test_indices for split in splits])
        np.testing.assert_array_equal(np.sort(all_test),
                                      np.sort(tiny_graph.labeled_indices()))

    def test_train_and_test_disjoint(self, tiny_graph):
        for split in block_kfold(tiny_graph, n_folds=3, seed=0):
            assert np.intersect1d(split.train_indices, split.test_indices).size == 0

    def test_blocks_never_straddle_folds(self, tiny_graph):
        splits = block_kfold(tiny_graph, n_folds=3, seed=0)
        for split in splits:
            train_blocks = set(tiny_graph.block_ids[split.train_indices])
            test_blocks = set(tiny_graph.block_ids[split.test_indices])
            assert not train_blocks & test_blocks

    def test_stratification_spreads_uvs(self, tiny_graph):
        splits = block_kfold(tiny_graph, n_folds=3, seed=0)
        uv_counts = [(tiny_graph.labels[split.test_indices] == 1).sum()
                     for split in splits]
        # every fold should see at least one labelled UV on this dataset
        assert min(uv_counts) >= 1

    def test_deterministic_given_seed(self, tiny_graph):
        a = block_kfold(tiny_graph, n_folds=3, seed=5)
        b = block_kfold(tiny_graph, n_folds=3, seed=5)
        for split_a, split_b in zip(a, b):
            np.testing.assert_array_equal(split_a.test_indices, split_b.test_indices)

    def test_invalid_fold_count(self, tiny_graph):
        with pytest.raises(ValueError):
            block_kfold(tiny_graph, n_folds=1)

    def test_too_many_folds_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            block_kfold(tiny_graph, n_folds=1000)

    def test_fold_split_validates_overlap(self):
        with pytest.raises(ValueError):
            FoldSplit(fold=0, train_indices=np.array([1, 2]),
                      test_indices=np.array([2, 3]))

    def test_single_holdout(self, tiny_graph):
        split = single_holdout(tiny_graph, test_fraction=0.34, seed=0)
        assert split.test_indices.size > 0
        assert split.train_indices.size > split.test_indices.size


class TestNestedSplits:
    def test_inner_splits_within_outer_training(self, tiny_graph):
        for outer, inner_splits in nested_cross_validation_splits(tiny_graph,
                                                                  n_outer=3, n_inner=2):
            outer_train = set(outer.train_indices)
            for inner_train, inner_validation in inner_splits:
                assert set(inner_train) <= outer_train
                assert set(inner_validation) <= outer_train
                assert not set(inner_train) & set(inner_validation)

    def test_train_validation_split_covers_training(self, tiny_graph):
        outer = block_kfold(tiny_graph, n_folds=3, seed=0)[0]
        inner = train_validation_split(outer.train_indices, tiny_graph, 2, seed=0)
        assert len(inner) >= 1
        for training, validation in inner:
            covered = np.sort(np.concatenate([training, validation]))
            np.testing.assert_array_equal(covered, np.sort(outer.train_indices))


class TestMasking:
    def test_ratio_sizes(self, tiny_graph):
        train = tiny_graph.labeled_indices()
        masked = mask_train_indices(train, tiny_graph.labels, 0.5, seed=0)
        assert masked.size == pytest.approx(train.size * 0.5, abs=1)
        assert set(masked) <= set(train)

    def test_full_ratio_is_identity(self, tiny_graph):
        train = tiny_graph.labeled_indices()
        np.testing.assert_array_equal(mask_train_indices(train, tiny_graph.labels, 1.0),
                                      train)

    def test_keeps_at_least_one_uv(self, tiny_graph):
        train = tiny_graph.labeled_indices()
        for seed in range(5):
            masked = mask_train_indices(train, tiny_graph.labels, 0.1, seed=seed)
            assert (tiny_graph.labels[masked] == 1).any()

    def test_invalid_ratio(self, tiny_graph):
        with pytest.raises(ValueError):
            mask_train_indices(tiny_graph.labeled_indices(), tiny_graph.labels, 0.0)

    def test_ratio_sweep_keys(self, tiny_graph):
        sweep = ratio_sweep(tiny_graph.labeled_indices(), tiny_graph.labels)
        assert set(sweep) == set(LABEL_RATIOS)
        sizes = [sweep[ratio].size for ratio in sorted(sweep)]
        assert sizes == sorted(sizes)


class TestProtocol:
    def test_evaluate_detector_returns_metrics_and_timing(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        split = block_kfold(graph, n_folds=3, seed=0)[0]
        result = evaluate_detector(MLPDetector(training=FAST), graph, split)
        assert "auc" in result.metrics
        assert result.fit_seconds > 0
        assert result.predict_seconds > 0
        assert result.num_parameters > 0

    def test_cross_validate_aggregates_all_folds(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        summary = cross_validate(lambda seed: MLPDetector(training=FAST), graph,
                                 n_folds=3, seeds=(0,), method_name="MLP")
        assert len(summary.runs) == 3
        assert 0.0 <= summary.mean("auc") <= 1.0
        assert summary.std("auc") >= 0.0

    def test_cross_validate_multiple_seeds(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        summary = cross_validate(
            lambda seed: MLPDetector(training=BaselineTrainingConfig(epochs=5, seed=seed)),
            graph, n_folds=3, seeds=(0, 1), method_name="MLP")
        assert len(summary.runs) == 6

    def test_compare_methods(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        results = compare_methods({
            "MLP": lambda seed: MLPDetector(training=FAST),
        }, graph, n_folds=3, seeds=(0,))
        assert set(results) == {"MLP"}
        assert results["MLP"].method == "MLP"

    def test_rank_regions_returns_top_percent(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        detector = MLPDetector(training=FAST)
        detector.fit(graph, graph.labeled_indices())
        top = rank_regions(detector, graph, top_percent=3.0)
        assert top.size == int(np.ceil(graph.num_nodes * 0.03))
        pool = graph.labeled_indices()
        top_pool = rank_regions(detector, graph, pool=pool, top_percent=10.0)
        assert set(top_pool) <= set(pool)

    def test_measure_efficiency_report(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        report = measure_efficiency(lambda: MLPDetector(training=FAST), graph,
                                    graph.labeled_indices())
        assert report.method == "MLP"
        assert report.train_seconds_per_epoch > 0
        assert report.inference_seconds > 0
        assert report.model_size_mb > 0
        assert report.epochs == FAST.epochs
        assert set(report.as_dict()) >= {"method", "city", "train_s_per_epoch"}


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1.23456, "x"], [2.0, "yy"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "1.235" in table
        assert len(lines) >= 5

    def test_format_metric_with_std(self):
        assert format_metric_with_std(0.87654, 0.012) == "0.877 (0.012)"
        assert format_metric_with_std(float("nan"), 0.0) == "n/a"

    def test_format_series(self):
        text = format_series("AUC", [10, 25], [0.7, 0.8], "ratio", "auc")
        assert "10" in text and "0.800" in text

    def test_table2_rows_ordering(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        summaries = compare_methods({"MLP": lambda seed: MLPDetector(training=FAST)},
                                    graph, n_folds=3, seeds=(0,))
        rows = table2_rows("tiny", summaries, ["MLP", "missing-method"])
        assert len(rows) == 1
        assert rows[0][1] == "MLP"
        assert len(rows[0]) == len(TABLE2_HEADERS)
