"""Tests for the paired significance tests on AUC differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.significance import (ComparisonTestResult, bootstrap_auc_difference,
                                     permutation_auc_test)


def _pool(rng, size=400, separation_a=2.0, separation_b=0.5):
    """Labels plus two score vectors with different separating power."""
    labels = (rng.random(size) < 0.2).astype(int)
    noise_a = rng.normal(size=size)
    noise_b = rng.normal(size=size)
    scores_a = labels * separation_a + noise_a
    scores_b = labels * separation_b + noise_b
    return labels, scores_a, scores_b


class TestBootstrap:
    def test_clear_difference_is_significant(self, rng):
        labels, scores_a, scores_b = _pool(rng)
        result = bootstrap_auc_difference(labels, scores_a, scores_b, num_samples=300)
        assert result.observed_difference > 0.1
        assert result.significant
        low, high = result.confidence_interval
        assert low <= result.observed_difference <= high

    def test_identical_methods_not_significant(self, rng):
        labels, scores_a, _ = _pool(rng)
        result = bootstrap_auc_difference(labels, scores_a, scores_a.copy(),
                                          num_samples=200)
        assert result.observed_difference == pytest.approx(0.0, abs=1e-12)
        assert not result.significant

    def test_reproducible_with_seed(self, rng):
        labels, scores_a, scores_b = _pool(rng)
        first = bootstrap_auc_difference(labels, scores_a, scores_b, num_samples=100,
                                         seed=7)
        second = bootstrap_auc_difference(labels, scores_a, scores_b, num_samples=100,
                                          seed=7)
        assert first.p_value == second.p_value

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            bootstrap_auc_difference(np.array([0, 1]), np.zeros(2), np.zeros(3))


class TestPermutation:
    def test_clear_difference_is_significant(self, rng):
        labels, scores_a, scores_b = _pool(rng)
        result = permutation_auc_test(labels, scores_a, scores_b,
                                      num_permutations=300)
        assert result.significant
        assert result.auc_a > result.auc_b

    def test_noise_vs_noise_not_significant(self, rng):
        labels = (rng.random(300) < 0.3).astype(int)
        scores_a = rng.normal(size=300)
        scores_b = rng.normal(size=300)
        result = permutation_auc_test(labels, scores_a, scores_b,
                                      num_permutations=200)
        assert result.p_value > 0.05

    def test_single_class_pool_returns_nan(self, rng):
        labels = np.ones(50, dtype=int)
        result = permutation_auc_test(labels, rng.normal(size=50), rng.normal(size=50),
                                      num_permutations=50)
        assert np.isnan(result.p_value)

    def test_result_dataclass_significance_flag(self):
        assert ComparisonTestResult(0.9, 0.8, 0.1, p_value=0.01).significant
        assert not ComparisonTestResult(0.9, 0.8, 0.1, p_value=0.2).significant
