"""Golden-metrics regression test: end-to-end detection quality pinned.

Trains the fixed golden configuration (float64, fixed seeds) on the
medium ``mini`` city and compares AUC / AP / F1@k against values recorded
when this test was introduced.  The float64 pipeline is bit-reproducible
for a fixed seed on one platform; the tolerances below only absorb
BLAS-order differences across platforms (~1e-12), so *any* behavioural
change to training, features or inference fails here instead of only
surfacing in the slow benchmark harness.

If a deliberate quality-affecting change lands, re-run the golden setup
and update the ``GOLDEN`` constants in the same commit, noting why.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CMSFConfig, CMSFDetector
from repro.eval.metrics import (average_precision, roc_auc,
                                top_percent_metrics)
from repro.synth import generate_city, mini_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig

#: the frozen golden setup — do not tweak casually: every constant below
#: is part of the pinned contract
GOLDEN_CITY_SEED = 1
GOLDEN_IMAGE_DIM = 48
GOLDEN_CONFIG = dict(hidden_dim=32, image_reduce_dim=32, classifier_hidden=16,
                     maga_layers=2, maga_heads=2, num_clusters=12,
                     context_dim=16, master_epochs=30, slave_epochs=10,
                     patience=None, dropout=0.0, seed=0, dtype="float64")

#: pinned values (recorded at introduction; float64, fixed seeds)
GOLDEN = {
    "auc": 0.704797047970480,
    "ap": 0.110126765270031,
    "f1@3": 0.038461538461538,
    "f1@5": 0.063492063492064,
    "recall@5": 0.058823529411765,
    "score_sum": 240.833526527676099,
}
#: rank metrics tolerate cross-platform BLAS noise only
METRIC_ATOL = 1e-6
SCORE_SUM_RTOL = 1e-9


@pytest.fixture(scope="module")
def golden_scores():
    graph = build_urg(
        generate_city(mini_city(seed=GOLDEN_CITY_SEED)),
        UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=GOLDEN_IMAGE_DIM)))
    detector = CMSFDetector(CMSFConfig(**GOLDEN_CONFIG))
    detector.fit(graph, graph.labeled_indices())
    return graph, detector.predict_proba(graph)


class TestGoldenMetrics:
    def test_scores_are_float64(self, golden_scores):
        _, scores = golden_scores
        assert scores.dtype == np.float64

    def test_auc_pinned(self, golden_scores):
        graph, scores = golden_scores
        auc = roc_auc(graph.ground_truth, scores)
        assert auc == pytest.approx(GOLDEN["auc"], abs=METRIC_ATOL), \
            f"AUC drifted: got {auc!r}; if intentional, re-pin GOLDEN"

    def test_average_precision_pinned(self, golden_scores):
        graph, scores = golden_scores
        ap = average_precision(graph.ground_truth, scores)
        assert ap == pytest.approx(GOLDEN["ap"], abs=METRIC_ATOL), \
            f"AP drifted: got {ap!r}; if intentional, re-pin GOLDEN"

    def test_screening_f1_pinned(self, golden_scores):
        graph, scores = golden_scores
        at3 = top_percent_metrics(graph.ground_truth, scores, 3.0)
        at5 = top_percent_metrics(graph.ground_truth, scores, 5.0)
        assert at3.f1 == pytest.approx(GOLDEN["f1@3"], abs=METRIC_ATOL)
        assert at5.f1 == pytest.approx(GOLDEN["f1@5"], abs=METRIC_ATOL)
        assert at5.recall == pytest.approx(GOLDEN["recall@5"], abs=METRIC_ATOL)

    def test_score_mass_pinned(self, golden_scores):
        """The raw probability mass pins the numeric path itself: a change
        that happens not to flip any rank still fails here."""
        _, scores = golden_scores
        assert scores.sum() == pytest.approx(GOLDEN["score_sum"],
                                             rel=SCORE_SUM_RTOL), \
            f"score mass drifted: got {scores.sum()!r}; re-pin if intentional"

    def test_probabilities_well_formed(self, golden_scores):
        _, scores = golden_scores
        assert np.isfinite(scores).all()
        assert scores.min() >= 0.0 and scores.max() <= 1.0
