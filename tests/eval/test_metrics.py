"""Tests for AUC and the top-p% screening metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (aggregate_reports, average_precision, detection_report,
                        roc_auc, top_percent_metrics)


class TestRocAuc:
    def test_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == pytest.approx(1.0)

    def test_inverted_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(labels, scores) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=5000)
        scores = rng.random(5000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.03)

    def test_ties_handled_via_midranks(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc(labels, scores) == pytest.approx(0.5)

    def test_single_class_returns_nan(self):
        assert np.isnan(roc_auc(np.ones(4), np.random.rand(4)))
        assert np.isnan(roc_auc(np.zeros(4), np.random.rand(4)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            roc_auc(np.ones(3), np.ones(4))

    @given(st.integers(min_value=2, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_auc_invariant_to_monotone_transform(self, n):
        rng = np.random.default_rng(n)
        labels = rng.integers(0, 2, size=n)
        if labels.sum() in (0, n):
            labels[0] = 1 - labels[0]
        scores = rng.normal(size=n)
        a = roc_auc(labels, scores)
        b = roc_auc(labels, 1.0 / (1.0 + np.exp(-3 * scores)))
        assert a == pytest.approx(b, abs=1e-9)


class TestTopPercentMetrics:
    def test_counts_and_values(self):
        labels = np.zeros(100)
        labels[:5] = 1
        scores = np.linspace(1.0, 0.0, 100)  # positives ranked on top
        result = top_percent_metrics(labels, scores, percent=5.0)
        assert result.num_selected == 5
        assert result.precision == pytest.approx(1.0)
        assert result.recall == pytest.approx(1.0)
        assert result.f1 == pytest.approx(1.0)

    def test_partial_overlap(self):
        labels = np.array([1, 1, 0, 0, 0, 0, 0, 0, 0, 0])
        scores = np.array([0.9, 0.1, 0.8, 0.7, 0.2, 0.3, 0.4, 0.5, 0.6, 0.05])
        result = top_percent_metrics(labels, scores, percent=20.0)  # top 2
        assert result.num_selected == 2
        assert result.precision == pytest.approx(0.5)
        assert result.recall == pytest.approx(0.5)

    def test_at_least_one_region_selected(self):
        labels = np.array([1, 0, 0])
        scores = np.array([0.9, 0.1, 0.2])
        result = top_percent_metrics(labels, scores, percent=1.0)
        assert result.num_selected == 1

    def test_no_positives_recall_nan(self):
        result = top_percent_metrics(np.zeros(10), np.random.rand(10), 10.0)
        assert np.isnan(result.recall)

    def test_invalid_percent(self):
        with pytest.raises(ValueError):
            top_percent_metrics(np.ones(3), np.ones(3), 0.0)

    def test_empty_pool(self):
        result = top_percent_metrics(np.array([]), np.array([]), 5.0)
        assert np.isnan(result.precision)

    def test_as_dict_keys(self):
        result = top_percent_metrics(np.array([1, 0]), np.array([0.9, 0.1]), 50.0)
        assert set(result.as_dict()) == {"recall@50", "precision@50", "f1@50"}

    @given(st.integers(min_value=5, max_value=300), st.floats(min_value=1.0, max_value=50.0))
    @settings(max_examples=30, deadline=None)
    def test_property_precision_recall_bounds(self, n, percent):
        rng = np.random.default_rng(n)
        labels = rng.integers(0, 2, size=n)
        scores = rng.random(n)
        result = top_percent_metrics(labels, scores, percent)
        assert 0.0 <= result.precision <= 1.0
        if labels.sum() > 0:
            assert 0.0 <= result.recall <= 1.0
            assert 0.0 <= result.f1 <= 1.0


class TestAveragePrecision:
    def test_perfect_ranking_is_one(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert average_precision(labels, scores) == 1.0

    def test_worst_ranking(self):
        labels = np.array([0, 0, 1])
        scores = np.array([0.9, 0.8, 0.1])
        # the single positive sits at rank 3: AP = 1/3
        assert average_precision(labels, scores) == pytest.approx(1 / 3)

    def test_known_value(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.8, 0.7, 0.1])
        # positives at ranks 1 and 3: (1/1 + 2/3) / 2
        assert average_precision(labels, scores) == pytest.approx(5 / 6)

    def test_no_positives_is_nan(self):
        assert np.isnan(average_precision(np.zeros(4), np.linspace(0, 1, 4)))

    def test_unlabeled_entries_count_as_negatives(self):
        labels = np.array([1, -1, 0])
        scores = np.array([0.9, 0.5, 0.1])
        assert average_precision(labels, scores) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            average_precision(np.zeros(3), np.zeros(4))

    @given(st.integers(min_value=2, max_value=60), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_bounds_and_baseline(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=n)
        scores = rng.random(n)
        positives = int((labels == 1).sum())
        ap = average_precision(labels, scores)
        if positives == 0:
            assert np.isnan(ap)
        else:
            # AP is bounded by (prevalence/n, 1] and never below the
            # precision of the all-positives-last ordering
            assert 0.0 < ap <= 1.0
            assert ap >= positives / n / n


class TestReports:
    def test_detection_report_keys(self):
        labels = np.array([1, 0, 1, 0, 0, 0])
        scores = np.array([0.8, 0.2, 0.7, 0.3, 0.4, 0.1])
        report = detection_report(labels, scores)
        assert set(report) == {"auc", "ap", "recall@3", "precision@3", "f1@3",
                               "recall@5", "precision@5", "f1@5"}

    def test_aggregate_reports_mean_std(self):
        reports = [{"auc": 0.8}, {"auc": 0.6}]
        summary = aggregate_reports(reports)
        assert summary["auc"]["mean"] == pytest.approx(0.7)
        assert summary["auc"]["std"] == pytest.approx(0.1)

    def test_aggregate_reports_ignores_nan(self):
        reports = [{"auc": 0.8}, {"auc": float("nan")}]
        summary = aggregate_reports(reports)
        assert summary["auc"]["mean"] == pytest.approx(0.8)

    def test_aggregate_reports_empty(self):
        assert aggregate_reports([]) == {}

    def test_aggregate_reports_all_nan(self):
        summary = aggregate_reports([{"recall@3": float("nan")}])
        assert np.isnan(summary["recall@3"]["mean"])
