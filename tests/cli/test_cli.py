"""End-to-end tests of the ``repro-uv`` command-line interface.

Every test calls :func:`repro.cli.main` in-process with the ``tiny`` preset
(256 regions) and reduced epochs so the whole module stays fast.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(action for action in parser._actions
                          if isinstance(action, type(parser._subparsers._group_actions[0])))
        assert set(subparsers.choices) == {"generate-city", "build-graph", "show-city",
                                           "train", "evaluate", "reproduce", "registry",
                                           "package", "serve", "score", "stream",
                                           "workload", "fleet", "experiment", "load",
                                           "rollout"}


class TestGenerateAndBuild:
    def test_generate_city_writes_directory(self, tmp_path, capsys):
        exit_code = main(["generate-city", "--preset", "tiny", "--seed", "3",
                          "--output", str(tmp_path / "city")])
        assert exit_code == 0
        assert (tmp_path / "city" / "config.json").exists()
        assert "true UV regions" in capsys.readouterr().out

    def test_build_graph_from_preset(self, tmp_path, capsys):
        exit_code = main(["build-graph", "--preset", "tiny",
                          "--output", str(tmp_path / "graph.npz")])
        assert exit_code == 0
        assert (tmp_path / "graph.npz").exists()
        assert "undirected edges" in capsys.readouterr().out

    def test_build_graph_with_ablation_from_saved_city(self, tmp_path, capsys):
        main(["generate-city", "--preset", "tiny", "--output", str(tmp_path / "city")])
        exit_code = main(["build-graph", "--city-dir", str(tmp_path / "city"),
                          "--ablation", "noImage",
                          "--output", str(tmp_path / "graph_noimage.npz")])
        assert exit_code == 0
        assert "image features: 0" in capsys.readouterr().out

    def test_unknown_ablation_is_reported(self, tmp_path, capsys):
        exit_code = main(["build-graph", "--preset", "tiny", "--ablation", "noSuchThing",
                          "--output", str(tmp_path / "graph.npz")])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_show_city_prints_map_and_stats(self, capsys):
        exit_code = main(["show-city", "--preset", "tiny"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "latent land use" in out
        assert "regions: 256" in out


class TestTrainAndEvaluate:
    def test_train_mlp_and_export(self, tmp_path, capsys):
        predictions = tmp_path / "predictions.csv"
        geojson = tmp_path / "regions.geojson"
        exit_code = main(["train", "--preset", "tiny", "--method", "MLP",
                          "--epochs", "10", "--predictions", str(predictions),
                          "--geojson", str(geojson)])
        assert exit_code == 0
        with open(predictions) as handle:
            rows = list(csv.DictReader(handle))
        assert rows and "uv_probability" in rows[0]
        with open(geojson) as handle:
            assert json.load(handle)["type"] == "FeatureCollection"
        assert "screening list" in capsys.readouterr().out

    def test_train_on_prebuilt_graph(self, tmp_path, capsys):
        graph_path = tmp_path / "graph.npz"
        main(["build-graph", "--preset", "tiny", "--output", str(graph_path)])
        exit_code = main(["train", "--graph", str(graph_path), "--method", "MLP",
                          "--epochs", "5"])
        assert exit_code == 0

    def test_evaluate_prints_table(self, capsys):
        exit_code = main(["evaluate", "--preset", "tiny", "--methods", "MLP",
                          "--folds", "2", "--epochs", "10"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "AUC" in out and "MLP" in out

    def test_evaluate_markdown_output(self, capsys):
        exit_code = main(["evaluate", "--preset", "tiny", "--methods", "MLP",
                          "--folds", "2", "--epochs", "5", "--markdown"])
        assert exit_code == 0
        assert "| City | Method |" in capsys.readouterr().out.replace("  ", " ")

    def test_unknown_method_is_reported(self, capsys):
        exit_code = main(["evaluate", "--preset", "tiny", "--methods", "NotAMethod"])
        assert exit_code == 2
        assert "unknown method" in capsys.readouterr().err


class TestPackageServeScore:
    def test_package_into_registry_and_score_through_service(self, tmp_path, capsys):
        from repro.serve import ModelRegistry, ScoringServer

        registry_root = tmp_path / "models"
        exit_code = main(["package", "--preset", "tiny", "--epochs", "8",
                          "--registry", str(registry_root), "--name", "tiny"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "packaged tiny:1" in out

        server = ScoringServer(ModelRegistry(registry_root), quiet=True).start()
        try:
            predictions = tmp_path / "scores.csv"
            exit_code = main(["score", "--url", server.url, "--preset", "tiny",
                              "--model", "tiny", "--top-percent", "5",
                              "--predictions", str(predictions)])
            assert exit_code == 0
            out = capsys.readouterr().out
            assert "cold" in out and "shortlist" in out
            with open(predictions) as handle:
                rows = list(csv.DictReader(handle))
            assert rows and "uv_probability" in rows[0]

            exit_code = main(["score", "--url", server.url, "--preset", "tiny",
                              "--model", "tiny"])
            assert exit_code == 0
            assert "cache hit" in capsys.readouterr().out
        finally:
            server.stop()

    def test_package_to_output_directory(self, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle"
        exit_code = main(["package", "--preset", "tiny", "--epochs", "8",
                          "--output", str(bundle_dir), "--version", "7"])
        assert exit_code == 0
        assert (bundle_dir / "bundle.json").exists()
        assert "tiny:7" in capsys.readouterr().out

    def test_package_rejects_non_cmsf_method(self, capsys):
        exit_code = main(["package", "--preset", "tiny", "--method", "MLP",
                          "--output", "/tmp/never-written"])
        assert exit_code == 2
        assert "only CMSF variants" in capsys.readouterr().err

    def test_score_unknown_model_is_reported(self, tmp_path, capsys):
        from repro.serve import ModelRegistry, ScoringServer

        registry_root = tmp_path / "models"
        main(["package", "--preset", "tiny", "--epochs", "8",
              "--registry", str(registry_root)])
        capsys.readouterr()
        server = ScoringServer(ModelRegistry(registry_root), quiet=True).start()
        try:
            exit_code = main(["score", "--url", server.url, "--preset", "tiny",
                              "--model", "missing"])
        finally:
            server.stop()
        assert exit_code == 3
        assert "404" in capsys.readouterr().err

    def test_serve_refuses_empty_registry(self, tmp_path, capsys):
        exit_code = main(["serve", "--registry", str(tmp_path / "none")])
        assert exit_code == 2
        assert "empty" in capsys.readouterr().err

    def test_serve_reports_busy_port(self, tmp_path, capsys):
        import socket

        main(["package", "--preset", "tiny", "--epochs", "8",
              "--registry", str(tmp_path / "models")])
        capsys.readouterr()
        with socket.socket() as blocker:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            exit_code = main(["serve", "--registry", str(tmp_path / "models"),
                              "--port", str(port)])
        assert exit_code == 2
        assert "cannot bind" in capsys.readouterr().err

    def test_package_default_keeps_preset_city_seed(self, tmp_path, capsys):
        from repro.serve import read_manifest
        from repro.synth import generate_city, get_preset
        from repro.urg import build_urg

        bundle_dir = tmp_path / "bundle"
        assert main(["package", "--preset", "tiny", "--epochs", "8",
                     "--output", str(bundle_dir)]) == 0
        manifest = read_manifest(bundle_dir)
        canonical = build_urg(generate_city(get_preset("tiny")))
        assert manifest.graph["fingerprint"] == canonical.fingerprint()


class TestStream:
    @pytest.fixture(scope="class")
    def packaged_registry(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("stream-models")
        assert main(["package", "--preset", "tiny", "--epochs", "8",
                     "--registry", str(root), "--name", "tiny"]) == 0
        return root

    def test_stream_local_registry_mode(self, packaged_registry, tmp_path, capsys):
        report_path = tmp_path / "drift.json"
        exit_code = main(["stream", "--preset", "tiny",
                          "--registry", str(packaged_registry),
                          "--model", "tiny", "--steps", "4",
                          "--scenarios", "poi_churn,road_rewiring",
                          "--json", str(report_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "plan reused" in out
        assert "rank-ρ" in out
        report = json.loads(report_path.read_text())
        assert report["num_steps"] == 4
        assert report["stats"]["plan_reuses"] == 2
        assert report["stats"]["plan_rebuilds"] == 2
        assert [step["kind"] for step in report["steps"]] == \
            ["poi_churn", "road_rewiring", "poi_churn", "road_rewiring"]

    def test_stream_against_running_service(self, packaged_registry, capsys):
        from repro.serve import ModelRegistry, ScoringServer

        server = ScoringServer(ModelRegistry(packaged_registry), quiet=True).start()
        try:
            exit_code = main(["stream", "--preset", "tiny", "--url", server.url,
                              "--model", "tiny", "--steps", "2",
                              "--scenarios", "imagery_refresh"])
        finally:
            server.stop()
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "plan reused on 2/2 updates" in out
        assert "imagery_refresh" in out

    def test_stream_incremental_with_stats(self, packaged_registry, capsys):
        exit_code = main(["stream", "--preset", "tiny",
                          "--registry", str(packaged_registry),
                          "--model", "tiny", "--steps", "5",
                          "--scenarios", "poi_churn,imagery_refresh",
                          "--incremental", "always", "--stats"])
        assert exit_code == 0
        out = capsys.readouterr().out
        # the warm initial score primes the activation cache, so every
        # update takes the incremental path (denominator = initial score
        # + 5 updates)
        assert "incremental rescore on 5/6 scores" in out
        assert "plan cache:" in out and "builds=" in out
        assert "incremental_rescores=5" in out
        assert "verify_failures=0" in out

    def test_stream_incremental_against_service(self, packaged_registry,
                                                capsys):
        from repro.serve import ModelRegistry, ScoringServer

        server = ScoringServer(ModelRegistry(packaged_registry), quiet=True).start()
        try:
            exit_code = main(["stream", "--preset", "tiny", "--url", server.url,
                              "--model", "tiny", "--steps", "3",
                              "--scenarios", "poi_churn",
                              "--incremental", "always", "--stats"])
        finally:
            server.stop()
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "incremental rescore on 3/3" in out
        assert "plan cache:" in out

    def test_stream_unknown_scenario_is_reported(self, packaged_registry, capsys):
        exit_code = main(["stream", "--preset", "tiny",
                          "--registry", str(packaged_registry),
                          "--model", "tiny", "--scenarios", "earthquake"])
        assert exit_code == 2
        assert "unknown scenarios" in capsys.readouterr().err


class TestRegistry:
    def test_registry_materialize_and_list(self, tmp_path, capsys):
        exit_code = main(["registry", "--root", str(tmp_path / "datasets"),
                          "--materialize", "tiny"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "tiny" in out
        assert Path(tmp_path / "datasets" / "manifest.json").exists()

    def test_registry_empty_listing(self, tmp_path, capsys):
        exit_code = main(["registry", "--root", str(tmp_path / "empty")])
        assert exit_code == 0
        assert "empty" in capsys.readouterr().out


class TestWorkloadFleet:
    @pytest.fixture(scope="class")
    def fleet_registry(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("fleet-models")
        assert main(["package", "--preset", "tiny", "--epochs", "8",
                     "--registry", str(root), "--name", "tiny"]) == 0
        return root

    @pytest.fixture(scope="class")
    def recorded_trace(self, tmp_path_factory, capsys=None):
        path = tmp_path_factory.mktemp("traces") / "trace.npz"
        assert main(["workload", "--preset", "tiny", "--cities", "2",
                     "--ops", "12", "--output", str(path)]) == 0
        return path

    def test_workload_records_a_loadable_trace(self, recorded_trace, capsys):
        from repro.bench import load_trace
        trace = load_trace(recorded_trace)
        assert len(trace) == 12
        assert len(trace.cities) == 2

    def test_fleet_replays_trace_and_verifies_oracle(self, fleet_registry,
                                                     recorded_trace, tmp_path,
                                                     capsys):
        report_path = tmp_path / "fleet.json"
        exit_code = main(["fleet", "--registry", str(fleet_registry),
                          "--model", "tiny", "--shards", "2",
                          "--trace", str(recorded_trace),
                          "--verify-single", "--json", str(report_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "bit-identical to single-engine oracle: yes" in out
        report = json.loads(report_path.read_text())
        assert report["replay"]["ops"] == 12
        assert report["stats"]["fleet"]["no_replica_errors"] == 0

    def test_fleet_chaos_demo_fails_over(self, fleet_registry, recorded_trace,
                                         capsys):
        exit_code = main(["fleet", "--registry", str(fleet_registry),
                          "--model", "tiny", "--shards", "3",
                          "--trace", str(recorded_trace),
                          "--kill-shard", "0", "--kill-after", "2",
                          "--verify-single"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "bit-identical to single-engine oracle: yes" in out
        # the killed shard shows up in the printed stats
        assert "DOWN" in out

    def test_fleet_ad_hoc_workload_without_trace(self, fleet_registry, capsys):
        exit_code = main(["fleet", "--registry", str(fleet_registry),
                          "--model", "tiny", "--preset", "tiny",
                          "--shards", "2", "--ops", "8"])
        assert exit_code == 0
        assert "completed 8/8 ops" in capsys.readouterr().out

    def test_fleet_kill_without_replication_is_reported(self, fleet_registry,
                                                        recorded_trace,
                                                        capsys):
        exit_code = main(["fleet", "--registry", str(fleet_registry),
                          "--model", "tiny", "--shards", "2",
                          "--replication", "1",
                          "--trace", str(recorded_trace),
                          "--kill-shard", "0"])
        assert exit_code == 2
        assert "--replication >= 2" in capsys.readouterr().err

    def test_workload_rejects_bad_mix(self, capsys):
        exit_code = main(["workload", "--preset", "tiny", "--ops", "4",
                          "--score-weight", "0", "--update-weight", "0",
                          "--evict-weight", "0", "--output", "/tmp/x.npz"])
        assert exit_code == 2
        assert "weights" in capsys.readouterr().err
