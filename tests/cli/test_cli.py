"""End-to-end tests of the ``repro-uv`` command-line interface.

Every test calls :func:`repro.cli.main` in-process with the ``tiny`` preset
(256 regions) and reduced epochs so the whole module stays fast.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(action for action in parser._actions
                          if isinstance(action, type(parser._subparsers._group_actions[0])))
        assert set(subparsers.choices) == {"generate-city", "build-graph", "show-city",
                                           "train", "evaluate", "reproduce", "registry"}


class TestGenerateAndBuild:
    def test_generate_city_writes_directory(self, tmp_path, capsys):
        exit_code = main(["generate-city", "--preset", "tiny", "--seed", "3",
                          "--output", str(tmp_path / "city")])
        assert exit_code == 0
        assert (tmp_path / "city" / "config.json").exists()
        assert "true UV regions" in capsys.readouterr().out

    def test_build_graph_from_preset(self, tmp_path, capsys):
        exit_code = main(["build-graph", "--preset", "tiny",
                          "--output", str(tmp_path / "graph.npz")])
        assert exit_code == 0
        assert (tmp_path / "graph.npz").exists()
        assert "undirected edges" in capsys.readouterr().out

    def test_build_graph_with_ablation_from_saved_city(self, tmp_path, capsys):
        main(["generate-city", "--preset", "tiny", "--output", str(tmp_path / "city")])
        exit_code = main(["build-graph", "--city-dir", str(tmp_path / "city"),
                          "--ablation", "noImage",
                          "--output", str(tmp_path / "graph_noimage.npz")])
        assert exit_code == 0
        assert "image features: 0" in capsys.readouterr().out

    def test_unknown_ablation_is_reported(self, tmp_path, capsys):
        exit_code = main(["build-graph", "--preset", "tiny", "--ablation", "noSuchThing",
                          "--output", str(tmp_path / "graph.npz")])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_show_city_prints_map_and_stats(self, capsys):
        exit_code = main(["show-city", "--preset", "tiny"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "latent land use" in out
        assert "regions: 256" in out


class TestTrainAndEvaluate:
    def test_train_mlp_and_export(self, tmp_path, capsys):
        predictions = tmp_path / "predictions.csv"
        geojson = tmp_path / "regions.geojson"
        exit_code = main(["train", "--preset", "tiny", "--method", "MLP",
                          "--epochs", "10", "--predictions", str(predictions),
                          "--geojson", str(geojson)])
        assert exit_code == 0
        with open(predictions) as handle:
            rows = list(csv.DictReader(handle))
        assert rows and "uv_probability" in rows[0]
        with open(geojson) as handle:
            assert json.load(handle)["type"] == "FeatureCollection"
        assert "screening list" in capsys.readouterr().out

    def test_train_on_prebuilt_graph(self, tmp_path, capsys):
        graph_path = tmp_path / "graph.npz"
        main(["build-graph", "--preset", "tiny", "--output", str(graph_path)])
        exit_code = main(["train", "--graph", str(graph_path), "--method", "MLP",
                          "--epochs", "5"])
        assert exit_code == 0

    def test_evaluate_prints_table(self, capsys):
        exit_code = main(["evaluate", "--preset", "tiny", "--methods", "MLP",
                          "--folds", "2", "--epochs", "10"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "AUC" in out and "MLP" in out

    def test_evaluate_markdown_output(self, capsys):
        exit_code = main(["evaluate", "--preset", "tiny", "--methods", "MLP",
                          "--folds", "2", "--epochs", "5", "--markdown"])
        assert exit_code == 0
        assert "| City | Method |" in capsys.readouterr().out.replace("  ", " ")

    def test_unknown_method_is_reported(self, capsys):
        exit_code = main(["evaluate", "--preset", "tiny", "--methods", "NotAMethod"])
        assert exit_code == 2
        assert "unknown method" in capsys.readouterr().err


class TestRegistry:
    def test_registry_materialize_and_list(self, tmp_path, capsys):
        exit_code = main(["registry", "--root", str(tmp_path / "datasets"),
                          "--materialize", "tiny"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "tiny" in out
        assert Path(tmp_path / "datasets" / "manifest.json").exists()

    def test_registry_empty_listing(self, tmp_path, capsys):
        exit_code = main(["registry", "--root", str(tmp_path / "empty")])
        assert exit_code == 0
        assert "empty" in capsys.readouterr().out
