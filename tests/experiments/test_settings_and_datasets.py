"""Tests for the experiment settings and dataset caching helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import EVALUATION_CITIES, PAPER_CITY_SETTINGS, run_scale
from repro.experiments.datasets import clear_caches, load_city, load_graph
from repro.experiments.settings import (EFFICIENCY_CITIES, QUICK_GRID_FACTOR,
                                        ScaleSettings, city_cmsf_config,
                                        scaled_city_config)
from repro.synth import get_preset


class TestRunScale:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert run_scale() == "quick"

    def test_full_scale_selected_via_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "FULL")
        assert run_scale() == "full"

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            run_scale()


class TestScaleSettings:
    def test_quick_settings_are_reduced(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        quick = ScaleSettings.current()
        monkeypatch.setenv("REPRO_SCALE", "full")
        full = ScaleSettings.current()
        assert quick.cmsf_master_epochs < full.cmsf_master_epochs
        assert len(quick.seeds) < len(full.seeds)
        assert quick.n_folds == full.n_folds == 3


class TestScaledCityConfig:
    def test_quick_scale_shrinks_evaluation_cities(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        preset = get_preset("fuzhou")
        scaled = scaled_city_config("fuzhou")
        assert scaled.grid_height == max(int(round(preset.grid_height * QUICK_GRID_FACTOR)), 16)
        assert scaled.grid_width < preset.grid_width
        assert scaled.villages.count <= preset.villages.count

    def test_full_scale_keeps_preset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        preset = get_preset("fuzhou")
        scaled = scaled_city_config("fuzhou")
        assert scaled.grid_height == preset.grid_height
        assert scaled.villages.count == preset.villages.count

    def test_small_presets_never_shrunk(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scaled_city_config("tiny").grid_height == get_preset("tiny").grid_height


class TestCityCmsfConfig:
    def test_per_city_hyperparameters_differ(self):
        shenzhen = city_cmsf_config("shenzhen")
        fuzhou = city_cmsf_config("fuzhou")
        beijing = city_cmsf_config("beijing")
        assert beijing.maga_heads == 1
        assert shenzhen.maga_heads == fuzhou.maga_heads == 2
        assert beijing.cluster_aggregation == "concat"
        assert shenzhen.lambda_weight != fuzhou.lambda_weight

    def test_seed_propagates(self):
        assert city_cmsf_config("fuzhou", seed=7).seed == 7

    def test_paper_reference_settings_cover_all_cities(self):
        assert set(PAPER_CITY_SETTINGS) == set(EVALUATION_CITIES)
        assert set(EFFICIENCY_CITIES) <= set(EVALUATION_CITIES)


class TestDatasetCaching:
    def test_load_city_is_memoised(self):
        clear_caches()
        first = load_city("tiny")
        second = load_city("tiny")
        assert first is second
        clear_caches()

    def test_load_graph_builds_consistent_graph(self):
        clear_caches()
        graph = load_graph("tiny")
        again = load_graph("tiny")
        assert graph is again
        assert graph.num_nodes > 0
        np.testing.assert_array_equal(graph.labels, again.labels)
        clear_caches()
