"""Staged canary rollout tests: state machine, policy, controller, HTTP.

The contracts under test, layer by layer:

* :class:`RolloutStateMachine` — guarded lifecycle transitions; a
  rolled-back rollout can never promote without a fresh ``start``;
* :class:`RolloutPolicy` — the promote/hold/rollback decision table,
  including the refuse-to-act-on-nan rule;
* :class:`RolloutController` over a real :class:`FleetRouter` — hot
  swaps, deterministic canary routing, shadow scoring, staged
  promotion, automatic rollback, and the two acceptance invariants:
  replaying a recorded trace through a rollout twice is bit-identical
  (scores *and* canary decisions), and after an automatic rollback the
  score path is bit-identical to a never-rolled-out baseline oracle;
* the HTTP control plane — ``POST /swap`` and ``GET/POST /rollout``
  through :class:`ScoringServer` / :class:`ScoringClient`.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.bench import (replay_rollout_trace, replay_trace,
                         rollout_replays_identical, with_rollout)
from repro.obs import MetricsRegistry
from repro.serve import (DEFAULT_STAGES, EngineShard, FleetRouter,
                         InferenceEngine, RolloutController, RolloutError,
                         RolloutPolicy, RolloutStateMachine, ScoringClient,
                         ScoringServer, canary_assignment, is_canary,
                         stages_for_fraction)
from repro.serve.client import ScoringServiceError
from repro.serve.rollout import ShadowStats

STAGES = (0.5, 1.0)


# the three-version registry (tiny:1 baseline, tiny:2 identical twin,
# tiny:3 drifted retrain) lives in conftest.py as ``rollout_registry``
def _resolver(registry, cache_size=8):
    def resolve(model, version):
        return InferenceEngine.from_bundle(registry.resolve(model, version),
                                           cache_size=cache_size)
    return resolve


def _fleet(registry, shards=2, replication=2):
    members = [EngineShard(InferenceEngine.from_bundle(
        registry.resolve("tiny", "1"), cache_size=8), shard_id=f"s{i}")
        for i in range(shards)]
    return FleetRouter(members, replication=replication)


def _controller(registry, fleet, version, **kwargs):
    kwargs.setdefault("policy", RolloutPolicy(min_pairs=1))
    kwargs.setdefault("stages", STAGES)
    return RolloutController(fleet, "tiny", version,
                             resolve_engine=_resolver(registry),
                             metrics=MetricsRegistry(), **kwargs)


def _split_seed(cities, fraction=0.5):
    """A canary seed putting *some but not all* cities in the canary —
    the interesting regime for routing tests (searched, not hardcoded,
    so the fixture cities can change without breaking the suite)."""
    keys = [graph.structural_fingerprint() for graph in cities.values()]
    for seed in range(500):
        flags = [canary_assignment(seed, key) < fraction for key in keys]
        if any(flags) and not all(flags):
            return seed
    raise AssertionError("no seed splits the cities at this fraction")


# ----------------------------------------------------------------------
# the pure state machine
# ----------------------------------------------------------------------
class TestRolloutStateMachine:
    def test_full_promotion_walk(self):
        machine = RolloutStateMachine((0.05, 0.25, 1.0))
        assert machine.state == "idle" and machine.fraction == 0.0
        machine.start()
        assert (machine.state, machine.stage) == ("canary", 0)
        assert machine.fraction == 0.05
        assert machine.promote() == "canary" and machine.fraction == 0.25
        assert machine.promote() == "canary" and machine.fraction == 1.0
        assert machine.promote() == "promoted"
        assert machine.fraction == 1.0 and machine.terminal

    def test_rollback_is_terminal_for_the_rollout(self):
        machine = RolloutStateMachine()
        machine.start()
        machine.rollback()
        assert machine.state == "rolled_back" and machine.fraction == 0.0
        for action in ("promote", "rollback", "abort"):
            with pytest.raises(RolloutError):
                getattr(machine, action)()
        # but a *new* rollout may start
        machine.start()
        assert (machine.state, machine.stage) == ("canary", 0)
        assert machine.rollouts == 2

    def test_promote_requires_canary(self):
        machine = RolloutStateMachine()
        with pytest.raises(RolloutError, match="cannot promote"):
            machine.promote()
        machine.start()
        while machine.state == "canary":
            machine.promote()
        with pytest.raises(RolloutError, match="cannot promote"):
            machine.promote()

    def test_double_start_raises(self):
        machine = RolloutStateMachine()
        machine.start()
        with pytest.raises(RolloutError, match="already in progress"):
            machine.start()

    def test_abort_recorded_separately(self):
        machine = RolloutStateMachine()
        machine.start()
        machine.abort()
        assert machine.state == "aborted"

    @pytest.mark.parametrize("stages", [
        (), (0.5, 0.25, 1.0), (0.5, 0.5, 1.0), (0.25, 0.5), (0.0, 1.0),
        (0.5, 1.5),
    ], ids=["empty", "decreasing", "flat", "not-full", "zero", "over-one"])
    def test_invalid_stage_ladders_rejected(self, stages):
        with pytest.raises(RolloutError):
            RolloutStateMachine(stages)

    def test_transitions_are_logged(self):
        machine = RolloutStateMachine((0.5, 1.0))
        machine.start()
        machine.promote()
        machine.promote()
        assert machine.transitions == [("idle", "canary", 0),
                                       ("canary", "canary", 1),
                                       ("canary", "promoted", 1)]


class TestStagesForFraction:
    def test_fraction_heads_the_default_ladder(self):
        assert stages_for_fraction(0.1) == (0.1, 0.25, 1.0)
        assert stages_for_fraction(0.5) == (0.5, 1.0)
        assert stages_for_fraction(1.0) == (1.0,)
        assert stages_for_fraction(0.05) == DEFAULT_STAGES

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_invalid_fractions_rejected(self, fraction):
        with pytest.raises(RolloutError):
            stages_for_fraction(fraction)


# ----------------------------------------------------------------------
# canary assignment
# ----------------------------------------------------------------------
class TestCanaryAssignment:
    def test_deterministic_and_in_unit_interval(self):
        for seed in (0, 1, 42):
            for key in ("a", "b", "fingerprint-1"):
                u = canary_assignment(seed, key)
                assert 0.0 <= u < 1.0
                assert u == canary_assignment(seed, key)

    def test_stages_are_nested(self):
        # every 5% canary member is also a 25% and a 100% member
        keys = [f"city-{i}" for i in range(200)]
        for key in keys:
            if is_canary(7, key, 0.05):
                assert is_canary(7, key, 0.25)
            if is_canary(7, key, 0.25):
                assert is_canary(7, key, 1.0)

    def test_fraction_roughly_honoured(self):
        keys = [f"city-{i}" for i in range(2000)]
        hits = sum(is_canary(3, key, 0.25) for key in keys)
        assert 0.18 < hits / len(keys) < 0.32

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            is_canary(0, "x", 1.5)


# ----------------------------------------------------------------------
# the policy decision table
# ----------------------------------------------------------------------
class TestRolloutPolicy:
    def test_holds_until_min_pairs(self):
        policy = RolloutPolicy(min_pairs=3)
        stats = ShadowStats()
        stats.record(0.0, 1.0, 0, 10)
        decision = policy.decide(stats)
        assert decision.action == "hold"
        assert "1/3" in decision.reasons[0]

    def test_promotes_within_thresholds(self):
        policy = RolloutPolicy(min_pairs=1)
        stats = ShadowStats()
        stats.record(0.01, 0.95, 0, 100)
        assert policy.decide(stats).action == "promote"

    @pytest.mark.parametrize("record,needle", [
        ((0.2, 0.95, 0, 100), "mean|Δp|"),
        ((0.01, 0.5, 0, 100), "rank-ρ"),
        ((0.01, 0.95, 10, 100), "crossing fraction"),
    ], ids=["mean-change", "rank-corr", "crossings"])
    def test_each_breach_rolls_back(self, record, needle):
        policy = RolloutPolicy(min_pairs=1)
        stats = ShadowStats()
        stats.record(*record)
        decision = policy.decide(stats)
        assert decision.action == "rollback"
        assert any(needle in reason for reason in decision.reasons)

    def test_never_acts_on_nan(self):
        policy = RolloutPolicy(min_pairs=1)
        stats = ShadowStats()
        stats.record(math.nan, 0.9, 0, 100)
        decision = policy.decide(stats)
        assert decision.action == "hold"
        assert "nan" in decision.reasons[0]

    @pytest.mark.parametrize("kwargs", [
        {"max_mean_abs_change": -0.1}, {"min_rank_correlation": 2.0},
        {"max_crossing_fraction": 1.5}, {"min_pairs": 0},
    ])
    def test_invalid_thresholds_rejected(self, kwargs):
        with pytest.raises(RolloutError):
            RolloutPolicy(**kwargs)


class TestShadowStats:
    def test_running_aggregates(self):
        stats = ShadowStats()
        stats.record(0.1, 0.9, 1, 50)
        stats.record(0.3, 0.8, 0, 50)
        assert stats.pairs == 2
        assert stats.mean_abs_change == pytest.approx(0.2)
        assert stats.worst_rank_correlation == pytest.approx(0.8)
        assert stats.crossing_fraction == pytest.approx(1 / 100)

    def test_crossing_fraction_defined_when_empty(self):
        assert ShadowStats().crossing_fraction == 0.0


# ----------------------------------------------------------------------
# the controller over a real fleet
# ----------------------------------------------------------------------
class TestControllerOnFleet:
    def test_zero_drift_rollout_promotes_fleet_wide_invisibly(
            self, rollout_registry, fleet_cities, fleet_trace):
        """An identical-twin version walks the whole ladder and never
        perturbs a single float64 score."""
        seed = _split_seed(fleet_cities)
        trace = with_rollout(fleet_trace, 0)
        fleet = _fleet(rollout_registry)
        controller = _controller(rollout_registry, fleet, "2", seed=seed)
        result = replay_rollout_trace(trace, controller, collect_stats=False)
        status = result.rollout_status

        assert status["promoted"] and status["state"] == "promoted"
        assert not status["rolled_back"] and status["rollbacks"] == 0
        # fleet-wide: every stream ends up swapped onto tiny:2
        assert sorted(status["swapped_streams"]) == sorted(trace.cities)
        assert all(entry["swapped"] for entry in status["streams"].values())
        assert any(d["canary"] for d in result.decisions)
        # the promotion left no trace in the score path
        oracle = replay_trace(trace, EngineShard(
            InferenceEngine.from_bundle(rollout_registry.resolve("tiny", "1")),
            shard_id="oracle"), collect_stats=False)
        identical, max_diff = rollout_replays_identical(
            result, replay_rollout_trace(
                trace, _controller(rollout_registry, _fleet(rollout_registry),
                                   "2", seed=seed), collect_stats=False))
        assert identical and max_diff == 0.0
        for i, op in enumerate(trace.ops):
            if result.scores[i] is not None:
                np.testing.assert_array_equal(result.scores[i],
                                              oracle.scores[i])
        fleet.close()

    def test_drifted_rollout_auto_rolls_back_to_oracle_scores(
            self, rollout_registry, fleet_cities, fleet_trace):
        """The acceptance invariant: a drift-injected version rolls back
        automatically and the post-rollback score path is bit-identical
        to a never-rolled-out baseline oracle."""
        seed = _split_seed(fleet_cities)
        trace = with_rollout(fleet_trace, 0)
        fleet = _fleet(rollout_registry)
        # zero tolerance: the first shadow pair with any drift rolls back
        controller = _controller(
            rollout_registry, fleet, "3", seed=seed,
            policy=RolloutPolicy(max_mean_abs_change=0.0, min_pairs=1))
        result = replay_rollout_trace(trace, controller, collect_stats=False)
        status = result.rollout_status

        assert status["rolled_back"] and status["rollbacks"] == 1
        assert status["swapped_streams"] == []
        canary_flags = [d["canary"] for d in result.decisions]
        assert canary_flags.count(True) == 1
        last = status["last_decision"]
        assert last["action"] == "rollback"

        oracle = replay_trace(trace, EngineShard(
            InferenceEngine.from_bundle(rollout_registry.resolve("tiny", "1")),
            shard_id="oracle"), collect_stats=False)
        score_ops = [i for i, op in enumerate(trace.ops) if op.op == "score"]
        rollback_op = score_ops[canary_flags.index(True)]
        # the lone canary score actually came from the drifted version …
        assert not np.array_equal(result.scores[rollback_op],
                                  oracle.scores[rollback_op])
        # … and everything after the rollback is bit-identical to the
        # never-rolled-out baseline
        compared = 0
        for i in range(rollback_op + 1, len(trace.ops)):
            if result.scores[i] is not None:
                np.testing.assert_array_equal(result.scores[i],
                                              oracle.scores[i])
                compared += 1
        assert compared > 0, "trace too short to exercise post-rollback ops"
        fleet.close()

    def test_rollout_replay_is_bit_identical(self, rollout_registry,
                                             fleet_cities, fleet_trace):
        """Same trace + same controller config => identical canary
        decisions and bit-identical float64 score trajectories."""
        seed = _split_seed(fleet_cities)
        trace = with_rollout(fleet_trace, 3)
        runs = []
        for _ in range(2):
            fleet = _fleet(rollout_registry)
            controller = _controller(rollout_registry, fleet, "3", seed=seed,
                                     policy=RolloutPolicy(min_pairs=2))
            runs.append(replay_rollout_trace(trace, controller,
                                             collect_stats=False))
            fleet.close()
        identical, max_diff = rollout_replays_identical(*runs)
        assert identical and max_diff == 0.0
        assert runs[0].decisions == runs[1].decisions
        assert runs[0].score_digests == runs[1].score_digests

    def test_canary_decisions_survive_fleet_resize(self, rollout_registry,
                                                   fleet_cities,
                                                   fleet_trace):
        """Adding shards cannot move a city in or out of the canary —
        assignment hashes the city key, not the ring."""
        seed = _split_seed(fleet_cities)
        trace = with_rollout(fleet_trace, 0)
        assignments = []
        for shards in (2, 3):
            fleet = _fleet(rollout_registry, shards=shards)
            controller = _controller(rollout_registry, fleet, "2", seed=seed,
                                     auto=False)
            replay_rollout_trace(trace, controller, collect_stats=False)
            assignments.append({
                name: (entry["assignment"], entry["canary"])
                for name, entry in controller.status()["streams"].items()})
            fleet.close()
        assert assignments[0] == assignments[1]

    def test_manual_lifecycle_and_hold(self, rollout_registry, fleet_cities):
        fleet = _fleet(rollout_registry)
        for name, graph in fleet_cities.items():
            fleet.open_stream(name, graph)
        controller = _controller(
            rollout_registry, fleet, "2", seed=_split_seed(fleet_cities),
            auto=False, policy=RolloutPolicy(min_pairs=100))
        # nothing runs before start: scores are all baseline
        assert not controller.is_canary(next(iter(fleet_cities)))
        status = controller.start(list(fleet_cities))
        assert status["state"] == "canary" and status["stage"] == 0
        canary = next(name for name, entry in status["streams"].items()
                      if entry["canary"])
        controller.score(canary)
        decision = controller.evaluate()
        assert decision.action == "hold"  # min_pairs unreachable
        assert controller.machine.state == "canary"
        assert controller.promote() == "canary"  # manual override
        report = controller.rollback()
        assert report["rolled_back"] and canary in report["restored_streams"]
        # evaluate outside a live rollout is a hold, never an action
        assert controller.evaluate(act=True).action == "hold"
        fleet.close()

    def test_abort_restores_every_swapped_stream(self, rollout_registry,
                                                 fleet_cities):
        fleet = _fleet(rollout_registry)
        for name, graph in fleet_cities.items():
            fleet.open_stream(name, graph)
        controller = _controller(rollout_registry, fleet, "2",
                                 seed=_split_seed(fleet_cities), auto=False)
        controller.start(list(fleet_cities))
        assert controller.status()["swapped_streams"]  # eager stage sync
        report = controller.abort()
        assert report["aborted"]
        status = controller.status()
        assert status["aborted"] and status["swapped_streams"] == []
        # after the abort every stream scores exactly like the baseline
        baseline = InferenceEngine.from_bundle(
            rollout_registry.resolve("tiny", "1"))
        for name, graph in fleet_cities.items():
            np.testing.assert_array_equal(
                np.asarray(fleet.score_stream(name)["probabilities"],
                           dtype=np.float64),
                np.asarray(baseline.score(graph).probabilities,
                           dtype=np.float64))
        fleet.close()

    def test_rollout_metrics_exported(self, rollout_registry, fleet_cities,
                                      fleet_trace):
        metrics = MetricsRegistry()
        fleet = _fleet(rollout_registry)
        controller = RolloutController(
            fleet, "tiny", "2", resolve_engine=_resolver(rollout_registry),
            policy=RolloutPolicy(min_pairs=1), stages=STAGES,
            seed=_split_seed(fleet_cities), metrics=metrics)
        replay_rollout_trace(with_rollout(fleet_trace, 0), controller,
                             collect_stats=False)
        text = metrics.render()
        for name in ("repro_rollout_stage", "repro_rollout_canary_fraction",
                     "repro_rollout_requests_total",
                     "repro_rollout_shadow_pairs_total",
                     "repro_rollout_swaps_total",
                     "repro_rollout_promotions_total",
                     "repro_rollout_drift_mean_abs_change"):
            assert name in text
        fleet.close()


# ----------------------------------------------------------------------
# the rollout workload op
# ----------------------------------------------------------------------
class TestRolloutWorkloadOp:
    def test_with_rollout_inserts_a_control_op(self, fleet_trace):
        trace = with_rollout(fleet_trace, 2)
        assert len(trace) == len(fleet_trace) + 1
        assert trace.ops[2].op == "rollout"
        assert trace.meta["rollout_at"] == 2
        assert trace.name.endswith("+rollout@2")
        # the source trace is untouched
        assert all(op.op != "rollout" for op in fleet_trace.ops)

    def test_with_rollout_validates_the_index(self, fleet_trace):
        with pytest.raises(ValueError, match="at must be"):
            with_rollout(fleet_trace, len(fleet_trace) + 1)
        with pytest.raises(ValueError, match="at must be"):
            with_rollout(fleet_trace, -1)

    def test_rollout_traces_survive_the_codec(self, fleet_trace,
                                              traces_equal):
        from repro.bench import trace_from_bytes, trace_to_bytes
        trace = with_rollout(fleet_trace, 2)
        traces_equal(trace, trace_from_bytes(trace_to_bytes(trace)))

    def test_plain_replay_treats_rollout_as_noop(self, rollout_registry,
                                                 fleet_trace):
        trace = with_rollout(fleet_trace, 2)
        shard = EngineShard(InferenceEngine.from_bundle(
            rollout_registry.resolve("tiny", "1")), shard_id="solo")
        result = replay_trace(trace, shard, collect_stats=False)
        assert result.completed_ops == len(trace)
        assert result.scores[2] is None  # the control op scores nothing


# ----------------------------------------------------------------------
# the HTTP control plane
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def rollout_server(rollout_registry):
    with ScoringServer(rollout_registry, quiet=True) as running:
        yield running


@pytest.fixture(scope="module")
def rollout_client(rollout_server):
    client = ScoringClient(rollout_server.url)
    client.wait_until_ready()
    yield client
    client.close()


class TestServiceRollout:
    def test_swap_endpoint_rebinds_and_swaps_back(self, rollout_client,
                                                  fleet_cities):
        name, graph = next(iter(fleet_cities.items()))
        stream = f"swap-{name}"
        opened = rollout_client.open_stream(stream, graph, "tiny",
                                            version="1")
        before = np.asarray(opened["score"]["probabilities"],
                            dtype=np.float64)
        payload = rollout_client.swap_stream(stream, version="2")
        assert payload["swapped"]
        assert payload["previous_model_version"] == "1"
        assert payload["model_version"] == "2"
        # identical twin: the hot swap is invisible in the scores
        after = np.asarray(
            rollout_client.score_stream(stream)["probabilities"],
            dtype=np.float64)
        np.testing.assert_array_equal(before, after)
        back = rollout_client.swap_stream(stream, version="1")
        assert back["previous_model_version"] == "2"
        assert back["model_version"] == "1"

    def test_swap_unknown_stream_or_version_rejected(self, rollout_client):
        with pytest.raises(ScoringServiceError):
            rollout_client.swap_stream("never-opened", version="2")
        with pytest.raises(ScoringServiceError):
            rollout_client.swap_stream("never-opened", version="99")

    def test_http_rollout_lifecycle(self, rollout_client, fleet_cities):
        streams = {}
        for name, graph in fleet_cities.items():
            stream = f"ro-{name}"
            rollout_client.open_stream(stream, graph, "tiny", version="1")
            streams[stream] = graph
        assert rollout_client.rollout_status() == {"active": False}

        # search a seed that puts some (not all) streams in the canary;
        # aborting between attempts exercises restartability over HTTP
        for seed in range(100):
            status = rollout_client.start_rollout(
                "tiny", "2", seed=seed, stages=[0.5, 1.0],
                policy={"min_pairs": 1})
            flags = [entry["canary"]
                     for entry in status["streams"].values()]
            if any(flags) and not all(flags):
                break
            rollout_client.rollout("abort")
        else:
            raise AssertionError("no splitting seed found over HTTP")
        assert status["active"] and status["state"] == "canary"

        # double start while in flight conflicts (409), not a crash
        with pytest.raises(ScoringServiceError) as info:
            rollout_client.start_rollout("tiny", "2")
        assert info.value.status == 409

        # canary scores are flagged, shadow-paired, and (zero drift,
        # min_pairs=1, auto) promote the rollout to completion
        seen_canary = False
        for _ in range(3):
            for stream in streams:
                payload = rollout_client.score_stream(stream)
                seen_canary |= bool(payload.get("canary"))
            if rollout_client.rollout_status()["state"] == "promoted":
                break
        assert seen_canary
        status = rollout_client.rollout_status()
        assert status["promoted"] and status["state"] == "promoted"
        described = {entry["stream"]: entry
                     for entry in rollout_client.streams()["streams"]}
        for stream in streams:
            assert described[stream]["model_version"] == "2"

        # a fresh rollout from the promoted state: manual rollback
        status = rollout_client.start_rollout("tiny", "3", seed=0,
                                              auto=False,
                                              canary_fraction=0.5)
        assert status["state"] == "canary"
        status = rollout_client.rollout("rollback")
        assert status["rolled_back"]
        with pytest.raises(ScoringServiceError) as info:
            rollout_client.rollout("promote")
        assert info.value.status == 409

    def test_rollout_validation_errors(self, rollout_client):
        with pytest.raises(ScoringServiceError) as info:
            rollout_client.rollout("start")  # missing model/version
        assert info.value.status == 400
        with pytest.raises(ScoringServiceError) as info:
            rollout_client.rollout("frobnicate")
        assert info.value.status in (400, 409)
        with pytest.raises(ScoringServiceError) as info:
            rollout_client.start_rollout("tiny", "2",
                                         policy={"bogus_knob": 1})
        assert info.value.status == 400
