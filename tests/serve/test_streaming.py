"""StreamingScorer correctness and the HTTP /update route.

The acceptance contract of the streaming layer:

* after every applied delta, the stream's scores are **bit-identical** to
  a full-rebuild ``detector.predict_proba`` of the same graph (float64);
* feature-only deltas reuse the cached :class:`EdgePlan` (no re-plan at
  all — verified via the module-level build counter);
* topology deltas rebuild the plan exactly once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.graphops import plan_cache_info
from repro.serve import InferenceEngine, ScoringServer, ScoringClient
from repro.serve.client import ScoringServiceError
from repro.stream import GraphDelta, StreamingScorer, apply_deltas
from repro.synth import EvolutionConfig, generate_evolution


@pytest.fixture()
def engine(fitted_detector):
    return InferenceEngine(fitted_detector, cache_size=8)


def evolution(graph, scenarios, steps=4, seed=11, **kwargs):
    return generate_evolution(graph, EvolutionConfig(
        steps=steps, seed=seed, scenarios=scenarios, **kwargs))


# ----------------------------------------------------------------------
# incremental correctness (acceptance criterion)
# ----------------------------------------------------------------------
class TestIncrementalCorrectness:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_streamed_scores_match_full_rebuild_bitwise(
            self, engine, fitted_detector, tiny_graph_small_image, seed):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph)
        deltas = evolution(graph, ("poi_churn", "imagery_refresh",
                                   "road_rewiring"), steps=6, seed=seed)
        assert len(deltas) == 6
        current = graph
        for delta in deltas:
            update = scorer.update(delta)
            current = delta.apply(current)
            reference = fitted_detector.predict_proba(current)
            assert reference.dtype == np.float64
            assert np.array_equal(update.probabilities, reference), delta.kind

    def test_feature_only_deltas_never_replan(self, engine,
                                              tiny_graph_small_image):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph)
        scorer.predict_proba()
        deltas = evolution(graph, ("poi_churn", "imagery_refresh"),
                           steps=5, seed=7)
        builds_before = plan_cache_info()["builds"]
        for delta in deltas:
            update = scorer.update(delta)
            assert not update.topology_changed
            assert update.plan_reused
        assert plan_cache_info()["builds"] == builds_before
        assert scorer.stats.plan_reuses == 5
        assert scorer.stats.plan_rebuilds == 0

    def test_topology_delta_rebuilds_plan(self, engine,
                                          tiny_graph_small_image):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph)
        deltas = evolution(graph, ("road_rewiring",), steps=2, seed=5)
        builds_before = plan_cache_info()["builds"]
        for delta in deltas:
            update = scorer.update(delta)
            assert update.topology_changed
            assert not update.plan_reused
        assert plan_cache_info()["builds"] == builds_before + len(deltas)
        assert scorer.stats.plan_rebuilds == len(deltas)

    def test_region_growth_streams_bitwise(self, engine, fitted_detector,
                                           tiny_graph_small_image):
        graph = GraphDelta(remove_regions=[0, 1]).apply(tiny_graph_small_image)
        scorer = StreamingScorer(engine, graph)
        deltas = evolution(graph, ("region_growth", "poi_churn"),
                           steps=4, seed=13)
        assert any(d.kind == "region_growth" for d in deltas)
        final = apply_deltas(graph, deltas)
        for delta in deltas:
            update = scorer.update(delta)
        assert update.num_regions == final.num_nodes
        assert np.array_equal(update.probabilities,
                              fitted_detector.predict_proba(final))

    def test_update_without_rescore(self, engine, tiny_graph_small_image):
        scorer = StreamingScorer(engine, tiny_graph_small_image)
        (delta,) = evolution(tiny_graph_small_image, ("poi_churn",), steps=1)
        update = scorer.update(delta, rescore=False)
        assert update.result is None
        assert update.probabilities is None
        assert scorer.version == 1
        assert scorer.stats.rescores == 0

    def test_version_and_fingerprint_advance(self, engine,
                                             tiny_graph_small_image):
        scorer = StreamingScorer(engine, tiny_graph_small_image)
        before = scorer.fingerprint
        (delta,) = evolution(tiny_graph_small_image, ("poi_churn",), steps=1)
        update = scorer.update(delta)
        assert scorer.version == update.version == 1
        assert update.fingerprint == scorer.fingerprint != before

    def test_superseded_version_evicted_from_cache(self, engine,
                                                   tiny_graph_small_image):
        scorer = StreamingScorer(engine, tiny_graph_small_image)
        scorer.predict_proba()
        old_fingerprint = scorer.fingerprint
        assert engine._cache.peek(old_fingerprint) is not None
        (delta,) = evolution(tiny_graph_small_image, ("poi_churn",), steps=1)
        scorer.update(delta)
        assert engine._cache.peek(old_fingerprint) is None

    def test_rejected_rescore_request_does_not_advance_stream(
            self, engine, tiny_graph_small_image):
        """A delta paired with an invalid scoring request must be rejected
        atomically — the stream stays at its previous version."""
        scorer = StreamingScorer(engine, tiny_graph_small_image)
        before = scorer.fingerprint
        (delta,) = evolution(tiny_graph_small_image, ("poi_churn",), steps=1)
        with pytest.raises(ValueError, match="out of range"):
            scorer.update(delta, regions=[10 ** 6])
        assert scorer.version == 0
        assert scorer.fingerprint == before
        assert scorer.stats.updates == 0
        # the same delta still applies cleanly afterwards
        assert scorer.update(delta).version == 1

    def test_dimension_mismatch_rejected(self, model_registry, tiny_graph):
        # tiny_graph has full-width image features, the bundle was trained
        # on the reduced variant; the manifest check must fire at stream
        # creation, not deep inside the encoder
        bundle_engine = InferenceEngine.from_bundle(
            model_registry.resolve("tiny"))
        with pytest.raises(ValueError, match="does not match"):
            StreamingScorer(bundle_engine, tiny_graph)


# ----------------------------------------------------------------------
# HTTP transport (/update, /streams)
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def streaming_server(model_registry):
    with ScoringServer(model_registry, cache_size=8) as server:
        client = ScoringClient(server.url)
        client.wait_until_ready()
        yield server, client


class TestUpdateRoute:
    def test_open_update_and_list(self, streaming_server, fitted_detector,
                                  tiny_graph_small_image):
        server, client = streaming_server
        graph = tiny_graph_small_image
        opened = client.open_stream("live", graph, "tiny")
        assert opened["opened"] is True
        assert opened["version"] == 0
        assert np.array_equal(np.asarray(opened["score"]["probabilities"]),
                              fitted_detector.predict_proba(graph))

        deltas = evolution(graph, ("poi_churn", "road_rewiring"),
                           steps=2, seed=19)
        current = graph
        for expected_version, delta in enumerate(deltas, start=1):
            response = client.update_stream("live", delta)
            current = delta.apply(current)
            assert response["version"] == expected_version
            assert np.array_equal(
                np.asarray(response["score"]["probabilities"]),
                fitted_detector.predict_proba(current))
        assert response["stats"]["plan_reuses"] == 1
        assert response["stats"]["plan_rebuilds"] == 1

        listing = client.streams()["streams"]
        (entry,) = [e for e in listing if e["stream"] == "live"]
        assert entry["model"] == "tiny"
        assert entry["version"] == 2

    def test_json_encoded_delta(self, streaming_server,
                                tiny_graph_small_image):
        server, client = streaming_server
        client.open_stream("json-stream", tiny_graph_small_image, "tiny")
        (delta,) = evolution(tiny_graph_small_image, ("poi_churn",), steps=1)
        response = client.update_stream("json-stream", delta, encoding="json")
        assert response["version"] == 1
        assert response["kind"] == "poi_churn"

    def test_unknown_stream_404(self, streaming_server,
                                tiny_graph_small_image):
        server, client = streaming_server
        (delta,) = evolution(tiny_graph_small_image, ("poi_churn",), steps=1)
        with pytest.raises(ScoringServiceError) as excinfo:
            client.update_stream("never-opened", delta)
        assert excinfo.value.status == 404

    def test_desynchronised_delta_is_clean_400(self, streaming_server,
                                               tiny_graph_small_image):
        server, client = streaming_server
        graph = tiny_graph_small_image
        client.open_stream("desync", graph, "tiny")
        stale = GraphDelta(remove_edges=[[0], [0]])  # edge does not exist
        with pytest.raises(ScoringServiceError) as excinfo:
            client.update_stream("desync", stale)
        assert excinfo.value.status == 400
        assert "not in the graph" in str(excinfo.value)

    def test_graph_and_delta_together_rejected(self, streaming_server,
                                               tiny_graph_small_image):
        server, client = streaming_server
        response_error = None
        from repro.serve.wire import delta_to_payload, graph_to_payload
        body = {"stream": "x", "model": "tiny",
                "graph": graph_to_payload(tiny_graph_small_image),
                "delta": delta_to_payload(GraphDelta())}
        with pytest.raises(ScoringServiceError) as excinfo:
            client._request("/update", body)
        assert excinfo.value.status == 400
        assert "exactly one" in str(excinfo.value)

    def test_open_requires_model(self, streaming_server,
                                 tiny_graph_small_image):
        server, client = streaming_server
        from repro.serve.wire import graph_to_payload
        body = {"stream": "x",
                "graph": graph_to_payload(tiny_graph_small_image)}
        with pytest.raises(ScoringServiceError) as excinfo:
            client._request("/update", body)
        assert excinfo.value.status == 400
        assert "model" in str(excinfo.value)

    def test_reopen_resets_stream(self, streaming_server,
                                  tiny_graph_small_image):
        server, client = streaming_server
        client.open_stream("reset-me", tiny_graph_small_image, "tiny")
        (delta,) = evolution(tiny_graph_small_image, ("poi_churn",), steps=1)
        assert client.update_stream("reset-me", delta)["version"] == 1
        reopened = client.open_stream("reset-me", tiny_graph_small_image,
                                      "tiny", rescore=False)
        assert reopened["version"] == 0
        assert "score" not in reopened

    def test_healthz_counts_streams(self, streaming_server):
        server, client = streaming_server
        health = client.healthz()
        assert health["streams_open"] >= 1
