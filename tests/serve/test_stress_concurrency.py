"""Concurrency stress tests for the engine, streaming scorer and server.

The invariants exercised under a threaded mixed workload (cache hits,
misses, evictions and graph updates):

* every score returned by the engine is bit-identical to the detector's
  own ``predict_proba`` of the graph version that was scored — caching,
  eviction and request deduplication never corrupt a result;
* cache statistics stay consistent (``hits + misses == requests``);
* a reader racing a streaming update observes either the pre-delta or the
  post-delta version in full — each returned (fingerprint, scores) pair
  matches the serial reference for exactly that version, so a
  half-applied delta would be caught as a mismatched vector;
* the HTTP server survives the same mix over real sockets.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve import InferenceEngine, ScoringClient, ScoringServer
from repro.stream import StreamingScorer, apply_deltas
from repro.synth import EvolutionConfig, generate_evolution

N_VERSIONS = 6
WORKERS = 6
OPS_PER_WORKER = 10


@pytest.fixture(scope="module")
def graph_versions(fitted_detector, tiny_graph_small_image):
    """A chain of graph versions with serial reference scores.

    Versions alternate feature-only and topology deltas, so the stress
    mix covers plan reuse and rebuild as well.
    """
    deltas = generate_evolution(
        tiny_graph_small_image,
        EvolutionConfig(steps=N_VERSIONS - 1, seed=23,
                        scenarios=("poi_churn", "road_rewiring",
                                   "imagery_refresh")))
    assert len(deltas) == N_VERSIONS - 1
    versions = [tiny_graph_small_image]
    for delta in deltas:
        versions.append(delta.apply(versions[-1]))
    references = {
        graph.fingerprint(): fitted_detector.predict_proba(graph)
        for graph in versions
    }
    return versions, deltas, references


class TestEngineStress:
    def test_threaded_mixed_workload_returns_exact_scores(
            self, fitted_detector, graph_versions):
        versions, _, references = graph_versions
        # cache smaller than the version count forces constant evictions
        engine = InferenceEngine(fitted_detector, cache_size=2, max_workers=4)
        errors = []

        def worker(worker_id):
            rng = np.random.default_rng(worker_id)
            for op in range(OPS_PER_WORKER):
                graph = versions[int(rng.integers(len(versions)))]
                action = rng.integers(4)
                try:
                    if action == 0:
                        engine.warm(graph)
                    elif action == 1:
                        subset = rng.integers(0, graph.num_nodes, size=5)
                        result = engine.score(graph, regions=np.unique(subset))
                        expected = references[graph.fingerprint()]
                        if not np.array_equal(result.probabilities,
                                              expected[np.unique(subset)]):
                            errors.append(f"subset mismatch in worker {worker_id}")
                    else:
                        result = engine.score(graph)
                        expected = references[graph.fingerprint()]
                        if not np.array_equal(result.probabilities, expected):
                            errors.append(f"mismatch in worker {worker_id}")
                except Exception as error:  # noqa: BLE001 - collected for report
                    errors.append(f"worker {worker_id} op {op}: {error!r}")

        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            list(pool.map(worker, range(WORKERS)))

        assert errors == []
        stats = engine.cache_stats
        assert stats.hits + stats.misses == stats.requests
        assert stats.evictions > 0, "cache_size=2 over 6 versions must evict"
        assert engine.cache_len <= 2

    def test_score_many_under_eviction_pressure(self, fitted_detector,
                                                graph_versions):
        versions, _, references = graph_versions
        engine = InferenceEngine(fitted_detector, cache_size=1, max_workers=4)
        results = engine.score_many(versions * 2)
        assert len(results) == len(versions) * 2
        for graph, result in zip(versions * 2, results):
            assert np.array_equal(result.probabilities,
                                  references[graph.fingerprint()])

    def test_concurrent_same_graph_computes_once(self, fitted_detector,
                                                 tiny_graph_small_image):
        engine = InferenceEngine(fitted_detector, cache_size=4, max_workers=4)
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(
                lambda _: engine.score(tiny_graph_small_image), range(8)))
        assert engine.cold_computes == 1
        first = results[0].probabilities
        for result in results[1:]:
            assert np.array_equal(result.probabilities, first)


class TestStreamingStress:
    def test_readers_never_observe_half_applied_delta(
            self, fitted_detector, graph_versions):
        versions, deltas, references = graph_versions
        engine = InferenceEngine(fitted_detector, cache_size=2)
        # content fingerprints so every observed version can be matched
        # against the precomputed per-version references by identity
        scorer = StreamingScorer(engine, versions[0], fingerprints="content")
        stop = threading.Event()
        errors = []
        observed_fingerprints = set()

        def reader(reader_id):
            while not stop.is_set():
                try:
                    result = scorer.score()
                except Exception as error:  # noqa: BLE001
                    errors.append(f"reader {reader_id}: {error!r}")
                    return
                expected = references.get(result.fingerprint)
                if expected is None:
                    errors.append(f"reader {reader_id} saw unknown version "
                                  f"{result.fingerprint[:12]}")
                    return
                if not np.array_equal(result.probabilities, expected):
                    errors.append(f"reader {reader_id} saw torn scores for "
                                  f"{result.fingerprint[:12]}")
                    return
                observed_fingerprints.add(result.fingerprint)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        try:
            for delta in deltas:          # writer: one delta at a time
                scorer.update(delta, rescore=True)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert errors == []
        assert scorer.version == len(deltas)
        assert observed_fingerprints <= set(references)

    def test_concurrent_updates_are_serialised(self, fitted_detector,
                                               tiny_graph_small_image):
        """Racing feature updates must all land; versions are strictly
        sequential and the final graph reflects every delta exactly once."""
        engine = InferenceEngine(fitted_detector, cache_size=2)
        scorer = StreamingScorer(engine, tiny_graph_small_image)
        rng = np.random.default_rng(31)
        # patches over disjoint row blocks are order-independent, so the
        # racing appliers must converge to the serial result
        from repro.stream import GraphDelta
        deltas = [
            GraphDelta(kind=f"patch-{block}",
                       poi_rows=np.arange(block * 8, block * 8 + 8),
                       poi_values=rng.normal(
                           size=(8, tiny_graph_small_image.poi_dim)))
            for block in range(4)
        ]
        serial = apply_deltas(tiny_graph_small_image, deltas, validate=False)
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(
                lambda delta: scorer.update(delta, rescore=False), deltas))
        assert sorted(r.version for r in results) == [1, 2, 3, 4]
        assert scorer.stats.updates == 4
        assert np.array_equal(scorer.graph.x_poi, serial.x_poi)
        assert np.array_equal(
            scorer.predict_proba(), fitted_detector.predict_proba(serial))


class TestServerStress:
    def test_threaded_clients_mixing_score_update_and_health(
            self, model_registry, graph_versions):
        versions, deltas, references = graph_versions
        with ScoringServer(model_registry, cache_size=2,
                           max_workers=4) as server:
            client = ScoringClient(server.url)
            client.wait_until_ready()
            # content fingerprints: the workers match responses against
            # precomputed per-version references by fingerprint identity
            client.open_stream("stress", versions[0], "tiny", rescore=False,
                               fingerprints="content")
            errors = []

            def scorer_worker(worker_id):
                rng = np.random.default_rng(100 + worker_id)
                for _ in range(6):
                    graph = versions[int(rng.integers(len(versions)))]
                    try:
                        payload = client.score(graph, "tiny")
                        expected = references[payload["fingerprint"]]
                        got = np.asarray(payload["probabilities"])
                        if not np.array_equal(got, expected):
                            errors.append(f"worker {worker_id}: torn score")
                        if rng.random() < 0.3:
                            client.healthz()
                    except Exception as error:  # noqa: BLE001
                        errors.append(f"worker {worker_id}: {error!r}")

            def updater():
                try:
                    for delta in deltas:
                        response = client.update_stream("stress", delta)
                        expected = references[response["fingerprint"]]
                        got = np.asarray(response["score"]["probabilities"])
                        if not np.array_equal(got, expected):
                            errors.append("updater saw torn stream score")
                except Exception as error:  # noqa: BLE001
                    errors.append(f"updater: {error!r}")

            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [pool.submit(scorer_worker, i) for i in range(3)]
                futures.append(pool.submit(updater))
                for future in futures:
                    future.result(timeout=120)
            assert errors == []
            listing = client.streams()["streams"]
            (entry,) = [e for e in listing if e["stream"] == "stress"]
            assert entry["version"] == len(deltas)
