"""Property tests for the rollout lifecycle and canary assignment.

Two invariant families, fuzzed with hypothesis:

* the :class:`RolloutStateMachine` never reaches an invalid transition —
  any illegal action (promote after rollback, double start, rollback
  outside a rollout, …) raises :class:`RolloutError` and leaves the
  machine's observable state untouched;
* :func:`canary_assignment` is a pure function of ``(seed, key)`` in
  ``[0, 1)`` with nested stages, entirely independent of fleet
  membership — resizing a consistent-hash ring can never move a city in
  or out of the canary.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (ConsistentHashRing, RolloutError, RolloutPolicy,
                         RolloutStateMachine, canary_assignment, is_canary,
                         stages_for_fraction)
from repro.serve.rollout import ShadowStats

VALID_STATES = {"idle", "canary", "promoted", "rolled_back", "aborted"}

#: strictly increasing fractions ending at 1.0 — every valid ladder shape
stage_ladders = st.lists(
    st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
    min_size=0, max_size=4, unique=True,
).map(lambda rungs: tuple(sorted(rungs)) + (1.0,))

actions = st.lists(
    st.sampled_from(["start", "promote", "rollback", "abort"]),
    min_size=0, max_size=40)

keys = st.text(max_size=32)
seeds = st.integers(min_value=0, max_value=2 ** 63 - 1)


class TestStateMachineProperties:
    @given(stages=stage_ladders, script=actions)
    @settings(max_examples=150, deadline=None)
    def test_never_reaches_an_invalid_state(self, stages, script):
        """Walk arbitrary action scripts; legality is decided by a tiny
        reference model, and illegal actions must raise *and* be free of
        side effects."""
        machine = RolloutStateMachine(stages)
        for action in script:
            legal = (machine.state != "canary" if action == "start"
                     else machine.state == "canary")
            before = (machine.state, machine.stage, machine.rollouts,
                      len(machine.transitions))
            if legal:
                getattr(machine, action)()
            else:
                with pytest.raises(RolloutError):
                    getattr(machine, action)()
                assert (machine.state, machine.stage, machine.rollouts,
                        len(machine.transitions)) == before
            # structural invariants, after every step
            assert machine.state in VALID_STATES
            if machine.state == "canary":
                assert 0 <= machine.stage < len(stages)
                assert machine.fraction == stages[machine.stage]
            elif machine.state == "promoted":
                assert machine.fraction == 1.0
            else:
                assert machine.fraction == 0.0
            assert 0.0 <= machine.fraction <= 1.0

    @given(stages=stage_ladders)
    @settings(max_examples=60, deadline=None)
    def test_rollback_then_promote_always_raises(self, stages):
        machine = RolloutStateMachine(stages)
        machine.start()
        machine.rollback()
        with pytest.raises(RolloutError):
            machine.promote()

    @given(stages=stage_ladders)
    @settings(max_examples=60, deadline=None)
    def test_promotion_walk_is_bounded_and_terminal(self, stages):
        machine = RolloutStateMachine(stages)
        machine.start()
        for _ in range(len(stages)):
            machine.promote()
        assert machine.state == "promoted"

    @given(fraction=st.floats(min_value=1e-6, max_value=1.0,
                              allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_stages_for_fraction_always_builds_a_valid_ladder(self,
                                                              fraction):
        ladder = stages_for_fraction(fraction)
        assert ladder[0] == fraction and ladder[-1] == 1.0
        assert all(b > a for a, b in zip(ladder, ladder[1:]))
        RolloutStateMachine(ladder)  # accepted by the machine's validator


class TestCanaryAssignmentProperties:
    @given(seed=seeds, key=keys)
    @settings(max_examples=150, deadline=None)
    def test_pure_function_of_seed_and_key(self, seed, key):
        u = canary_assignment(seed, key)
        assert 0.0 <= u < 1.0
        assert u == canary_assignment(seed, key)

    @given(seed=seeds, key=keys,
           low=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           high=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_stages_are_nested(self, seed, key, low, high):
        low, high = min(low, high), max(low, high)
        if is_canary(seed, key, low):
            assert is_canary(seed, key, high)

    @given(ids=st.lists(st.text(alphabet="abcdef012345", min_size=1,
                                max_size=6), min_size=2, max_size=8,
                        unique=True),
           seed=seeds, key=keys,
           fraction=st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False),
           data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_ring_membership_changes_never_move_the_canary(
            self, ids, seed, key, fraction, data):
        """Canary membership hashes the city key, not the ring: adding
        or removing shards leaves every decision unchanged."""
        ring = ConsistentHashRing(ids)
        before = is_canary(seed, key, fraction)
        removed = data.draw(st.sampled_from(ids))
        ring.remove(removed)
        assert is_canary(seed, key, fraction) == before
        ring.add("zz-new-shard")
        assert is_canary(seed, key, fraction) == before


class TestPolicyProperties:
    @given(pairs=st.integers(min_value=0, max_value=50),
           mean=st.one_of(st.floats(allow_nan=True, allow_infinity=True)),
           corr=st.one_of(st.floats(min_value=-1.0, max_value=1.0),
                          st.just(float("nan"))),
           crossings=st.integers(min_value=0, max_value=100),
           regions=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=200, deadline=None)
    def test_decide_is_total_and_never_acts_on_nan(self, pairs, mean, corr,
                                                   crossings, regions):
        stats = ShadowStats(pairs=pairs, mean_abs_change=mean,
                            worst_rank_correlation=corr,
                            crossings=crossings, regions=regions)
        policy = RolloutPolicy(min_pairs=3)
        decision = policy.decide(stats)
        assert decision.action in {"hold", "promote", "rollback"}
        assert decision.reasons
        if pairs < policy.min_pairs:
            assert decision.action == "hold"
        elif any(value != value for value in (
                stats.mean_abs_change, stats.worst_rank_correlation,
                stats.crossing_fraction)):
            assert decision.action == "hold"
