"""Shared fixtures for the serving-layer tests.

The reduced CMSF configuration and the session-scoped fitted detector live
in the top-level ``tests/conftest.py`` (the streaming tests share them);
this package only adds the published model registry.
"""

from __future__ import annotations

import pytest

from repro.serve import ModelRegistry


@pytest.fixture(scope="session")
def model_registry(tmp_path_factory, fitted_detector, tiny_graph_small_image):
    """A registry with the fitted detector published as ``tiny:1``."""
    registry = ModelRegistry(tmp_path_factory.mktemp("models"))
    registry.publish(fitted_detector, tiny_graph_small_image, "tiny")
    return registry
