"""Shared fixtures for the serving-layer tests.

The reduced CMSF configuration and the session-scoped fitted detector live
in the top-level ``tests/conftest.py`` (the streaming tests share them);
this package only adds the published model registry.
"""

from __future__ import annotations

import pytest

from repro.bench import WorkloadConfig, derive_cities, generate_workload
from repro.serve import EngineShard, InferenceEngine, ModelRegistry


@pytest.fixture(scope="session")
def model_registry(tmp_path_factory, fitted_detector, tiny_graph_small_image):
    """A registry with the fitted detector published as ``tiny:1``."""
    registry = ModelRegistry(tmp_path_factory.mktemp("models"))
    registry.publish(fitted_detector, tiny_graph_small_image, "tiny")
    return registry


@pytest.fixture(scope="session")
def shard_factory(model_registry):
    """Build independent in-process shards from the published bundle.

    Every shard gets its *own* detector instance (loaded from the bundle,
    so identical float64 parameters) — sharing one stateful module set
    between shards would race under the concurrency soak.
    """
    def make(shard_id, cache_size=8, **stream_defaults):
        engine = InferenceEngine.from_bundle(
            model_registry.resolve("tiny"), cache_size=cache_size)
        return EngineShard(engine, shard_id=shard_id, **stream_defaults)
    return make


@pytest.fixture(scope="session")
def rollout_registry(tmp_path_factory, fitted_detector, fast_config,
                     tiny_graph_small_image):
    """A registry for the rollout suites: ``tiny:1`` (baseline),
    ``tiny:2`` (identical twin — zero drift) and ``tiny:3`` (retrained
    with another seed — real drift)."""
    from repro.core import CMSFDetector

    registry = ModelRegistry(tmp_path_factory.mktemp("rollout-models"))
    graph = tiny_graph_small_image
    registry.publish(fitted_detector, graph, "tiny", version="1")
    registry.publish(fitted_detector, graph, "tiny", version="2")
    drifted = CMSFDetector(fast_config.with_overrides(seed=3)).fit(
        graph, graph.labeled_indices())
    registry.publish(drifted, graph, "tiny", version="3")
    return registry


@pytest.fixture(scope="session")
def fleet_cities(tiny_graph_small_image):
    """Three structurally distinct city variants sharing the bundle's dims."""
    return derive_cities(tiny_graph_small_image, 3, seed=11)


@pytest.fixture(scope="session")
def fleet_trace(fleet_cities):
    """A deterministic mixed score/update/evict trace over the cities."""
    return generate_workload(fleet_cities, WorkloadConfig(ops=20, seed=5))


@pytest.fixture(scope="session")
def traces_equal():
    """Full structural trace equality, shared by the replay and property
    suites (tests/ is not a package, so the helper travels as a fixture)."""
    def check(a, b):
        assert list(a.cities) == list(b.cities)
        for name in a.cities:
            assert a.cities[name].fingerprint() == b.cities[name].fingerprint()
        assert len(a.ops) == len(b.ops)
        for left, right in zip(a.ops, b.ops):
            assert left.op == right.op and left.city == right.city
            if left.delta is None:
                assert right.delta is None
            else:
                assert left.delta.digest() == right.delta.digest()
        assert (a.seed, a.name, a.meta) == (b.seed, b.name, b.meta)
    return check
