"""Shared fixtures for the serving-layer tests.

Training even the reduced CMSF configuration dominates test runtime, so a
single fitted detector (and its published bundle) is shared session-wide;
every test treats it as read-only.
"""

from __future__ import annotations

import pytest

from repro.core import CMSFConfig, CMSFDetector
from repro.serve import ModelRegistry

FAST_CONFIG = CMSFConfig(
    hidden_dim=16, image_reduce_dim=16, classifier_hidden=8, maga_layers=1,
    maga_heads=2, num_clusters=6, context_dim=8, master_epochs=12, slave_epochs=5,
    patience=None, dropout=0.0, seed=0,
)


@pytest.fixture(scope="session")
def fast_config():
    return FAST_CONFIG


@pytest.fixture(scope="session")
def fitted_detector(tiny_graph_small_image):
    graph = tiny_graph_small_image
    detector = CMSFDetector(FAST_CONFIG).fit(graph, graph.labeled_indices())
    return detector


@pytest.fixture(scope="session")
def reference_scores(fitted_detector, tiny_graph_small_image):
    return fitted_detector.predict_proba(tiny_graph_small_image)


@pytest.fixture(scope="session")
def model_registry(tmp_path_factory, fitted_detector, tiny_graph_small_image):
    """A registry with the fitted detector published as ``tiny:1``."""
    registry = ModelRegistry(tmp_path_factory.mktemp("models"))
    registry.publish(fitted_detector, tiny_graph_small_image, "tiny")
    return registry
