"""Pooled keep-alive transport and per-request timeout failover.

The load driver exposed two serving-stack serialization bugs this suite
pins the fixes for:

* :class:`~repro.serve.client.ScoringClient` used to dial a fresh TCP
  connection per request (``urllib.request.urlopen``); it now pools
  HTTP/1.1 keep-alive connections, so repeat requests reuse one socket;
* :class:`~repro.serve.fleet.RemoteShard` carried a flat 30 s timeout,
  stalling a concurrent worker for the full 30 s before failover; the
  timeout is now configurable per request via ``FleetRouter``/CLI and a
  hung shard fails over within that bound.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.serve import FleetRouter, RemoteShard, ScoringClient
from repro.serve.client import ScoringServiceError
from repro.serve.fleet import ConsistentHashRing, is_shard_failure
from repro.serve.server import ScoringServer


@pytest.fixture(scope="module")
def pool_server(model_registry):
    with ScoringServer(model_registry, quiet=True) as running:
        yield running


@pytest.fixture()
def pool_client(pool_server):
    client = ScoringClient(pool_server.url, timeout=10.0)
    client.wait_until_ready()
    yield client
    client.close()


class TestConnectionPool:
    def test_serial_requests_reuse_one_connection(self, pool_client):
        for _ in range(5):
            assert pool_client.healthz()["status"] == "ok"
        stats = pool_client.transport_stats()
        assert stats["connections_created"] == 1
        assert stats["requests_reused"] >= 5  # wait_until_ready dialled it
        assert stats["pool_idle"] == 1

    @staticmethod
    def _read_response(sock):
        # a response may arrive in several TCP segments; consume exactly
        # one (headers then Content-Length body) so the next request's
        # reply starts at a clean boundary
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = sock.recv(65536)
            assert chunk, "server closed the keep-alive connection"
            data += chunk
        head, body = data.split(b"\r\n\r\n", 1)
        length = next(int(line.split(b":")[1])
                      for line in head.split(b"\r\n")
                      if line.lower().startswith(b"content-length:"))
        while len(body) < length:
            chunk = sock.recv(65536)
            assert chunk, "server closed mid-body"
            body += chunk
        return head

    def test_server_speaks_keepalive_http11(self, pool_server):
        # raw socket probe: two requests over one connection must both
        # answer — that is the HTTP/1.1 keep-alive contract the pooled
        # transport depends on
        host, port = pool_server.url.replace("http://", "").split(":")
        with socket.create_connection((host, int(port)), timeout=5) as sock:
            request = (b"GET /healthz HTTP/1.1\r\n"
                       b"Host: " + host.encode() + b"\r\n"
                       b"Accept: application/json\r\n\r\n")
            for _ in range(2):
                sock.sendall(request)
                head = self._read_response(sock)
                assert head.startswith(b"HTTP/1.1 200")
                assert b"Content-Length:" in head

    def test_concurrent_requests_use_separate_connections(self, pool_client):
        pool_client.close()  # start from an empty pool
        before = pool_client.transport_stats()
        barrier = threading.Barrier(4)
        errors = []

        def hammer():
            try:
                barrier.wait()
                for _ in range(8):
                    pool_client.stats()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = pool_client.transport_stats()
        created = stats["connections_created"] - before["connections_created"]
        reused = stats["requests_reused"] - before["requests_reused"]
        # the pool grew to at most one socket per concurrent worker and
        # far fewer than one per request
        assert 1 <= created <= 4
        assert reused >= 32 - 4

    def test_set_timeout_flushes_pool_and_applies(self, pool_client):
        pool_client.healthz()
        assert pool_client.transport_stats()["pool_idle"] == 1
        pool_client.set_timeout(3.0)
        assert pool_client.timeout == 3.0
        assert pool_client.transport_stats()["pool_idle"] == 0
        assert pool_client.healthz()["status"] == "ok"

    def test_timeout_setter_is_equivalent(self, pool_client):
        pool_client.timeout = 7.5
        assert pool_client.timeout == 7.5
        with pytest.raises(ValueError):
            pool_client.set_timeout(0)

    def test_close_then_reuse(self, pool_client):
        pool_client.healthz()
        pool_client.close()
        assert pool_client.transport_stats()["pool_idle"] == 0
        assert pool_client.healthz()["status"] == "ok"

    def test_error_responses_still_raise_typed(self, pool_client):
        with pytest.raises(ScoringServiceError) as excinfo:
            pool_client.model_info("no-such-model")
        assert excinfo.value.status == 404

    def test_unreachable_host_raises_status_zero(self):
        client = ScoringClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ScoringServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0
        assert is_shard_failure(excinfo.value)


@pytest.fixture()
def hung_server():
    """Accepts TCP connections, reads the request, never answers."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    port = listener.getsockname()[1]
    accepted = []
    alive = threading.Event()
    alive.set()

    def run():
        while alive.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            accepted.append(conn)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{port}"
    alive.clear()
    listener.close()
    for conn in accepted:
        try:
            conn.close()
        except OSError:
            pass
    thread.join(timeout=2)


class TestTimeoutFailover:
    def test_hung_request_times_out_within_bound(self, hung_server):
        client = ScoringClient(hung_server, timeout=0.4)
        start = time.perf_counter()
        with pytest.raises(ScoringServiceError) as excinfo:
            client.healthz()
        elapsed = time.perf_counter() - start
        assert excinfo.value.status == 0
        assert elapsed < 2.0, f"timeout took {elapsed:.1f}s, bound was 0.4s"

    def test_router_applies_request_timeout_to_remote_shards(self,
                                                             hung_server,
                                                             shard_factory):
        remote = RemoteShard(hung_server, "tiny", shard_id="rs-t")
        assert remote.timeout == 30.0  # the old flat default, still there
        FleetRouter([remote, shard_factory("es-t")], replication=2,
                    request_timeout=0.4)
        assert remote.timeout == 0.4

    def test_request_timeout_must_be_positive(self, shard_factory):
        with pytest.raises(ValueError):
            FleetRouter([shard_factory("es-neg")], replication=1,
                        request_timeout=0.0)

    def test_hung_shard_fails_over_within_bound(self, hung_server,
                                                shard_factory, fleet_cities):
        """Regression: a hung replica used to stall clients for the flat
        30 s transport timeout before failover fired."""
        name, graph = next(iter(fleet_cities.items()))
        key = graph.structural_fingerprint()
        # name the shards so the hung remote is the city's ring primary —
        # otherwise the healthy shard absorbs the request and the timeout
        # path is never exercised
        ring = ConsistentHashRing(["shard-a", "shard-b"], vnodes=64)
        primary, secondary = ring.assign(key, 2)
        healthy = shard_factory(secondary)
        hung = RemoteShard(hung_server, "tiny", shard_id=primary)
        fleet = FleetRouter([hung, healthy], replication=2,
                            request_timeout=0.4)

        start = time.perf_counter()
        payload = fleet.open_stream(name, graph, rescore=True)
        elapsed = time.perf_counter() - start
        assert payload["shard"] == secondary
        # one timed-out dial plus the real open; far below the old 30 s
        assert elapsed < 10.0, f"failover took {elapsed:.1f}s"
        assert fleet.fleet_stats.shard_failures >= 1
        assert primary in fleet.down_shards()

        # subsequent traffic never touches the hung shard again
        start = time.perf_counter()
        fleet.score_stream(name)
        assert time.perf_counter() - start < 2.0
        fleet.close()
