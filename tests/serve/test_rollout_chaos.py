"""Chaos tests for staged rollouts: shard death and crash-mid-swap.

Two failure modes a rollout must survive:

* the shard *serving the canary* dies mid-stage — failover must keep the
  stream on the canary version (the replica re-applies the recorded
  swap), preserve the rollout stage, and keep shadow pairing working;
* the process crashes while a rollout is in flight — recovery from the
  write-ahead log must bring every stream back on exactly the version
  its last atomic snapshot durably recorded (never a torn mix), and
  :meth:`RolloutController.reconcile_restore` re-aligns a fresh
  controller with the recovered fleet.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.durable import DurabilityLog
from repro.obs import MetricsRegistry
from repro.serve import (ChaosShard, ConsistentHashRing, EngineShard,
                         FleetRouter, InferenceEngine, RolloutController,
                         RolloutPolicy, canary_assignment)

SHARD_IDS = ("s0", "s1", "s2")
STAGES = (0.5, 1.0)


def _engine(registry, version):
    return InferenceEngine.from_bundle(registry.resolve("tiny", version),
                                       cache_size=8)


def _resolver(registry):
    return lambda model, version: _engine(registry, version)


def _controller(registry, fleet, version="3", seed=0, **kwargs):
    kwargs.setdefault("policy", RolloutPolicy(min_pairs=100))
    kwargs.setdefault("auto", False)
    return RolloutController(fleet, "tiny", version,
                             resolve_engine=_resolver(registry),
                             stages=STAGES, seed=seed,
                             metrics=MetricsRegistry(), **kwargs)


def _canary_split(cities, seed_range=500, fraction=STAGES[0]):
    """(seed, canary city, its primary shard) with a proper split."""
    ring = ConsistentHashRing(list(SHARD_IDS))
    keys = {name: graph.structural_fingerprint()
            for name, graph in cities.items()}
    for seed in range(seed_range):
        flags = {name: canary_assignment(seed, key) < fraction
                 for name, key in keys.items()}
        if any(flags.values()) and not all(flags.values()):
            canary = next(name for name, flag in flags.items() if flag)
            return seed, canary, ring.assign(keys[canary], 2)[0]
    raise AssertionError("no splitting seed found")


class TestCanaryShardDeath:
    def test_killing_the_canary_shard_preserves_stage_and_pairing(
            self, rollout_registry, fleet_cities):
        seed, canary, primary = _canary_split(fleet_cities)
        shards, chaos = [], None
        for shard_id in SHARD_IDS:
            shard = EngineShard(_engine(rollout_registry, "1"),
                                shard_id=shard_id)
            if shard_id == primary:
                chaos = ChaosShard(shard)
                shard = chaos
            shards.append(shard)
        fleet = FleetRouter(shards, replication=2)
        for name, graph in fleet_cities.items():
            fleet.open_stream(name, graph)
        assert fleet.cities()[canary]["active"] == primary

        controller = _controller(rollout_registry, fleet, seed=seed)
        controller.start(list(fleet_cities))
        assert controller.is_canary(canary)

        oracle_v3 = _engine(rollout_registry, "3")
        expected = np.asarray(
            oracle_v3.score(fleet.stream_graph(canary)).probabilities,
            dtype=np.float64)
        before = np.asarray(controller.score(canary)["probabilities"],
                            dtype=np.float64)
        np.testing.assert_array_equal(before, expected)
        pairs_before = controller.status()["shadow"]["pairs"]
        assert pairs_before == 1

        # kill the shard serving the canary, mid-stage
        chaos.fail()
        payload = controller.score(canary)
        after = np.asarray(payload["probabilities"], dtype=np.float64)

        # failover happened and the canary stayed on the canary version
        assert fleet.cities()[canary]["active"] != primary
        assert fleet.fleet_stats.failovers >= 1
        np.testing.assert_array_equal(after, expected)
        # the rollout never noticed: same stage, shadow pairing intact
        status = controller.status()
        assert status["state"] == "canary" and status["stage"] == 0
        assert status["streams"][canary]["canary"]
        assert status["shadow"]["pairs"] == pairs_before + 1
        # and a rollback still restores the baseline on the survivor
        controller.rollback()
        baseline = np.asarray(
            _engine(rollout_registry, "1").score(
                fleet.stream_graph(canary)).probabilities,
            dtype=np.float64)
        np.testing.assert_array_equal(
            np.asarray(fleet.score_stream(canary)["probabilities"],
                       dtype=np.float64),
            baseline)
        fleet.close()


class TestCrashMidRollout:
    def _durable_fleet(self, registry, wal_root):
        wal = DurabilityLog(wal_root, metrics=MetricsRegistry())
        shards = [EngineShard(_engine(registry, "1"), shard_id=shard_id)
                  for shard_id in ("s0", "s1")]
        return FleetRouter(shards, replication=2, wal=wal)

    def test_recovery_lands_on_exactly_one_version_per_stream(
            self, rollout_registry, fleet_cities, tmp_path):
        """Crash with a rollout mid-stage; restore() must bring every
        stream back on the single version its last atomic snapshot
        recorded — canary streams on the new version, the rest on the
        baseline — and reconcile_restore re-arms a fresh controller."""
        seed, canary, _ = _canary_split(fleet_cities)
        fleet = self._durable_fleet(rollout_registry, tmp_path / "wal")
        for name, graph in fleet_cities.items():
            fleet.open_stream(name, graph)
        controller = _controller(rollout_registry, fleet, seed=seed)
        controller.start(list(fleet_cities))
        swapped = set(controller.status()["swapped_streams"])
        assert canary in swapped
        # the "crash": nothing survives but the WAL directory
        del fleet, controller

        restored = self._durable_fleet(rollout_registry, tmp_path / "wal")
        report = restored.restore()
        assert set(report) == set(fleet_cities)
        # no torn swaps: each stream recovered on exactly one recorded
        # version — the new one iff its swap snapshot was durable
        for name, entry in report.items():
            version = entry.get("model_version")
            if name in swapped:
                assert version == "3", f"{name} lost its canary swap"
            else:
                assert version in (None, "1"), f"{name} tore onto {version}"

        fresh = _controller(rollout_registry, restored, seed=seed)
        fresh.start(list(fleet_cities))
        outcome = fresh.reconcile_restore(report)
        assert outcome[canary] == "3"
        assert set(fresh.status()["swapped_streams"]) == swapped

        # the recovered fleet scores exactly like the versions recorded
        v1, v3 = _engine(rollout_registry, "1"), _engine(rollout_registry,
                                                         "3")
        for name in fleet_cities:
            expected_engine = v3 if name in swapped else v1
            np.testing.assert_array_equal(
                np.asarray(restored.score_stream(name)["probabilities"],
                           dtype=np.float64),
                np.asarray(expected_engine.score(
                    restored.stream_graph(name)).probabilities,
                    dtype=np.float64))
        restored.close()

    def test_crash_before_any_swap_recovers_all_baseline(
            self, rollout_registry, fleet_cities, tmp_path):
        fleet = self._durable_fleet(rollout_registry, tmp_path / "wal")
        for name, graph in fleet_cities.items():
            fleet.open_stream(name, graph)
        del fleet
        restored = self._durable_fleet(rollout_registry, tmp_path / "wal")
        report = restored.restore()
        for entry in report.values():
            assert entry.get("model_version") in (None, "1")
        controller = _controller(rollout_registry, restored)
        controller.start(list(fleet_cities))
        outcome = controller.reconcile_restore(report)
        assert all(version in ("1", "base")
                   for version in outcome.values())
        restored.close()
