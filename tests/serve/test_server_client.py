"""End-to-end tests of the HTTP scoring service and its client.

The headline test walks the full deployment path required of the serving
subsystem: train on a mini city, package via the CLI, start the server
in-process, score the same city through the client, and verify (a) served
probabilities equal direct ``predict_proba`` output and (b) a repeated
``/score`` request is answered from the fingerprint cache.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import ModelRegistry, ScoringClient, ScoringServer
from repro.serve.client import ScoringServiceError
from repro.serve.server import ScoringService, ServiceError
from repro.serve.wire import graph_from_payload, graph_to_payload


@pytest.fixture(scope="module")
def server(model_registry):
    with ScoringServer(model_registry, quiet=True) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    client = ScoringClient(server.url)
    client.wait_until_ready()
    return client


class TestWireFormat:
    @pytest.mark.parametrize("encoding", ["npz", "json"])
    def test_graph_roundtrip_bit_exact(self, tiny_graph_small_image, encoding):
        payload = graph_to_payload(tiny_graph_small_image, encoding=encoding)
        decoded = graph_from_payload(json.loads(json.dumps(payload)))
        assert decoded.name == tiny_graph_small_image.name
        np.testing.assert_array_equal(decoded.edge_index,
                                      tiny_graph_small_image.edge_index)
        np.testing.assert_array_equal(decoded.x_poi, tiny_graph_small_image.x_poi)
        np.testing.assert_array_equal(decoded.x_img, tiny_graph_small_image.x_img)
        np.testing.assert_array_equal(decoded.labels, tiny_graph_small_image.labels)
        assert decoded.fingerprint() == tiny_graph_small_image.fingerprint()

    def test_edge_pair_layout_accepted(self, tiny_graph_small_image):
        payload = graph_to_payload(tiny_graph_small_image, encoding="json")
        # hand-written clients commonly send [u, v] pairs
        pairs = np.asarray(payload["edge_index"]).T.tolist()
        payload["edge_index"] = pairs
        decoded = graph_from_payload(payload)
        np.testing.assert_array_equal(decoded.edge_index,
                                      tiny_graph_small_image.edge_index)

    def test_ambiguous_edge_layout_rejected(self, tiny_graph_small_image):
        payload = graph_to_payload(tiny_graph_small_image, encoding="json")
        payload["edge_index"] = [[[0, 1]]]  # 3-d: neither layout
        with pytest.raises(ValueError, match="edge_index"):
            graph_from_payload(payload)

    def test_bad_payloads_rejected(self):
        with pytest.raises(ValueError, match="wire version"):
            graph_from_payload({"encoding": "npz"})
        with pytest.raises(ValueError, match="encoding"):
            graph_from_payload({"wire_version": 1, "encoding": "xml"})
        with pytest.raises(ValueError, match="npz_base64"):
            graph_from_payload({"wire_version": 1, "encoding": "npz",
                                "npz_base64": "!!not-base64!!"})

    def test_corrupt_archive_bytes_are_value_errors(self, tiny_graph_small_image):
        import base64

        # valid base64 of bytes that are not an npz archive (numpy reports
        # these as ValueError itself, with allow_pickle safely off)
        with pytest.raises(ValueError):
            graph_from_payload({"wire_version": 1, "encoding": "npz",
                                "npz_base64": base64.b64encode(b"PK-garbage"
                                                               ).decode()})
        # truncated but once-valid archive: zipfile.BadZipFile must be
        # normalised to ValueError so transports can answer 400
        payload = graph_to_payload(tiny_graph_small_image)
        raw = base64.b64decode(payload["npz_base64"])[:100]
        payload["npz_base64"] = base64.b64encode(raw).decode()
        with pytest.raises(ValueError, match="invalid graph archive"):
            graph_from_payload(payload)


class TestEndToEndServing:
    def test_train_package_serve_score(self, tmp_path, tiny_graph_small_image):
        """The full path: CLI package -> in-process server -> client score."""
        from repro.cli import main
        from repro.data import save_graph_npz

        graph = tiny_graph_small_image
        graph_path = save_graph_npz(graph, tmp_path / "mini.npz")
        registry_root = tmp_path / "models"
        assert main(["package", "--graph", str(graph_path), "--epochs", "8",
                     "--registry", str(registry_root), "--name", "mini"]) == 0

        registry = ModelRegistry(registry_root)
        direct = registry.load("mini").detector.predict_proba(graph)

        with ScoringServer(registry, quiet=True) as server:
            client = ScoringClient(server.url)
            client.wait_until_ready()

            first = client.score(graph, "mini")
            np.testing.assert_array_equal(
                np.asarray(first["probabilities"]), direct)
            assert first["cache_hit"] is False

            second = client.score(graph, "mini")
            assert second["cache_hit"] is True
            np.testing.assert_array_equal(
                np.asarray(second["probabilities"]), direct)
            # the engine's cache-hit counter confirms the repeated request
            # was served from the fingerprint cache
            assert second["cache"]["hits"] == 1
            assert second["cache"]["misses"] == 1

    def test_served_probabilities_match_direct(self, client, model_registry,
                                               tiny_graph_small_image,
                                               reference_scores):
        scores = client.score_array(tiny_graph_small_image, "tiny")
        np.testing.assert_array_equal(scores, reference_scores)

    def test_json_encoding_served_identically(self, client,
                                              tiny_graph_small_image,
                                              reference_scores):
        scores = client.score_array(tiny_graph_small_image, "tiny",
                                    encoding="json")
        np.testing.assert_array_equal(scores, reference_scores)

    def test_regions_threshold_and_shortlist(self, client,
                                             tiny_graph_small_image,
                                             reference_scores):
        response = client.score(tiny_graph_small_image, "tiny",
                                regions=[3, 1, 4], top_percent=10.0,
                                threshold=0.5)
        np.testing.assert_array_equal(np.asarray(response["probabilities"]),
                                      reference_scores[[3, 1, 4]])
        assert response["predictions"] == [
            int(p >= 0.5) for p in reference_scores[[3, 1, 4]]]
        assert response["selected"]

    def test_healthz_and_models(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["models_available"] >= 1
        models = client.models()["models"]
        assert any(entry["name"] == "tiny" for entry in models)

    def test_unknown_model_is_404(self, client, tiny_graph_small_image):
        with pytest.raises(ScoringServiceError) as excinfo:
            client.score(tiny_graph_small_image, "ghost")
        assert excinfo.value.status == 404

    def test_malformed_model_name_is_400(self, client, tiny_graph_small_image):
        with pytest.raises(ScoringServiceError) as excinfo:
            client.score(tiny_graph_small_image, "tiny/")
        assert excinfo.value.status == 400
        with pytest.raises(ScoringServiceError) as excinfo:
            client.score(tiny_graph_small_image, "../../escape")
        assert excinfo.value.status == 400

    def test_unknown_endpoint_is_404(self, server):
        request = urllib.request.Request(server.url + "/nope")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404

    def test_invalid_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/score", data=b"not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestScoringServiceUnit:
    """Transport-free endpoint logic."""

    def test_score_validates_request_shape(self, model_registry):
        service = ScoringService(model_registry)
        with pytest.raises(ServiceError) as excinfo:
            service.score({"graph": {}})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            service.score({"model": "tiny"})
        assert excinfo.value.status == 400

    @pytest.mark.parametrize("field,value", [
        ("top_percent", "lots"), ("threshold", "high"), ("regions", 3),
    ])
    def test_wrong_typed_optional_fields_are_400(self, model_registry,
                                                 tiny_graph_small_image,
                                                 field, value):
        service = ScoringService(model_registry)
        request = {"model": "tiny",
                   "graph": graph_to_payload(tiny_graph_small_image),
                   field: value}
        with pytest.raises(ServiceError) as excinfo:
            service.score(request)
        assert excinfo.value.status == 400

    def test_engines_are_reused_across_requests(self, model_registry,
                                                tiny_graph_small_image):
        service = ScoringService(model_registry)
        payload = {"model": "tiny",
                   "graph": graph_to_payload(tiny_graph_small_image)}
        service.score(payload)
        first_engine = service.engine_for("tiny")
        service.score(payload)
        assert service.engine_for("tiny") is first_engine
        assert service.requests_served == 2
        assert first_engine.cache_stats.hits == 1


class TestModelResolution:
    """The fleet health-check path: clean resolution errors, model_info."""

    def test_unknown_model_404_payload_is_not_a_keyerror_repr(
            self, model_registry):
        """Regression: ``str(KeyError(msg))`` is the *repr* of the message,
        so the 404 payload used to arrive wrapped in stray quotes."""
        service = ScoringService(model_registry)
        with pytest.raises(ServiceError) as excinfo:
            service.engine_for("ghost")
        assert excinfo.value.status == 404
        message = str(excinfo.value)
        assert message.startswith("model 'ghost' is not in the registry")
        assert not message.startswith("'")
        assert not message.startswith('"')

    def test_unknown_version_404_is_clean_too(self, model_registry):
        service = ScoringService(model_registry)
        with pytest.raises(ServiceError) as excinfo:
            service.model_info("tiny", "999")
        assert excinfo.value.status == 404
        message = str(excinfo.value)
        assert message.startswith("model 'tiny' has no version")
        assert not message.startswith("'")

    def test_clean_404_over_http(self, client):
        with pytest.raises(ScoringServiceError) as excinfo:
            client.model_info("ghost")
        assert excinfo.value.status == 404
        detail = str(excinfo.value).split("404: ", 1)[1]
        assert detail.startswith("model 'ghost' is not in the registry")

    def test_model_info_resolves_without_loading(self, model_registry):
        service = ScoringService(model_registry)
        info = service.model_info("tiny")
        assert info["model"] == "tiny"
        assert info["version"] == "1"
        assert info["loaded"] is False          # resolution, not a load
        service.engine_for("tiny")
        info = service.model_info("tiny")
        assert info["loaded"] is True
        assert "engine" in info

    def test_model_info_over_http_with_version_query(self, client):
        info = client.model_info("tiny", version="1")
        assert info["model"] == "tiny"
        assert info["version"] == "1"
        assert "description" in info

    def test_malformed_model_name_is_400(self, client):
        with pytest.raises(ScoringServiceError) as excinfo:
            client.model_info("../../escape")
        assert excinfo.value.status == 400


class TestStreamScoreAndEvict:
    """The fleet shard hot path: /score by stream name, /evict."""

    @pytest.fixture()
    def open_stream(self, client, tiny_graph_small_image):
        name = "hotpath"
        client.open_stream(name, tiny_graph_small_image, model="tiny")
        return name

    def test_score_stream_matches_graph_upload(self, client, open_stream,
                                               tiny_graph_small_image,
                                               reference_scores):
        payload = client.score_stream(open_stream)
        np.testing.assert_array_equal(
            np.asarray(payload["probabilities"], dtype=np.float64),
            reference_scores)
        assert payload["stream"] == open_stream
        assert payload["stream_version"] == 0
        assert payload["num_regions"] == tiny_graph_small_image.num_nodes

    def test_score_stream_supports_regions_and_threshold(self, client,
                                                         open_stream,
                                                         reference_scores):
        payload = client.score_stream(open_stream, regions=[0, 3, 5],
                                      threshold=0.5)
        np.testing.assert_array_equal(
            np.asarray(payload["probabilities"], dtype=np.float64),
            reference_scores[[0, 3, 5]])
        assert payload["predictions"] == [
            int(p >= 0.5) for p in reference_scores[[0, 3, 5]]]

    def test_evict_stream_forces_cold_recompute(self, client, open_stream,
                                                tiny_graph_small_image):
        client.score_stream(open_stream)
        payload = client.evict_stream(open_stream)
        assert payload["evicted"] == tiny_graph_small_image.fingerprint()
        assert payload["stream"] == open_stream
        cold = client.score_stream(open_stream)
        assert cold["cache_hit"] is False

    def test_stream_and_graph_together_is_400(self, client, open_stream,
                                              tiny_graph_small_image):
        service_error = None
        request = urllib.request.Request(
            client.base_url + "/score",
            data=json.dumps({"stream": open_stream, "model": "tiny",
                             "graph": graph_to_payload(
                                 tiny_graph_small_image)}).encode(),
            headers={"Content-Type": "application/json"})
        try:
            urllib.request.urlopen(request, timeout=10)
        except urllib.error.HTTPError as error:
            service_error = error
        assert service_error is not None and service_error.code == 400

    def test_unknown_stream_is_404(self, client):
        with pytest.raises(ScoringServiceError) as excinfo:
            client.score_stream("never-opened")
        assert excinfo.value.status == 404
        with pytest.raises(ScoringServiceError) as excinfo:
            client.evict_stream("never-opened")
        assert excinfo.value.status == 404

    def test_evict_requires_a_stream_field(self, model_registry):
        service = ScoringService(model_registry)
        with pytest.raises(ServiceError) as excinfo:
            service.evict({})
        assert excinfo.value.status == 400


class TestServiceDurability:
    """The serve-layer durability satellite: WAL-backed streams plus
    operator-visible status in /healthz and /stats."""

    def test_wal_backed_service_logs_and_reports(self, model_registry,
                                                 tiny_graph_small_image,
                                                 tmp_path):
        from repro.durable import DurabilityLog
        from repro.obs import MetricsRegistry
        from repro.serve.wire import delta_to_payload
        from repro.synth import EvolutionConfig, generate_evolution

        service = ScoringService(model_registry, wal_dir=tmp_path / "wal",
                                 checkpoint_interval_s=3600.0)
        try:
            for payload in (service.healthz(), service.stats()):
                durability = payload["durability"]
                assert durability["wal_enabled"] is True
                assert durability["checkpointer"]["running"] is True
                assert durability["last_checkpoint_age_seconds"] is None

            delta = generate_evolution(tiny_graph_small_image,
                                       EvolutionConfig(steps=1, seed=2))[0]
            service.update({"stream": "durable-city", "model": "tiny",
                            "graph": graph_to_payload(
                                tiny_graph_small_image)})
            service.update({"stream": "durable-city",
                            "delta": delta_to_payload(delta)})
            status = service.durability_status()
            assert status["streams"] == 1
            assert status["log_bytes"] > 0
            # the opening snapshot counts as a checkpoint
            assert status["last_checkpoint_age_seconds"] >= 0.0

            report = service.checkpoint(force=True)
            assert report["durable-city"]["seq"] == 1
            recovered = DurabilityLog(
                tmp_path / "wal",
                metrics=MetricsRegistry()).recover("durable-city")
            assert recovered.version == 1
            assert recovered.records_replayed == 0
        finally:
            service.close()
        assert service.durability_status()["checkpointer"]["running"] is False

    def test_service_without_wal_reports_disabled(self, model_registry):
        service = ScoringService(model_registry)
        assert service.healthz()["durability"] == {"wal_enabled": False}
        assert service.stats()["durability"] == {"wal_enabled": False}
        assert service.checkpoint(force=True) == {}
