"""Crash-recovery chaos tests at the fleet layer.

The contract: kill a durable fleet anywhere mid-trace (drop the object,
or SIGKILL the whole process), build a brand-new fleet over the same WAL
root, ``restore()``, resume the trace at the recovered versions — and
the resumed float64 score tail is bit-identical to an uninterrupted
single-shard oracle replaying the whole trace.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.bench import (replay_trace, resume_point,
                         resumed_tail_identical, save_trace)
from repro.durable import DurabilityError, DurabilityLog
from repro.obs import MetricsRegistry
from repro.serve import FleetError, FleetRouter

REPO_ROOT = Path(__file__).resolve().parents[2]


def _durable_fleet(shard_factory, wal_root, shard_ids=("s0", "s1")):
    wal = DurabilityLog(wal_root, metrics=MetricsRegistry())
    shards = [shard_factory(shard_id) for shard_id in shard_ids]
    return FleetRouter(shards, replication=2, wal=wal)


class TestKillAndRestore:
    @pytest.mark.parametrize("kill_at", [3, 11, 20],
                             ids=["early", "mid", "completed"])
    def test_restored_fleet_resumes_bit_identically(
            self, shard_factory, fleet_trace, tmp_path, kill_at):
        wal_root = tmp_path / "wal"
        fleet = _durable_fleet(shard_factory, wal_root)
        prefix = replace(fleet_trace, ops=fleet_trace.ops[:kill_at])
        replay_trace(prefix, fleet, collect_stats=False)
        del fleet  # the "crash": nothing survives but the WAL directory

        restored = _durable_fleet(shard_factory, wal_root)
        report = restored.restore()
        # the replayer opens every city before the first op, so all of
        # them have durable history even when the kill came early
        assert set(report) == set(fleet_trace.cities)
        versions = {name: entry["version"]
                    for name, entry in report.items()}
        start = resume_point(fleet_trace, versions)
        # the earliest consistent resume point: every update before the
        # kill is behind it, and only idempotent score/evict ops may be
        # harmlessly re-run between start and the kill point
        assert start <= kill_at
        assert all(op.op != "update"
                   for op in fleet_trace.ops[start:kill_at])
        resumed = replay_trace(fleet_trace, restored, collect_stats=False,
                               start_at=start, open_cities=False)

        oracle = replay_trace(fleet_trace, shard_factory("oracle"),
                              collect_stats=False)
        identical, max_diff = resumed_tail_identical(oracle, resumed, start)
        assert identical and max_diff == 0.0

    def test_restore_matches_uninterrupted_durable_fleet(
            self, shard_factory, fleet_trace, tmp_path):
        """The recovered fingerprint chain equals the never-crashed one."""
        crashed_root, control_root = tmp_path / "crashed", tmp_path / "ctrl"
        fleet = _durable_fleet(shard_factory, crashed_root)
        replay_trace(replace(fleet_trace, ops=fleet_trace.ops[:9]), fleet,
                     collect_stats=False)
        del fleet
        restored = _durable_fleet(shard_factory, crashed_root)
        report = restored.restore()
        start = resume_point(fleet_trace,
                             {name: entry["version"]
                              for name, entry in report.items()})
        replay_trace(fleet_trace, restored, collect_stats=False,
                     start_at=start, open_cities=False)

        control = _durable_fleet(shard_factory, control_root, ("c0",))
        replay_trace(fleet_trace, control, collect_stats=False)

        restored_cities = restored.cities()
        for name, entry in control.cities().items():
            twin = restored_cities[name]
            assert twin["version"] == entry["version"]
            assert twin["fingerprint"] == entry["fingerprint"]

    def test_restore_with_empty_wal_root(self, shard_factory, tmp_path):
        fleet = _durable_fleet(shard_factory, tmp_path / "wal")
        assert fleet.restore() == {}

    def test_restore_requires_wal(self, shard_factory):
        fleet = FleetRouter([shard_factory("s0")], replication=1)
        assert not fleet.durable
        with pytest.raises(FleetError, match="no durability log"):
            fleet.restore()

    def test_snapshot_compacts_every_city(self, shard_factory, fleet_trace,
                                          tmp_path):
        fleet = _durable_fleet(shard_factory, tmp_path / "wal")
        replay_trace(fleet_trace, fleet, collect_stats=False)
        report = fleet.snapshot()
        assert set(report) == set(fleet_trace.cities)
        # compaction replaced the replay tail: recovery is snapshot-only
        wal = DurabilityLog(tmp_path / "wal", metrics=MetricsRegistry())
        for name, recovered in wal.recover_all().items():
            assert recovered.records_replayed == 0
            assert recovered.version == report[name]["seq"]


class TestSigkillSubprocess:
    def test_sigkill_mid_replay_then_restore(self, model_registry,
                                             shard_factory, fleet_trace,
                                             tmp_path):
        """Kill -9 the whole CLI process mid-replay; recover in-process."""
        trace_path = tmp_path / "trace.npz"
        save_trace(fleet_trace, trace_path)
        wal_root = tmp_path / "wal"
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli.main", "fleet",
             "--registry", str(model_registry.root), "--model", "tiny",
             "--trace", str(trace_path), "--wal-dir", str(wal_root),
             "--fsync", "always"],
            cwd=REPO_ROOT, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if any(wal_root.glob("*/wal-*.seg")) \
                        or process.poll() is not None:
                    break
                time.sleep(0.05)
            if process.poll() is None:
                os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - belt and braces
                process.kill()

        restored = _durable_fleet(shard_factory, wal_root)
        report = restored.restore()
        assert report, "the subprocess never opened a durable stream"
        start = resume_point(fleet_trace,
                             {name: entry["version"]
                              for name, entry in report.items()})
        resumed = replay_trace(fleet_trace, restored, collect_stats=False,
                               start_at=start, open_cities=False)
        oracle = replay_trace(fleet_trace, shard_factory("oracle"),
                              collect_stats=False)
        identical, max_diff = resumed_tail_identical(oracle, resumed, start)
        assert identical and max_diff == 0.0


class TestDurabilityStatus:
    def test_healthz_and_stats_report_durability(self, shard_factory,
                                                 fleet_trace, tmp_path):
        fleet = _durable_fleet(shard_factory, tmp_path / "wal")
        replay_trace(fleet_trace, fleet, collect_stats=False)
        for payload in (fleet.healthz(), fleet.stats()):
            durability = payload["durability"]
            assert durability["wal_enabled"] is True
            assert durability["log_bytes"] > 0
            assert durability["last_checkpoint_age_seconds"] >= 0.0
        status = fleet.checkpoint(force=True)
        assert set(status) == set(fleet_trace.cities)

    def test_plain_fleet_reports_wal_disabled(self, shard_factory):
        fleet = FleetRouter([shard_factory("s0")], replication=1)
        assert fleet.healthz()["durability"] == {"wal_enabled": False}
        assert fleet.stats()["durability"] == {"wal_enabled": False}

    def test_durability_error_is_a_clean_message(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("file in the way")
        with pytest.raises(DurabilityError) as excinfo:
            DurabilityLog(target / "wal", metrics=MetricsRegistry())
        message = str(excinfo.value)
        assert "cannot create durability root" in message
        assert "Traceback" not in message
