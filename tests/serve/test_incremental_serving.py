"""Serving-layer surface of incremental rescoring.

Covers the ``/stats`` endpoint, the enriched ``/update`` responses
(``mode`` / ``affected_regions`` / timing), the stream-open knobs, the
engine's ``seed_scores`` hook and the cache-stampede guard (concurrent
cold requests for one city compute once even with the result LRU unable
to carry the answer between threads).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve import InferenceEngine, ScoringClient, ScoringServer
from repro.serve.client import ScoringServiceError
from repro.synth import EvolutionConfig, generate_evolution


@pytest.fixture()
def streaming_server(model_registry):
    with ScoringServer(model_registry, cache_size=8) as server:
        client = ScoringClient(server.url)
        client.wait_until_ready()
        yield server, client


def _deltas(graph, steps=3, seed=11):
    return generate_evolution(graph, EvolutionConfig(
        steps=steps, seed=seed, scenarios=("poi_churn", "imagery_refresh")))


class TestUpdateResponses:
    def test_update_reports_mode_and_receptive_field(
            self, streaming_server, tiny_graph_small_image):
        _, client = streaming_server
        graph = tiny_graph_small_image
        client.open_stream("inc", graph, "tiny")
        first, second = _deltas(graph, steps=2)[:2]
        payload = client.update_stream("inc", first)
        assert payload["mode"] in ("incremental", "full")
        response = client.update_stream("inc", second)
        assert response["mode"] == "incremental"
        assert 0 < response["affected_regions"] <= graph.num_nodes
        assert 0 < response["affected_fraction"] <= 1
        assert response["elapsed_ms"] >= 0
        stats = response["stats"]
        assert stats["incremental_rescores"] >= 1

    def test_open_knobs_respected_and_validated(self, streaming_server,
                                                tiny_graph_small_image):
        _, client = streaming_server
        graph = tiny_graph_small_image
        client.open_stream("plain", graph, "tiny", incremental="never")
        (delta,) = _deltas(graph, steps=1)
        payload = client.update_stream("plain", delta)
        assert payload["mode"] == "full"
        with pytest.raises(ScoringServiceError) as excinfo:
            client.open_stream("bad", graph, "tiny", incremental="sometimes")
        assert excinfo.value.status == 400
        with pytest.raises(ScoringServiceError) as excinfo:
            client.open_stream("bad", graph, "tiny", incremental_cutoff=0)
        assert excinfo.value.status == 400


class TestStatsEndpoint:
    def test_stats_exposes_caches_and_stream_counters(
            self, streaming_server, tiny_graph_small_image):
        _, client = streaming_server
        graph = tiny_graph_small_image
        client.open_stream("watched", graph, "tiny")
        for delta in _deltas(graph, steps=3):
            client.update_stream("watched", delta)
        stats = client.stats()
        assert stats["plan_cache"]["builds"] >= 1
        assert "subplan_builds" in stats["plan_cache"]
        (engine_entry,) = [e for e in stats["engines"] if e["model"] == "tiny"]
        assert engine_entry["cache"]["hits"] >= 1
        assert "stampedes_avoided" in engine_entry
        entry = [s for s in stats["streams"] if s["stream"] == "watched"][0]
        assert entry["incremental"] == "auto"
        assert entry["stats"]["incremental_rescores"] >= 1
        assert entry["stats"]["rescores"] >= 3


class TestSeedScores:
    def test_seeded_scores_serve_as_cache_hits(self, fitted_detector,
                                               tiny_graph_small_image):
        engine = InferenceEngine(fitted_detector, cache_size=4)
        graph = tiny_graph_small_image
        fingerprint = graph.fingerprint()
        scores = np.linspace(0, 1, graph.num_nodes)
        engine.seed_scores(fingerprint, scores)
        result = engine.score(graph)
        assert result.cache_hit
        assert engine.cold_computes == 0
        assert np.array_equal(result.probabilities, scores)

    def test_seed_scores_noop_when_cache_disabled(self, fitted_detector,
                                                  tiny_graph_small_image):
        engine = InferenceEngine(fitted_detector, cache_size=0)
        assert not engine.caching_enabled
        engine.seed_scores("abc", np.zeros(3))
        assert engine.cache_len == 0


class TestStampedeGuard:
    def test_concurrent_cold_requests_compute_once_without_cache(
            self, fitted_detector, tiny_graph_small_image, monkeypatch):
        """With the result cache disabled entirely, the LRU can never hand
        one thread's result to another — only the in-flight guard can.
        Every concurrent requester must still get the single computed
        vector, with exactly one forward pass paid."""
        engine = InferenceEngine(fitted_detector, cache_size=0)
        graph = tiny_graph_small_image
        barrier = threading.Barrier(5)
        original = engine._cold_scores

        def slow_cold(graph_arg, fingerprint):
            # hold the compute long enough for every waiter to line up
            # behind the in-flight entry (they all passed the barrier
            # before the owner got here)
            import time
            time.sleep(0.5)
            return original(graph_arg, fingerprint)

        monkeypatch.setattr(engine, "_cold_scores", slow_cold)

        def request(_):
            barrier.wait(timeout=10)
            return engine.score(graph).probabilities

        with ThreadPoolExecutor(max_workers=5) as pool:
            results = list(pool.map(request, range(5)))
        assert engine.cold_computes == 1
        assert engine.stampedes_avoided == 4
        for got in results[1:]:
            assert np.array_equal(got, results[0])

    def test_failed_compute_does_not_wedge_the_fingerprint(
            self, fitted_detector, tiny_graph_small_image, monkeypatch):
        engine = InferenceEngine(fitted_detector, cache_size=2)
        graph = tiny_graph_small_image
        calls = {"n": 0}
        original = engine._cold_scores

        def flaky(graph_arg, fingerprint):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient failure")
            return original(graph_arg, fingerprint)

        monkeypatch.setattr(engine, "_cold_scores", flaky)
        with pytest.raises(RuntimeError, match="transient"):
            engine.score(graph)
        result = engine.score(graph)
        assert not engine._inflight
        assert result.probabilities.shape == (graph.num_nodes,)
