"""Chaos tests: kill a shard mid-workload, prove nothing is lost.

The invariants: when a shard starts failing (raising or timing out) the
router fails over to the next replica, every request in the trace still
completes, and the replayed float64 scores stay bit-identical to the
single-engine oracle — failover is invisible except in the counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import replay_trace, replays_identical
from repro.serve import (ChaosShard, ConsistentHashRing, FleetError,
                         FleetRouter, ShardFailure)

SHARD_IDS = ["s0", "s1", "s2"]


def _busiest_shard(fleet_trace, fleet_cities):
    """The primary shard of the city the trace hits most often."""
    ring = ConsistentHashRing(SHARD_IDS)
    hits = {name: 0 for name in fleet_cities}
    for op in fleet_trace.ops:
        hits[op.city] += 1
    busiest = max(fleet_cities, key=lambda name: hits[name])
    key = fleet_cities[busiest].structural_fingerprint()
    return ring.assign(key, 2)[0]


def _chaos_fleet(shard_factory, victim, **chaos_kwargs):
    shards = []
    chaos = None
    for shard_id in SHARD_IDS:
        shard = shard_factory(shard_id)
        if shard_id == victim:
            chaos = ChaosShard(shard, **chaos_kwargs)
            shard = chaos
        shards.append(shard)
    return FleetRouter(shards, replication=2), chaos


class TestFailover:
    @pytest.mark.parametrize("error_factory", [
        None,  # the default injected ShardFailure
        lambda: TimeoutError("injected backend timeout"),
    ], ids=["raises", "times-out"])
    def test_killed_shard_fails_over_losslessly_and_bit_identically(
            self, shard_factory, fleet_trace, fleet_cities, error_factory):
        victim = _busiest_shard(fleet_trace, fleet_cities)
        router, chaos = _chaos_fleet(shard_factory, victim, fail_after=2,
                                     error_factory=error_factory)
        oracle_result = replay_trace(fleet_trace, shard_factory("oracle"),
                                     collect_stats=False)
        fleet_result = replay_trace(fleet_trace, router)

        # the fault actually fired and the router absorbed it
        assert chaos.failed_calls > 0
        assert router.fleet_stats.failovers >= 1
        assert router.fleet_stats.shard_failures >= 1
        assert router.fleet_stats.reopened_streams >= 1
        assert victim in router.down_shards()
        # zero dropped requests
        assert router.fleet_stats.no_replica_errors == 0
        assert fleet_result.completed_ops == len(fleet_trace)
        # and the scores never noticed
        identical, max_diff = replays_identical(oracle_result, fleet_result)
        assert identical, f"failover changed scores (max |diff| {max_diff})"
        # greppable proof for the CI chaos smoke
        print(f"\nchaos[{'timeout' if error_factory else 'raise'}]: "
              f"failovers={router.fleet_stats.failovers} "
              f"shard_failures={router.fleet_stats.shard_failures} "
              f"completed={fleet_result.completed_ops}/{len(fleet_trace)} "
              f"bit_identical={identical}")

    def test_mid_stream_kill_preserves_update_history(
            self, shard_factory, fleet_cities, fitted_detector, fleet_trace):
        """Kill the primary *between* two updates of one city; the replica
        must resume from the authoritative post-update graph."""
        name, graph = next(iter(fleet_cities.items()))
        deltas = [op.delta for op in fleet_trace.ops
                  if op.op == "update" and op.city == name]
        assert len(deltas) >= 2
        primary = ConsistentHashRing(SHARD_IDS).assign(
            graph.structural_fingerprint(), 2)[0]
        router, chaos = _chaos_fleet(shard_factory, primary)
        router.open_stream(name, graph)
        assert router.cities()[name]["active"] == primary
        router.update_stream(name, deltas[0])
        chaos.fail()
        payload = router.update_stream(name, deltas[1])
        assert payload["shard"] != primary
        assert router.cities()[name]["active"] != primary
        expected = fitted_detector.predict_proba(
            deltas[1].apply(deltas[0].apply(graph)))
        np.testing.assert_array_equal(
            np.asarray(payload["score"]["probabilities"], dtype=np.float64),
            expected)

    def test_no_replica_left_is_a_fleet_error(self, shard_factory,
                                              fleet_cities):
        name, graph = next(iter(fleet_cities.items()))
        shard = shard_factory("only")
        chaos = ChaosShard(shard)
        router = FleetRouter([chaos], replication=1)
        router.open_stream(name, graph)
        chaos.fail()
        with pytest.raises(FleetError, match="no healthy replica"):
            router.score_stream(name)
        assert router.fleet_stats.no_replica_errors == 1

    def test_client_errors_do_not_trigger_failover(self, shard_factory,
                                                   fleet_cities):
        """A malformed request is the caller's fault — the shard must not
        be marked down for it."""
        name, graph = next(iter(fleet_cities.items()))
        router = FleetRouter([shard_factory(f"s{i}") for i in range(2)],
                             replication=2)
        router.open_stream(name, graph)
        with pytest.raises(ValueError):
            router.score_stream(name, regions=[graph.num_nodes + 10])
        assert router.down_shards() == []
        assert router.fleet_stats.shard_failures == 0

    def test_recovered_shard_is_revived_by_health_check(self, shard_factory,
                                                        fleet_cities):
        name, graph = next(iter(fleet_cities.items()))
        primary = ConsistentHashRing(SHARD_IDS).assign(
            graph.structural_fingerprint(), 2)[0]
        router, chaos = _chaos_fleet(shard_factory, primary)
        router.open_stream(name, graph)
        chaos.fail()
        router.score_stream(name)  # fails over
        assert primary in router.down_shards()
        chaos.recover()
        health = router.health()
        assert health["down"] == []
        assert primary in health["healthy"]
        # and the revived shard serves again (stream re-materialises there
        # only if routing sends something to it — scoring still works)
        scores = np.asarray(router.score_stream(name)["probabilities"],
                            dtype=np.float64)
        assert scores.shape[0] == router.cities()[name]["regions"]

    def test_chaos_shard_counts_its_calls(self, shard_factory, fleet_cities):
        name, graph = next(iter(fleet_cities.items()))
        chaos = ChaosShard(shard_factory("only"), fail_after=3)
        router = FleetRouter([chaos], replication=1)
        router.open_stream(name, graph)          # call 1
        router.score_stream(name)                # call 2
        router.score_stream(name)                # call 3
        with pytest.raises(FleetError):
            router.score_stream(name)            # call 4 -> fails
        assert chaos.calls == 4
        assert chaos.failed_calls >= 1
        assert chaos.failing

    def test_shard_failure_classification(self):
        from repro.serve.client import ScoringServiceError
        from repro.serve.fleet import is_shard_failure
        assert is_shard_failure(ShardFailure("x"))
        assert is_shard_failure(TimeoutError())
        assert is_shard_failure(ConnectionError())
        assert is_shard_failure(ScoringServiceError(0, "unreachable"))
        assert is_shard_failure(ScoringServiceError(500, "boom"))
        assert not is_shard_failure(ScoringServiceError(400, "bad request"))
        assert not is_shard_failure(ScoringServiceError(404, "missing"))
        assert not is_shard_failure(ValueError("bad delta"))
        assert not is_shard_failure(KeyError("unknown stream"))
