"""Unit + property tests for the resilience primitives.

Covers the deterministic state machines in :mod:`repro.serve.resilience`
with injected clocks, the hypothesis properties the module docstrings
promise (no invalid breaker transition, open always eventually
half-opens, the retry-budget balance never goes negative), and a
threaded admission soak reconciling shed-vs-accepted counters exactly.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.resilience import (VALID_BREAKER_TRANSITIONS,
                                    AdmissionConfig, AdmissionController,
                                    BreakerConfig, CircuitBreaker, Deadline,
                                    DeadlineExceeded, ResilienceConfig,
                                    RetryBudget, ShedError, StaleScoreCache,
                                    check_deadline, current_deadline,
                                    deadline_scope, remaining_ms_header)


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_breaker(clock, **overrides) -> CircuitBreaker:
    """A jitter-free breaker on an injected clock."""
    defaults = dict(jitter=0.0, backoff_initial_s=1.0)
    defaults.update(overrides)
    return CircuitBreaker("shard-0", BreakerConfig(**defaults), clock=clock)


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
class TestDeadline:
    def test_budget_decrements_with_the_clock(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250.0, clock=clock)
        assert deadline.remaining_ms() == pytest.approx(250.0)
        clock.advance(0.2)
        assert deadline.remaining_ms() == pytest.approx(50.0)
        assert not deadline.expired
        clock.advance(0.1)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded) as err:
            deadline.raise_if_expired("unit test")
        assert err.value.overdue_s == pytest.approx(0.05)
        assert err.value.reason == "deadline"

    def test_non_finite_budget_is_rejected(self):
        for bad in (float("inf"), float("nan")):
            with pytest.raises(ValueError):
                Deadline.after_ms(bad)

    def test_scope_installs_masks_and_restores(self):
        clock = FakeClock()
        outer = Deadline.after_ms(1000.0, clock=clock)
        assert current_deadline() is None
        with deadline_scope(outer):
            assert current_deadline() is outer
            # deadline_scope(None) masks: delta application must never
            # be aborted mid-way for a missed deadline
            with deadline_scope(None):
                assert current_deadline() is None
                check_deadline("masked")  # no-op even if outer expired
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_check_deadline_sheds_expired_scope(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(10.0, clock=clock)
        clock.advance(1.0)
        with deadline_scope(deadline):
            with pytest.raises(DeadlineExceeded):
                check_deadline("router")

    def test_header_floors_at_zero(self):
        clock = FakeClock()
        assert remaining_ms_header() is None
        deadline = Deadline.after_ms(120.0, clock=clock)
        with deadline_scope(deadline):
            assert remaining_ms_header() == "120"
            clock.advance(1.0)
            # spent budgets still send the header so the next hop sheds
            assert remaining_ms_header() == "0"


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_admits_within_concurrency_bound(self):
        controller = AdmissionController(
            "/score", AdmissionConfig(max_concurrency=2, max_queue=0))
        with controller.admit():
            with controller.admit():
                assert controller.active == 2
        assert controller.active == 0
        assert controller.attempts == controller.admitted == 2
        assert controller.shed_total == 0

    def test_sheds_when_queue_is_full(self):
        controller = AdmissionController(
            "/score", AdmissionConfig(max_concurrency=1, max_queue=0,
                                      retry_after_s=0.125))
        with controller.admit():
            with pytest.raises(ShedError) as err:
                with controller.admit():
                    pass  # pragma: no cover - never admitted
        assert err.value.reason == "queue_full"
        assert err.value.retry_after_s == pytest.approx(0.125)
        assert controller.sheds["queue_full"] == 1
        assert controller.attempts == controller.admitted + controller.shed_total

    def test_queued_request_times_out(self):
        controller = AdmissionController(
            "/score", AdmissionConfig(max_concurrency=1, max_queue=4,
                                      queue_timeout_s=0.05))
        release = threading.Event()
        started = threading.Event()

        def hog():
            with controller.admit():
                started.set()
                release.wait(timeout=5.0)

        hogger = threading.Thread(target=hog)
        hogger.start()
        try:
            assert started.wait(timeout=5.0)
            with pytest.raises(ShedError) as err:
                with controller.admit():
                    pass  # pragma: no cover - never admitted
            assert err.value.reason == "queue_timeout"
        finally:
            release.set()
            hogger.join(timeout=5.0)
        assert controller.sheds["queue_timeout"] == 1
        assert controller.queued == 0

    def test_expired_deadline_is_shed_before_queueing(self):
        clock = FakeClock()
        controller = AdmissionController("/score", AdmissionConfig())
        deadline = Deadline.after_ms(10.0, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceeded):
            with controller.admit(deadline=deadline):
                pass  # pragma: no cover - never admitted
        assert controller.sheds["deadline"] == 1
        assert controller.admitted == 0

    def test_describe_reconciles(self):
        controller = AdmissionController(
            "/score", AdmissionConfig(max_concurrency=1, max_queue=0))
        with controller.admit():
            with pytest.raises(ShedError):
                with controller.admit():
                    pass  # pragma: no cover
        report = controller.describe()
        assert report["attempts"] == report["admitted"] + report["shed_total"]
        assert report["active"] == 0

    def test_threaded_soak_counters_reconcile_exactly(self):
        """attempts == admitted + shed under real contention.

        Every issued op lands in exactly one bucket; the totals must
        reconcile to the op count with no drift — the invariant the
        overload benchmark's accounting depends on.
        """
        controller = AdmissionController(
            "/score", AdmissionConfig(max_concurrency=3, max_queue=2,
                                      queue_timeout_s=0.005))
        threads, per_thread = 8, 50
        local = {"admitted": 0, "shed": 0}
        tally = threading.Lock()

        def worker():
            admitted = shed = 0
            for _ in range(per_thread):
                try:
                    with controller.admit():
                        admitted += 1
                except ShedError:
                    shed += 1
            with tally:
                local["admitted"] += admitted
                local["shed"] += shed

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30.0)
        issued = threads * per_thread
        assert controller.attempts == issued
        assert controller.admitted == local["admitted"]
        assert controller.shed_total == local["shed"]
        assert controller.admitted + controller.shed_total == issued
        assert controller.active == 0
        assert controller.queued == 0


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_failure_threshold_trips(self):
        clock = FakeClock()
        breaker = make_breaker(clock, failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_the_failure_run(self):
        clock = FakeClock()
        breaker = make_breaker(clock, failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_open_half_opens_after_backoff_and_closes_on_probe_success(self):
        clock = FakeClock()
        breaker = make_breaker(clock, backoff_initial_s=1.0)
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(1.01)
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # slot already owned
        breaker.record_success(0.01)
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.transitions == [("closed", "open"),
                                       ("open", "half_open"),
                                       ("half_open", "closed")]

    def test_failed_probe_reopens_with_doubled_backoff(self):
        clock = FakeClock()
        breaker = make_breaker(clock, backoff_initial_s=1.0,
                               backoff_multiplier=2.0)
        breaker.record_failure()
        clock.advance(1.01)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        clock.advance(1.01)
        assert not breaker.allow()  # first retrip doubled the wait
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success(0.01)
        # a full reset also resets the backoff ladder
        breaker.record_failure()
        clock.advance(1.01)
        assert breaker.allow()

    def test_explicit_latency_threshold_trips_on_gray_failure(self):
        clock = FakeClock()
        breaker = make_breaker(clock, latency_threshold_s=0.1,
                               latency_violations=3)
        for _ in range(2):
            breaker.record_success(0.5)
        assert breaker.state == "closed"
        breaker.record_success(0.01)  # a fast call resets the slow run
        breaker.record_success(0.5)
        breaker.record_success(0.5)
        assert breaker.state == "closed"
        breaker.record_success(0.5)
        assert breaker.state == "open"

    def test_derived_threshold_uses_own_p99(self):
        clock = FakeClock()
        breaker = make_breaker(clock, min_latency_samples=16,
                               latency_factor=4.0, latency_violations=2)
        assert breaker.slow_threshold_s() is None  # not enough samples
        for _ in range(16):
            breaker.record_success(0.010)
        threshold = breaker.slow_threshold_s()
        assert threshold == pytest.approx(0.040)
        breaker.record_success(0.010)  # under: harmless, keeps the window
        assert breaker.slow_threshold_s() == pytest.approx(0.040)
        breaker.record_success(0.100)
        breaker.record_success(0.100)
        assert breaker.state == "open"

    def test_success_racing_a_trip_does_not_close(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        breaker.record_failure()
        assert breaker.state == "open"
        # a call that started while closed finishes now: says nothing
        breaker.record_success(0.01)
        assert breaker.state == "open"

    def test_force_close_takes_the_legal_path_from_open(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        breaker.record_failure()
        breaker.force_close()
        assert breaker.state == "closed"
        assert set(breaker.transitions) <= VALID_BREAKER_TRANSITIONS

    def test_force_open_trips_from_closed_and_half_open(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        breaker.force_open()
        assert breaker.state == "open"
        clock.advance(1.01)
        assert breaker.allow()
        assert breaker.state == "half_open"
        breaker.force_open()
        assert breaker.state == "open"
        assert set(breaker.transitions) <= VALID_BREAKER_TRANSITIONS

    def test_on_transition_callback_sees_every_edge(self):
        clock = FakeClock()
        seen = []
        breaker = CircuitBreaker(
            "s", BreakerConfig(jitter=0.0, backoff_initial_s=1.0),
            clock=clock,
            on_transition=lambda name, old, new: seen.append((old, new)))
        breaker.record_failure()
        clock.advance(1.01)
        breaker.allow()
        breaker.record_success()
        assert seen == breaker.transitions

    def test_jitter_is_deterministic_per_seed(self):
        def trip_delay(seed):
            clock = FakeClock()
            breaker = CircuitBreaker(
                "s", BreakerConfig(jitter=0.5, backoff_initial_s=1.0,
                                   seed=seed), clock=clock)
            breaker.record_failure()
            return breaker.describe()["next_probe_in_s"]

        assert trip_delay(1) == trip_delay(1)
        assert 0.5 <= trip_delay(1) <= 1.5


#: one breaker-facing event; clock advances interleave freely
breaker_events = st.lists(
    st.one_of(
        st.just(("failure",)),
        st.tuples(st.just("success"),
                  st.floats(min_value=0.0, max_value=2.0,
                            allow_nan=False, allow_infinity=False)),
        st.just(("allow",)),
        st.just(("force_open",)),
        st.just(("force_close",)),
        st.tuples(st.just("advance"),
                  st.floats(min_value=0.0, max_value=10.0,
                            allow_nan=False, allow_infinity=False)),
    ),
    min_size=0, max_size=60)


class TestBreakerProperties:
    @given(events=breaker_events, seed=st.integers(0, 2 ** 16))
    @settings(max_examples=120, deadline=None)
    def test_no_sequence_produces_an_invalid_transition(self, events, seed):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "prop", BreakerConfig(failure_threshold=2,
                                  latency_threshold_s=0.5,
                                  latency_violations=2,
                                  backoff_initial_s=0.5, seed=seed),
            clock=clock)
        for event in events:
            if event[0] == "failure":
                breaker.record_failure()
            elif event[0] == "success":
                breaker.record_success(event[1])
            elif event[0] == "allow":
                breaker.allow()
            elif event[0] == "force_open":
                breaker.force_open()
            elif event[0] == "force_close":
                breaker.force_close()
            else:
                clock.advance(event[1])
            assert breaker.state in ("closed", "half_open", "open")
        assert set(breaker.transitions) <= VALID_BREAKER_TRANSITIONS

    @given(events=breaker_events, seed=st.integers(0, 2 ** 16))
    @settings(max_examples=120, deadline=None)
    def test_open_always_eventually_half_opens(self, events, seed):
        """No event sequence can wedge the breaker: from open, enough
        wall-clock time always buys a probe."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            "prop", BreakerConfig(failure_threshold=1,
                                  latency_threshold_s=0.5,
                                  latency_violations=2,
                                  backoff_initial_s=0.5,
                                  backoff_max_s=30.0, seed=seed),
            clock=clock)
        for event in events:
            if event[0] == "failure":
                breaker.record_failure()
            elif event[0] == "success":
                breaker.record_success(event[1])
            elif event[0] == "allow":
                breaker.allow()
            elif event[0] == "force_open":
                breaker.force_open()
            elif event[0] == "force_close":
                breaker.force_close()
            else:
                clock.advance(event[1])
        breaker.record_failure()  # ensure we end at (or stay in) a bad state
        if breaker.state == "open":
            # backoff_max_s caps the wait; jitter adds < 100%
            clock.advance(2 * 30.0 + 1.0)
            assert breaker.allow()
            assert breaker.state == "half_open"


class TestRetryBudgetProperties:
    @given(ops=st.lists(st.one_of(
        st.just("fund"),
        st.tuples(st.just("spend"),
                  st.floats(min_value=0.0, max_value=4.0,
                            allow_nan=False, allow_infinity=False))),
        min_size=0, max_size=200),
        ratio=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        capacity=st.floats(min_value=0.1, max_value=64.0, allow_nan=False),
        initial=st.floats(min_value=0.0, max_value=64.0, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_balance_never_negative_and_never_above_capacity(
            self, ops, ratio, capacity, initial):
        budget = RetryBudget(ratio=ratio, capacity=capacity, initial=initial)
        for op in ops:
            if op == "fund":
                budget.note_request()
            else:
                granted = budget.try_spend(op[1])
                if granted:
                    assert budget.balance() >= 0.0
            assert 0.0 <= budget.balance() <= capacity

    def test_spend_denied_when_dry(self):
        budget = RetryBudget(ratio=0.1, capacity=2.0, initial=1.0)
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.retries_denied == 1
        for _ in range(12):  # 12 x 0.1 clears 1.0 despite float rounding
            budget.note_request()
        assert budget.try_spend()
        assert budget.balance() == pytest.approx(0.2, abs=1e-6)


# ----------------------------------------------------------------------
# stale-score cache
# ----------------------------------------------------------------------
class TestStaleScoreCache:
    def test_serves_within_the_lag_bound_flagged_degraded(self):
        cache = StaleScoreCache(max_version_lag=3)
        cache.put("porto", 7, {"scores": [1.0], "cache": "miss"})
        hit = cache.get("porto", 9)
        assert hit is not None
        assert hit["degraded"] is True
        assert hit["staleness"] == 2
        assert hit["cached_version"] == 7
        assert "cache" not in hit  # engine-cache flag stripped
        assert cache.get("porto", 11) is None  # lag 4 > 3
        assert cache.served == 1 and cache.too_stale == 1

    def test_get_returns_a_copy(self):
        cache = StaleScoreCache()
        cache.put("porto", 1, {"scores": [1.0]})
        first = cache.get("porto", 1)
        first["scores"] = "mutated"
        second = cache.get("porto", 1)
        assert second["scores"] == [1.0]
        assert first["staleness"] == 0

    def test_entry_count_is_bounded(self):
        cache = StaleScoreCache(max_entries=2)
        cache.put("a", 1, {})
        cache.put("b", 1, {})
        cache.put("c", 1, {})
        assert cache.describe()["entries"] == 2

    def test_missing_stream_is_a_miss(self):
        assert StaleScoreCache().get("nowhere", 0) is None


class TestResilienceConfig:
    def test_budget_built_from_knobs(self):
        config = ResilienceConfig(retry_budget_ratio=0.25,
                                  retry_budget_capacity=4.0)
        budget = config.build_retry_budget()
        assert budget.ratio == 0.25
        assert budget.capacity == 4.0
        assert budget.balance() == 4.0

    def test_probe_interval_validated(self):
        with pytest.raises(ValueError):
            ResilienceConfig(probe_interval_s=0.0)
        ResilienceConfig(probe_interval_s=None)  # disabled is fine
