"""FleetRouter basics: routing, replication, aggregation, remote shards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (ConsistentHashRing, EngineShard, FleetRouter,
                         InferenceEngine, RemoteShard, ScoringServer)
from repro.serve.client import ScoringServiceError


class TestConsistentHashRing:
    def test_assignment_is_deterministic_and_valid(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        first = ring.assign("some-city", 2)
        assert first == ring.assign("some-city", 2)
        assert len(first) == 2 and len(set(first)) == 2
        assert set(first) <= {"a", "b", "c"}

    def test_primary_is_stable_as_replication_grows(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        for key in ("k1", "k2", "k3", "city-42"):
            primary = ring.assign(key, 1)[0]
            assert ring.assign(key, 3)[0] == primary

    def test_count_clamps_to_population(self):
        ring = ConsistentHashRing(["a", "b"])
        assert sorted(ring.assign("k", 10)) == ["a", "b"]

    def test_keys_spread_across_shards(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(4)])
        owners = {ring.assign(f"key-{i}")[0] for i in range(200)}
        assert owners == {"s0", "s1", "s2", "s3"}

    def test_add_remove_membership(self):
        ring = ConsistentHashRing(["a"])
        ring.add("b")
        assert sorted(ring.shards) == ["a", "b"]
        ring.remove("a")
        assert ring.shards == ["b"]
        with pytest.raises(ValueError):
            ring.remove("a")
        with pytest.raises(ValueError):
            ring.add("b")

    def test_empty_ring_rejects_routing(self):
        with pytest.raises(ValueError, match="empty ring"):
            ConsistentHashRing().assign("k")


class TestFleetRouting:
    def test_open_routes_to_replica_set(self, shard_factory, fleet_cities):
        router = FleetRouter([shard_factory(f"s{i}") for i in range(3)],
                             replication=2)
        name, graph = next(iter(fleet_cities.items()))
        payload = router.open_stream(name, graph)
        assert payload["routing_key"] == graph.structural_fingerprint()
        assert payload["shard"] == payload["replicas"][0]
        assert router.cities()[name]["active"] == payload["shard"]
        assert payload["replicas"] == router.route(graph.structural_fingerprint())

    def test_scores_match_detector_oracle(self, shard_factory, fleet_cities,
                                          fitted_detector):
        router = FleetRouter([shard_factory(f"s{i}") for i in range(3)],
                             replication=2)
        for name, graph in fleet_cities.items():
            router.open_stream(name, graph)
            scores = np.asarray(
                router.score_stream(name)["probabilities"], dtype=np.float64)
            np.testing.assert_array_equal(
                scores, fitted_detector.predict_proba(graph))

    def test_update_advances_authoritative_copy(self, shard_factory,
                                                fleet_cities, fleet_trace,
                                                fitted_detector):
        router = FleetRouter([shard_factory(f"s{i}") for i in range(2)],
                             replication=2)
        name, graph = next(iter(fleet_cities.items()))
        router.open_stream(name, graph)
        delta = next(op.delta for op in fleet_trace.ops
                     if op.op == "update" and op.city == name)
        payload = router.update_stream(name, delta)
        assert router.cities()[name]["version"] == 1
        np.testing.assert_array_equal(
            np.asarray(payload["score"]["probabilities"], dtype=np.float64),
            fitted_detector.predict_proba(delta.apply(graph)))

    def test_evict_forces_cold_recompute(self, shard_factory, fleet_cities):
        router = FleetRouter([shard_factory("s0", cache_size=8)],
                             replication=1)
        name, graph = next(iter(fleet_cities.items()))
        router.open_stream(name, graph)
        assert router.score_stream(name)["cache_hit"] is True
        evicted = router.evict_stream(name)
        assert evicted["evicted"] == graph.fingerprint()
        cold = router.score_stream(name)
        assert cold["cache_hit"] is False
        assert router.score_stream(name)["cache_hit"] is True

    def test_unknown_city_is_a_clean_keyerror(self, shard_factory):
        router = FleetRouter([shard_factory("s0")], replication=1)
        with pytest.raises(KeyError, match="no open city"):
            router.score_stream("nowhere")

    def test_constructor_validation(self, shard_factory):
        with pytest.raises(ValueError, match="at least one shard"):
            FleetRouter([])
        with pytest.raises(ValueError, match="replication"):
            FleetRouter([shard_factory("s0")], replication=0)
        shard = shard_factory("dup")
        with pytest.raises(ValueError, match="unique"):
            FleetRouter([shard, shard_factory("dup")])

    def test_stats_reconcile_with_per_shard_sums(self, shard_factory,
                                                 fleet_cities):
        router = FleetRouter([shard_factory(f"s{i}", cache_size=4)
                              for i in range(3)], replication=2)
        for name, graph in fleet_cities.items():
            router.open_stream(name, graph)
            router.score_stream(name)
            router.score_stream(name)
        stats = router.stats()
        manual_hits = sum(entry["engine"]["cache"]["hits"]
                          for entry in stats["shards"])
        manual_misses = sum(entry["engine"]["cache"]["misses"]
                            for entry in stats["shards"])
        assert stats["totals"]["cache"]["hits"] == manual_hits
        assert stats["totals"]["cache"]["misses"] == manual_misses
        manual_rescores = sum(
            stream["stats"]["rescores"]
            for entry in stats["shards"] for stream in entry["streams"])
        assert stats["totals"]["stream_counters"]["rescores"] == manual_rescores
        assert stats["fleet"]["score_requests"] == 2 * len(fleet_cities)
        assert stats["fleet"]["opens"] == len(fleet_cities)
        assert stats["totals"]["streams_open"] == len(fleet_cities)

    def test_health_reports_every_shard(self, shard_factory):
        router = FleetRouter([shard_factory(f"s{i}") for i in range(2)],
                             replication=2)
        health = router.health()
        assert health["down"] == []
        assert sorted(health["shards"]) == ["s0", "s1"]
        assert all(entry["healthy"] for entry in health["shards"].values())
        assert router.healthz()["status"] == "ok"


class TestRemoteShard:
    @pytest.fixture()
    def server(self, model_registry):
        with ScoringServer(model_registry) as server:
            yield server

    def test_remote_matches_in_process_bit_for_bit(
            self, server, shard_factory, fleet_cities, fitted_detector):
        remote = RemoteShard(server.url, "tiny", shard_id="r0")
        name, graph = next(iter(fleet_cities.items()))
        opened = remote.open_stream(name, graph)
        assert opened["shard"] == "r0"
        remote_scores = np.asarray(
            remote.score_stream(name)["probabilities"], dtype=np.float64)
        np.testing.assert_array_equal(remote_scores,
                                      fitted_detector.predict_proba(graph))
        evicted = remote.evict_stream(name)
        assert evicted["evicted"] == graph.fingerprint()
        stats = remote.stats()
        assert stats["shard"] == "r0"
        assert stats["engine"]["cache"]["hits"] >= 1
        assert [entry["stream"] for entry in stats["streams"]] == [name]

    def test_remote_health_check_resolves_the_model(self, server):
        remote = RemoteShard(server.url, "tiny", shard_id="r0")
        payload = remote.healthz()
        assert payload["status"] == "ok"
        assert payload["model"]["model"] == "tiny"
        missing = RemoteShard(server.url, "no-such-model", shard_id="r1")
        with pytest.raises(ScoringServiceError) as excinfo:
            missing.healthz()
        assert excinfo.value.status == 404

    def test_unknown_remote_stream_is_keyerror(self, server):
        remote = RemoteShard(server.url, "tiny", shard_id="r0")
        with pytest.raises(KeyError):
            remote.score_stream("never-opened")

    def test_mixed_remote_and_engine_fleet(self, server, shard_factory,
                                           fleet_cities, fitted_detector):
        router = FleetRouter(
            [RemoteShard(server.url, "tiny", shard_id="remote"),
             shard_factory("local")], replication=2)
        for name, graph in fleet_cities.items():
            router.open_stream(name, graph)
            scores = np.asarray(
                router.score_stream(name)["probabilities"], dtype=np.float64)
            np.testing.assert_array_equal(
                scores, fitted_detector.predict_proba(graph))
        shards_used = {state["active"] for state in router.cities().values()}
        assert shards_used <= {"remote", "local"}
