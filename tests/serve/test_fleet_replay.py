"""The tentpole acceptance: deterministic traces, fleet-size invariance.

Replaying one seeded :class:`WorkloadTrace` against a 1-shard oracle and
an N-shard fleet must yield bit-identical float64 scores per city at
every op — sharding is a pure routing concern, never a numeric one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (WorkloadConfig, generate_workload, load_trace,
                         replay_trace, replays_identical, save_trace,
                         trace_from_bytes, trace_from_payload, trace_to_bytes,
                         trace_to_payload)
from repro.serve import FleetRouter


class TestGeneration:
    def test_same_seed_same_trace(self, fleet_cities, traces_equal):
        config = WorkloadConfig(ops=14, seed=9)
        traces_equal(generate_workload(fleet_cities, config),
                     generate_workload(fleet_cities, config))

    def test_different_seed_different_trace(self, fleet_cities):
        a = generate_workload(fleet_cities, WorkloadConfig(ops=14, seed=1))
        b = generate_workload(fleet_cities, WorkloadConfig(ops=14, seed=2))
        assert ([op.op for op in a.ops] != [op.op for op in b.ops]
                or [op.city for op in a.ops] != [op.city for op in b.ops])

    def test_updates_apply_cleanly_in_order(self, fleet_cities, fleet_trace):
        current = dict(fleet_cities)
        for op in fleet_trace.ops:
            if op.op == "update":
                current[op.city] = op.delta.apply(current[op.city])

    def test_weights_shape_the_mix(self, fleet_cities):
        trace = generate_workload(fleet_cities, WorkloadConfig(
            ops=30, seed=3, score_weight=1.0, update_weight=0.0,
            evict_weight=0.0))
        assert trace.op_counts() == {"score": 30, "update": 0, "evict": 0,
                                     "rollout": 0}

    def test_config_validation(self):
        with pytest.raises(ValueError, match="weights"):
            WorkloadConfig(score_weight=0.0, update_weight=0.0,
                           evict_weight=0.0)
        with pytest.raises(ValueError, match="scenario"):
            WorkloadConfig(scenarios=("not_a_scenario",))
        with pytest.raises(ValueError, match="ops"):
            WorkloadConfig(ops=-1)


class TestCodec:
    def test_npz_bytes_round_trip(self, fleet_trace, traces_equal):
        traces_equal(fleet_trace, trace_from_bytes(trace_to_bytes(fleet_trace)))

    def test_file_round_trip(self, fleet_trace, tmp_path, traces_equal):
        path = save_trace(fleet_trace, tmp_path / "trace.npz")
        traces_equal(fleet_trace, load_trace(path))

    @pytest.mark.parametrize("encoding", ["npz", "json"])
    def test_payload_round_trip_survives_json(self, fleet_trace, encoding,
                                              traces_equal):
        import json
        payload = trace_to_payload(fleet_trace, encoding=encoding)
        over_the_wire = json.loads(json.dumps(payload))
        traces_equal(fleet_trace, trace_from_payload(over_the_wire))

    def test_malformed_payloads_are_clean_valueerrors(self, fleet_trace):
        with pytest.raises(ValueError):
            trace_from_bytes(b"not an archive")
        with pytest.raises(ValueError, match="wire version"):
            trace_from_payload({"wire_version": 99})
        with pytest.raises(ValueError, match="encoding"):
            trace_from_payload({"wire_version": 1, "encoding": "xml"})
        with pytest.raises(ValueError):
            trace_from_payload({"wire_version": 1, "encoding": "npz",
                                "trace_base64": "!!!"})


class TestFleetSizeInvariance:
    """The acceptance criterion: 1-shard vs N-shard, bit-identical."""

    def test_three_shard_fleet_matches_single_engine_oracle(
            self, shard_factory, fleet_trace):
        oracle = shard_factory("oracle")
        fleet = FleetRouter([shard_factory(f"s{i}") for i in range(3)],
                            replication=2)
        oracle_result = replay_trace(fleet_trace, oracle)
        fleet_result = replay_trace(fleet_trace, fleet)
        identical, max_diff = replays_identical(oracle_result, fleet_result)
        assert identical, f"fleet diverged from oracle (max |diff| {max_diff})"
        assert max_diff == 0.0
        # the trace actually exercised the fleet: every op completed and
        # the cities spread over more than one shard
        assert fleet_result.completed_ops == len(fleet_trace)
        active = {state["active"] for state in fleet.cities().values()}
        assert len(active) > 1

    def test_recorded_trace_replays_identically_after_round_trip(
            self, shard_factory, fleet_trace, tmp_path):
        path = save_trace(fleet_trace, tmp_path / "trace.npz")
        reloaded = load_trace(path)
        a = replay_trace(fleet_trace, shard_factory("a"), collect_stats=False)
        b = replay_trace(reloaded, shard_factory("b"), collect_stats=False)
        identical, max_diff = replays_identical(a, b)
        assert identical and max_diff == 0.0

    def test_scores_are_float64_and_versioned(self, shard_factory,
                                              fleet_trace, fleet_cities,
                                              fitted_detector):
        result = replay_trace(fleet_trace, shard_factory("solo"))
        for name, graph in fleet_cities.items():
            assert result.opening_scores[name].dtype == np.float64
            np.testing.assert_array_equal(
                result.opening_scores[name],
                fitted_detector.predict_proba(graph))
        # every score op produced a vector, every evict produced None
        for kind, scores in zip(result.op_kinds, result.scores):
            if kind == "evict":
                assert scores is None
            else:
                assert scores is not None and scores.dtype == np.float64

    def test_misaligned_replays_are_rejected(self, shard_factory,
                                             fleet_cities):
        a_trace = generate_workload(fleet_cities, WorkloadConfig(ops=6, seed=1))
        b_trace = generate_workload(fleet_cities, WorkloadConfig(ops=8, seed=1))
        a = replay_trace(a_trace, shard_factory("a"), collect_stats=False)
        b = replay_trace(b_trace, shard_factory("b"), collect_stats=False)
        with pytest.raises(ValueError, match="different op sequences"):
            replays_identical(a, b)
