"""HTTP-level overload behaviour: 503/Retry-After, 504 deadlines,
degraded answers.

The server under test runs with a deliberately tiny admission controller
(one slot, no queue) so a single held slot is saturation — sheds are
deterministic, not load-dependent.
"""

from __future__ import annotations

import json
import time
import urllib.request

import numpy as np
import pytest

from repro.serve import (AdmissionConfig, Deadline, ScoringClient,
                         ScoringServer, deadline_scope)
from repro.serve.client import ScoringServiceError
from repro.serve.resilience import DEADLINE_HEADER


@pytest.fixture(scope="module")
def server(model_registry):
    running = ScoringServer(
        model_registry, quiet=True,
        admission=AdmissionConfig(max_concurrency=1, max_queue=0,
                                  queue_timeout_s=0.05, retry_after_s=0.125),
        degraded=True)
    with running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    client = ScoringClient(server.url)
    client.wait_until_ready()
    yield client
    client.close()


def _hold_score_slot(server):
    """Occupy /score's only admission slot (in-process, no socket)."""
    return server.service._admission["/score"].admit()


class TestServerShedding:
    def test_saturated_score_returns_503_with_retry_after(
            self, server, client, tiny_graph_small_image):
        client.open_stream("shed-cold", tiny_graph_small_image, "tiny")
        with _hold_score_slot(server):
            # never scored -> no stale answer available -> a real shed
            with pytest.raises(ScoringServiceError) as err:
                client.score_stream("shed-cold")
        assert err.value.status == 503
        assert err.value.shed
        assert err.value.retry_after_s == pytest.approx(0.125)
        # the shed shows up in the service's own accounting
        resilience = client.healthz()["resilience"]
        score_admission = resilience["admission"]["/score"]
        assert score_admission["shed"]["queue_full"] >= 1
        assert score_admission["attempts"] == (
            score_admission["admitted"] + score_admission["shed_total"])

    def test_shed_score_serves_degraded_from_stale_cache(
            self, server, client, tiny_graph_small_image):
        client.open_stream("shed-warm", tiny_graph_small_image, "tiny")
        fresh = client.score_stream("shed-warm")
        assert "degraded" not in fresh
        with _hold_score_slot(server):
            degraded = client.score_stream("shed-warm")
        assert degraded["degraded"] is True
        assert degraded["staleness"] == 0
        np.testing.assert_array_equal(
            np.asarray(degraded["probabilities"], dtype=np.float64),
            np.asarray(fresh["probabilities"], dtype=np.float64))

    def test_saturated_update_sheds_without_degraded_answer(
            self, server, client, tiny_graph_small_image, fleet_trace):
        client.open_stream("shed-update", tiny_graph_small_image, "tiny")
        delta = next(op.delta for op in fleet_trace.ops if op.op == "update")
        with server.service._admission["/update"].admit():
            with pytest.raises(ScoringServiceError) as err:
                client.update_stream("shed-update", delta)
        assert err.value.status == 503
        # the shed update was never applied
        assert client.score_stream("shed-update")["stream_version"] == 0


class TestServerDeadlines:
    def test_expired_deadline_propagates_as_504(self, client,
                                                tiny_graph_small_image):
        client.open_stream("deadline-city", tiny_graph_small_image, "tiny")
        expired = Deadline(expires_at=time.monotonic() - 1.0)
        with deadline_scope(expired):
            # the client attaches X-Repro-Deadline-Ms: 0 automatically
            with pytest.raises(ScoringServiceError) as err:
                client.score_stream("deadline-city")
        assert err.value.status == 504
        assert err.value.shed

    def test_generous_deadline_is_invisible(self, client,
                                            tiny_graph_small_image):
        with deadline_scope(Deadline.after_ms(60_000)):
            payload = client.score_stream("deadline-city")
        assert payload["stream"] == "deadline-city"

    def test_malformed_deadline_header_is_ignored(self, server, client):
        body = json.dumps({"stream": "deadline-city"}).encode()
        request = urllib.request.Request(
            server.url + "/score", data=body,
            headers={"Content-Type": "application/json",
                     DEADLINE_HEADER: "soon-ish"})
        with urllib.request.urlopen(request, timeout=30) as response:
            payload = json.loads(response.read())
        assert response.status == 200
        assert payload["stream"] == "deadline-city"


class TestServerResilienceReporting:
    def test_healthz_reports_all_post_endpoints(self, client):
        resilience = client.healthz()["resilience"]
        assert set(resilience["admission"]) == {"/score", "/update", "/evict"}
        assert "stale_cache" in resilience

    def test_shed_metrics_are_scrapeable(self, client):
        text = client.metrics_text()
        assert "repro_resilience_shed_total" in text
        assert "repro_resilience_admitted_total" in text
