"""Concurrency soak: a threaded mixed workload against a 3-shard fleet.

Per-city updates run on one dedicated writer thread (a deterministic
delta chain), while reader threads hammer scores and evicts through the
router.  Small LRU caches keep eviction pressure on.  Invariants:

* **no torn reads** — every score vector a reader gets back matches the
  serial oracle of *some* version of that city (identified by the
  response fingerprint, using content fingerprints so the mapping is
  version-order independent);
* **counters reconcile** — the fleet ``/stats`` totals equal the manual
  per-shard sums, and every engine's ``hits + misses == requests``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import FleetRouter
from repro.synth import EvolutionConfig, generate_evolution

N_VERSIONS = 4
READERS = 4
READER_OPS = 12


@pytest.fixture(scope="module")
def soak_setup(fleet_cities, fitted_detector):
    """Per-city version chains plus fingerprint-keyed oracle scores."""
    chains = {}
    references = {}
    for index, (name, graph) in enumerate(fleet_cities.items()):
        deltas = generate_evolution(graph, EvolutionConfig(
            steps=N_VERSIONS - 1, seed=100 + index,
            scenarios=("poi_churn", "road_rewiring", "imagery_refresh")))
        versions = [graph]
        for delta in deltas:
            versions.append(delta.apply(versions[-1]))
        chains[name] = (graph, deltas)
        for version in versions:
            references[version.fingerprint()] = (
                fitted_detector.predict_proba(version))
    return chains, references


class TestFleetSoak:
    def test_threaded_mixed_workload_has_no_torn_reads_and_reconciles(
            self, shard_factory, soak_setup):
        chains, references = soak_setup
        # cache_size=2 on every shard forces evictions under the mix
        router = FleetRouter(
            [shard_factory(f"s{i}", cache_size=2) for i in range(3)],
            replication=2)
        for name, (graph, _) in chains.items():
            # content fingerprints so any reader's response maps straight
            # onto the precomputed per-version oracle
            router.open_stream(name, graph, fingerprints="content")

        errors = []
        start = threading.Barrier(len(chains) + READERS)

        def writer(name):
            _, deltas = chains[name]
            start.wait()
            try:
                for delta in deltas:
                    router.update_stream(name, delta)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(f"writer[{name}]: {error!r}")

        def reader(reader_id):
            rng = np.random.default_rng(reader_id)
            names = sorted(chains)
            start.wait()
            try:
                for op in range(READER_OPS):
                    name = names[int(rng.integers(len(names)))]
                    if rng.random() < 0.2:
                        router.evict_stream(name)
                        continue
                    payload = router.score_stream(name)
                    scores = np.asarray(payload["probabilities"],
                                        dtype=np.float64)
                    expected = references.get(payload["fingerprint"])
                    if expected is None:
                        errors.append(f"reader[{reader_id}]: unknown version "
                                      f"{payload['fingerprint'][:12]}")
                    elif not np.array_equal(scores, expected):
                        errors.append(f"reader[{reader_id}]: torn read on "
                                      f"{name}")
            except Exception as error:  # pragma: no cover - failure path
                errors.append(f"reader[{reader_id}]: {error!r}")

        threads = ([threading.Thread(target=writer, args=(name,))
                    for name in chains]
                   + [threading.Thread(target=reader, args=(i,))
                      for i in range(READERS)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors

        # nothing failed over: no chaos in this test
        stats = router.stats()
        assert stats["fleet"]["down"] == []
        assert stats["fleet"]["no_replica_errors"] == 0

        # fleet totals reconcile with the per-shard sums
        for counter in ("hits", "misses", "evictions"):
            manual = sum(entry["engine"]["cache"][counter]
                         for entry in stats["shards"])
            assert stats["totals"]["cache"][counter] == manual
        manual_cold = sum(entry["engine"]["cold_computes"]
                          for entry in stats["shards"])
        assert stats["totals"]["cold_computes"] == manual_cold
        manual_updates = sum(
            stream["stats"]["updates"]
            for entry in stats["shards"] for stream in entry["streams"])
        assert stats["totals"]["stream_counters"]["updates"] == manual_updates
        # every writer's deltas landed exactly once
        assert manual_updates == sum(
            len(deltas) for _, deltas in chains.values())

        # each engine's cache arithmetic is intact
        for entry in stats["shards"]:
            cache = entry["engine"]["cache"]
            backend = router.backend(entry["shard"])
            assert (cache["hits"] + cache["misses"]
                    == backend.engine.cache_stats.requests)

        # the router-side request counters cover the issued ops
        fleet = stats["fleet"]
        assert fleet["opens"] == len(chains)
        assert fleet["update_requests"] == sum(
            len(deltas) for _, deltas in chains.values())
        assert (fleet["score_requests"] + fleet["evict_requests"]
                == READERS * READER_OPS)

    def test_stats_snapshots_stay_consistent_under_load(
            self, shard_factory, soak_setup):
        """``stats()`` is one point in time, not a mutating-while-reading
        aggregation: every snapshot taken while writers/readers/openers
        run must be internally consistent.

        Regression test for the pre-lock implementation, where the fleet
        counters, the city table and the per-shard counters were each
        read at a different instant — ``cities_open`` could disagree
        with the ``cities`` dict, and counters could appear to move
        backwards between the pieces of one report.
        """
        chains, _ = soak_setup
        names = sorted(chains)
        router = FleetRouter(
            [shard_factory(f"snap{i}", cache_size=2) for i in range(3)],
            replication=2)
        # one city pre-opened so scores/updates have a target from the start
        first = names[0]
        router.open_stream(first, chains[first][0], fingerprints="content")

        errors = []
        snapshots = []
        done = threading.Event()
        start = threading.Barrier(4)

        def opener():
            start.wait()
            try:
                # re-opens reset a stream's counters, so the written city
                # is left alone — its shard-side `updates` must only grow
                for _ in range(3):
                    for name in names[1:]:
                        router.open_stream(name, chains[name][0],
                                           fingerprints="content")
            except Exception as error:  # pragma: no cover - failure path
                errors.append(f"opener: {error!r}")

        def writer():
            start.wait()
            try:
                for delta in chains[first][1]:
                    router.update_stream(first, delta)
                    router.score_stream(first)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(f"writer: {error!r}")

        def poller():
            start.wait()
            try:
                while not done.is_set():
                    snapshots.append(router.stats())
            except Exception as error:  # pragma: no cover - failure path
                errors.append(f"poller: {error!r}")

        threads = [threading.Thread(target=opener),
                   threading.Thread(target=writer),
                   threading.Thread(target=poller)]
        for thread in threads:
            thread.start()
        start.wait()
        for thread in threads[:2]:
            thread.join(timeout=120)
        done.set()
        threads[2].join(timeout=120)
        snapshots.append(router.stats())  # a final quiescent one
        assert not errors, errors
        assert snapshots

        previous_fleet = None
        for stats in snapshots:
            fleet = stats["fleet"]
            # the city table and its count come from the same instant
            assert fleet["cities_open"] == len(stats["cities"])
            # per-shard health flags agree with the down list
            for entry in stats["shards"]:
                assert entry["healthy"] == (entry["shard"]
                                            not in fleet["down"])
                assert "error" not in entry
            # a shard commits an update before the fleet counter advances,
            # so at any consistent instant the shard-side sum can only be
            # ahead of (or equal to) the fleet-side counter — never behind
            shard_updates = sum(
                stream["stats"]["updates"]
                for entry in stats["shards"] for stream in entry["streams"])
            assert shard_updates >= fleet["update_requests"]
            # fleet counters never move backwards between snapshots
            if previous_fleet is not None:
                for counter in ("opens", "score_requests", "update_requests",
                                "evict_requests", "requests"):
                    assert fleet[counter] >= previous_fleet[counter]
            previous_fleet = fleet

        final = snapshots[-1]["fleet"]
        assert final["opens"] == 1 + 3 * (len(names) - 1)
        assert final["update_requests"] == len(chains[first][1])
