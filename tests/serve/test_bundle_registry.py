"""Model bundles and the model registry."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import ModelRegistry, load_bundle, read_manifest, save_bundle
from repro.serve.bundle import (BUNDLE_FORMAT_VERSION, MANIFEST_FILENAME,
                                PARAMS_FILENAME, is_bundle_dir)


class TestBundle:
    def test_save_load_roundtrip_is_bit_exact(self, fitted_detector,
                                              tiny_graph_small_image,
                                              reference_scores, tmp_path):
        graph = tiny_graph_small_image
        directory = save_bundle(fitted_detector, tmp_path / "bundle", graph,
                                name="tiny", version="3")
        bundle = load_bundle(directory)
        assert bundle.name == "tiny" and bundle.version == "3"
        np.testing.assert_array_equal(bundle.detector.predict_proba(graph),
                                      reference_scores)

    def test_manifest_records_config_and_graph_metadata(self, fitted_detector,
                                                        tiny_graph_small_image,
                                                        fast_config, tmp_path):
        graph = tiny_graph_small_image
        directory = save_bundle(fitted_detector, tmp_path / "bundle", graph,
                                name="tiny", extra={"note": "unit test"})
        manifest = read_manifest(directory)
        assert manifest.format_version == BUNDLE_FORMAT_VERSION
        assert manifest.cmsf_config() == fast_config
        assert manifest.poi_dim == graph.poi_dim
        assert manifest.image_dim == graph.image_dim
        assert manifest.has_slave
        assert manifest.graph["fingerprint"] == graph.fingerprint()
        assert manifest.graph["num_nodes"] == graph.num_nodes
        assert manifest.extra == {"note": "unit test"}

    def test_unfitted_detector_cannot_be_bundled(self, tiny_graph_small_image,
                                                 fast_config, tmp_path):
        from repro.core import CMSFDetector
        with pytest.raises(RuntimeError, match="must be fitted"):
            save_bundle(CMSFDetector(fast_config), tmp_path / "bundle",
                        tiny_graph_small_image)

    def test_tampered_parameters_fail_integrity_check(self, fitted_detector,
                                                      tiny_graph_small_image,
                                                      tmp_path):
        directory = save_bundle(fitted_detector, tmp_path / "bundle",
                                tiny_graph_small_image, name="tiny")
        params_path = directory / PARAMS_FILENAME
        with np.load(params_path) as archive:
            state = {key: archive[key].copy() for key in archive.files}
        key = next(iter(state))
        state[key] = state[key] + 1.0
        np.savez(params_path, **state)
        with pytest.raises(ValueError, match="integrity"):
            load_bundle(directory)

    def test_unsupported_format_version_rejected(self, fitted_detector,
                                                 tiny_graph_small_image, tmp_path):
        directory = save_bundle(fitted_detector, tmp_path / "bundle",
                                tiny_graph_small_image, name="tiny")
        manifest_path = directory / MANIFEST_FILENAME
        payload = json.loads(manifest_path.read_text())
        payload["format_version"] = 999
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            read_manifest(directory)

    def test_non_bundle_directory_rejected(self, tmp_path):
        assert not is_bundle_dir(tmp_path)
        with pytest.raises(FileNotFoundError, match="not a model bundle"):
            load_bundle(tmp_path)


class TestModelRegistry:
    def test_publish_auto_increments_versions(self, fitted_detector,
                                              tiny_graph_small_image, tmp_path):
        registry = ModelRegistry(tmp_path)
        first = registry.publish(fitted_detector, tiny_graph_small_image, "city")
        second = registry.publish(fitted_detector, tiny_graph_small_image, "city")
        assert first.name == "1" and second.name == "2"
        assert registry.versions("city") == ["1", "2"]
        assert registry.resolve("city") == second

    def test_resolve_explicit_and_unknown_versions(self, model_registry):
        assert model_registry.resolve("tiny", "1").is_dir()
        with pytest.raises(KeyError, match="no version"):
            model_registry.resolve("tiny", "42")
        with pytest.raises(KeyError, match="not in the registry"):
            model_registry.resolve("ghost")

    def test_numeric_versions_order_numerically(self, fitted_detector,
                                                tiny_graph_small_image, tmp_path):
        registry = ModelRegistry(tmp_path)
        for version in ("2", "10", "1"):
            registry.publish(fitted_detector, tiny_graph_small_image, "city",
                             version=version)
        assert registry.versions("city") == ["1", "2", "10"]
        assert registry.resolve("city").name == "10"

    def test_duplicate_version_rejected(self, fitted_detector,
                                        tiny_graph_small_image, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish(fitted_detector, tiny_graph_small_image, "city", version="1")
        with pytest.raises(ValueError, match="already exists"):
            registry.publish(fitted_detector, tiny_graph_small_image, "city",
                             version="1")

    def test_unsafe_names_rejected(self, model_registry):
        with pytest.raises(ValueError, match="invalid model name"):
            model_registry.bundle_dir("../escape", "1")
        with pytest.raises(ValueError, match="invalid version"):
            model_registry.bundle_dir("fine", "../1")

    def test_unsafe_names_rejected_before_filesystem_access(self, model_registry):
        # lookups come straight from scoring requests: a crafted name must
        # fail validation, not walk directories outside the registry root
        with pytest.raises(ValueError, match="invalid model name"):
            model_registry.versions("../../etc")
        with pytest.raises(ValueError, match="invalid model name"):
            model_registry.resolve("tiny/")
        with pytest.raises(ValueError, match="invalid version"):
            model_registry.resolve("tiny", "../1")

    def test_entries_and_describe(self, model_registry):
        entries = model_registry.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["name"] == "tiny" and entry["version"] == "1"
        assert entry["size_bytes"] > 0
        description = model_registry.describe()
        assert "tiny" in description and "v1" in description

    def test_load_returns_scoring_bundle(self, model_registry,
                                         tiny_graph_small_image, reference_scores):
        bundle = model_registry.load("tiny")
        np.testing.assert_array_equal(
            bundle.detector.predict_proba(tiny_graph_small_image), reference_scores)
