"""Fuzz / property tests for the wire codec (`repro.serve.wire`).

Two properties are pinned down:

1. **round-trip fidelity** — seeded random graphs (across feature dtypes,
   degenerate shapes: no edges, one region, zero-width modalities) survive
   encode→decode bit-exactly under the npz encoding and exactly for
   float64 under the JSON encoding;
2. **clean failure** — malformed payloads (random mutations, corrupt
   base64, truncated archives, wrong-typed and ragged fields) always
   raise :class:`ValueError` with a message, never a numpy shape error,
   ``KeyError``, ``zipfile.BadZipFile`` or any other internal exception
   that a transport would report as a 500.
"""

from __future__ import annotations

import base64
import copy

import numpy as np
import pytest

from repro.serve.wire import (delta_from_payload, delta_to_payload,
                              graph_from_payload, graph_to_payload)
from repro.stream import GraphDelta
from repro.urg.graph import UrbanRegionGraph

GRAPH_ARRAY_FIELDS = ("edge_index", "x_poi", "x_img", "labels",
                      "labeled_mask", "ground_truth", "region_index",
                      "block_ids")


def random_graph(rng: np.random.Generator, num_nodes: int = None,
                 num_undirected: int = None, poi_dim: int = None,
                 image_dim: int = None, dtype=np.float64) -> UrbanRegionGraph:
    """A structurally valid random URG drawn from ``rng``."""
    n = int(rng.integers(1, 40)) if num_nodes is None else num_nodes
    poi_dim = int(rng.integers(0, 12)) if poi_dim is None else poi_dim
    image_dim = int(rng.integers(0, 12)) if image_dim is None else image_dim
    if poi_dim == 0 and image_dim == 0:
        poi_dim = 1
    max_pairs = n * (n - 1) // 2
    m = (int(rng.integers(0, min(max_pairs, 3 * n) + 1))
         if num_undirected is None else num_undirected)
    if m and n > 1:
        pairs = set()
        while len(pairs) < m:
            u, v = rng.integers(0, n, size=2)
            if u != v:
                pairs.add((int(min(u, v)), int(max(u, v))))
        undirected = np.array(sorted(pairs), dtype=np.int64).T
        edge_index = np.concatenate([undirected, undirected[::-1]], axis=1)
    else:
        edge_index = np.zeros((2, 0), dtype=np.int64)
    labels = rng.choice([-1, 0, 1], size=n).astype(np.int64)
    grid = (int(np.ceil(np.sqrt(n))) + 1, int(np.ceil(np.sqrt(n))) + 1)
    region_index = rng.choice(grid[0] * grid[1], size=n, replace=False).astype(np.int64)
    return UrbanRegionGraph(
        name=f"fuzz-{rng.integers(1 << 30)}",
        edge_index=edge_index,
        x_poi=rng.normal(size=(n, poi_dim)).astype(dtype),
        x_img=rng.normal(size=(n, image_dim)).astype(dtype),
        labels=labels,
        labeled_mask=(labels >= 0),
        ground_truth=rng.integers(0, 2, size=n).astype(np.int64),
        region_index=region_index,
        block_ids=(region_index // 5).astype(np.int64),
        grid_shape=grid,
        stats={"undirected_edges": edge_index.shape[1] // 2},
    )


def assert_graphs_equal(a: UrbanRegionGraph, b: UrbanRegionGraph,
                        exact_dtype: bool = True) -> None:
    assert a.name == b.name
    assert tuple(a.grid_shape) == tuple(b.grid_shape)
    for name in GRAPH_ARRAY_FIELDS:
        left, right = getattr(a, name), getattr(b, name)
        assert left.shape == right.shape, name
        assert np.array_equal(left, right), name
        if exact_dtype:
            assert left.dtype == right.dtype, name


# ----------------------------------------------------------------------
# round-trip properties
# ----------------------------------------------------------------------
class TestGraphRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_npz_round_trip_random_graphs(self, seed):
        graph = random_graph(np.random.default_rng(seed))
        restored = graph_from_payload(graph_to_payload(graph, encoding="npz"))
        assert_graphs_equal(graph, restored)

    @pytest.mark.parametrize("seed", range(4))
    def test_json_round_trip_random_graphs(self, seed):
        graph = random_graph(np.random.default_rng(100 + seed))
        restored = graph_from_payload(graph_to_payload(graph, encoding="json"))
        # JSON numbers repr-round-trip float64 exactly
        assert_graphs_equal(graph, restored, exact_dtype=False)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.float16])
    def test_npz_preserves_feature_dtype(self, dtype):
        graph = random_graph(np.random.default_rng(7), dtype=dtype)
        restored = graph_from_payload(graph_to_payload(graph))
        assert restored.x_poi.dtype == np.dtype(dtype)
        assert np.array_equal(graph.x_poi, restored.x_poi)

    @pytest.mark.parametrize("encoding", ["npz", "json"])
    def test_empty_edge_city(self, encoding):
        graph = random_graph(np.random.default_rng(1), num_nodes=5,
                             num_undirected=0)
        assert graph.num_edges == 0
        restored = graph_from_payload(graph_to_payload(graph, encoding=encoding))
        assert restored.num_edges == 0
        assert restored.edge_index.shape == (2, 0)

    @pytest.mark.parametrize("encoding", ["npz", "json"])
    def test_single_region_city(self, encoding):
        graph = random_graph(np.random.default_rng(2), num_nodes=1,
                             num_undirected=0)
        restored = graph_from_payload(graph_to_payload(graph, encoding=encoding))
        assert restored.num_nodes == 1

    def test_zero_width_modalities(self):
        for poi_dim, image_dim in ((0, 6), (6, 0)):
            graph = random_graph(np.random.default_rng(3), poi_dim=poi_dim,
                                 image_dim=image_dim)
            restored = graph_from_payload(graph_to_payload(graph))
            assert restored.poi_dim == poi_dim
            assert restored.image_dim == image_dim

    def test_all_accepted_edge_layouts_agree(self):
        graph = random_graph(np.random.default_rng(4), num_nodes=10,
                             num_undirected=6)
        payload = graph_to_payload(graph, encoding="json")
        native = graph_from_payload(payload)
        pairs = copy.deepcopy(payload)
        pairs["edge_index"] = np.asarray(payload["edge_index"]).T.tolist()
        flat = copy.deepcopy(payload)
        flat["edge_index"] = np.asarray(payload["edge_index"]).T.reshape(-1).tolist()
        for variant in (pairs, flat):
            assert np.array_equal(graph_from_payload(variant).edge_index,
                                  native.edge_index)

    def test_ambiguous_edge_layout_rejected(self):
        graph = random_graph(np.random.default_rng(5), num_nodes=8,
                             num_undirected=3)
        payload = graph_to_payload(graph, encoding="json")
        payload["edge_index"] = [[0, 1, 2], [1, 2, 0], [2, 0, 1]]  # (3, 3)
        with pytest.raises(ValueError, match="edge_index"):
            graph_from_payload(payload)


class TestDeltaRoundTrip:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("encoding", ["npz", "json"])
    def test_random_delta_round_trip(self, seed, encoding):
        rng = np.random.default_rng(seed)
        kwargs = {}
        if rng.random() < 0.7:
            rows = np.sort(rng.choice(50, size=rng.integers(1, 6), replace=False))
            kwargs.update(poi_rows=rows,
                          poi_values=rng.normal(size=(rows.size, 7)))
        if rng.random() < 0.5:
            kwargs.update(add_edges=np.array([[0, 1], [2, 3]]))
        if rng.random() < 0.5:
            kwargs.update(remove_regions=np.sort(
                rng.choice(50, size=3, replace=False)))
        delta = GraphDelta(kind=f"fuzz-{seed}", **kwargs)
        restored = delta_from_payload(delta_to_payload(delta, encoding=encoding))
        assert restored.kind == delta.kind
        assert set(restored.to_arrays()) == set(delta.to_arrays())
        for name, array in delta.to_arrays().items():
            assert np.array_equal(array, restored.to_arrays()[name]), name


# ----------------------------------------------------------------------
# malformed payloads must fail cleanly
# ----------------------------------------------------------------------
def assert_clean_value_error(decode, payload):
    """Decoding must raise ValueError with a message — nothing else."""
    with pytest.raises(ValueError) as excinfo:
        decode(payload)
    assert str(excinfo.value), "error message must not be empty"


class TestMalformedGraphPayloads:
    @pytest.fixture()
    def valid_json_payload(self):
        return graph_to_payload(random_graph(np.random.default_rng(0)),
                                encoding="json")

    @pytest.fixture()
    def valid_npz_payload(self):
        return graph_to_payload(random_graph(np.random.default_rng(0)))

    def test_non_dict_payloads(self):
        for junk in (None, 17, "graph", [1, 2, 3]):
            assert_clean_value_error(graph_from_payload, junk)

    def test_wrong_wire_version(self, valid_json_payload):
        payload = dict(valid_json_payload, wire_version=99)
        assert_clean_value_error(graph_from_payload, payload)

    def test_unknown_encoding(self, valid_json_payload):
        payload = dict(valid_json_payload, encoding="msgpack")
        assert_clean_value_error(graph_from_payload, payload)

    def test_missing_fields(self, valid_json_payload):
        for name in ("name", "edge_index", "x_poi", "labels", "grid_shape"):
            payload = dict(valid_json_payload)
            del payload[name]
            assert_clean_value_error(graph_from_payload, payload)

    def test_corrupt_base64(self, valid_npz_payload):
        payload = dict(valid_npz_payload, npz_base64="@@@not-base64@@@")
        assert_clean_value_error(graph_from_payload, payload)

    def test_valid_base64_of_garbage(self, valid_npz_payload):
        garbage = base64.b64encode(b"these are not npz bytes").decode("ascii")
        payload = dict(valid_npz_payload, npz_base64=garbage)
        assert_clean_value_error(graph_from_payload, payload)

    def test_truncated_archive(self, valid_npz_payload):
        raw = base64.b64decode(valid_npz_payload["npz_base64"])
        truncated = base64.b64encode(raw[:len(raw) // 2]).decode("ascii")
        payload = dict(valid_npz_payload, npz_base64=truncated)
        assert_clean_value_error(graph_from_payload, payload)

    def test_row_count_mismatch_is_value_error(self, valid_json_payload):
        payload = copy.deepcopy(valid_json_payload)
        payload["labels"] = payload["labels"][:-1]
        assert_clean_value_error(graph_from_payload, payload)

    def test_edge_referencing_missing_node(self, valid_json_payload):
        payload = copy.deepcopy(valid_json_payload)
        n = len(payload["labels"])
        payload["edge_index"] = [[0, n + 5], [1, 0]]
        assert_clean_value_error(graph_from_payload, payload)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_field_mutations(self, valid_json_payload, seed):
        """Randomly corrupt one field; decode must raise clean ValueError
        (or still decode, when the mutation happens to stay valid)."""
        rng = np.random.default_rng(1000 + seed)
        payload = copy.deepcopy(valid_json_payload)
        victim = str(rng.choice([k for k in payload if k != "encoding"]))
        mutation = rng.choice(["drop", "string", "ragged", "negative"])
        if mutation == "drop":
            del payload[victim]
        elif mutation == "string":
            payload[victim] = "corrupted"
        elif mutation == "ragged":
            payload[victim] = [[1, 2], [3]]
        else:
            payload[victim] = [[-9]]
        try:
            graph_from_payload(payload)
        except ValueError:
            pass  # the contract: ValueError or a valid decode, nothing else

    def test_json_wrong_typed_scalars(self, valid_json_payload):
        payload = dict(valid_json_payload, grid_shape="not-a-shape")
        assert_clean_value_error(graph_from_payload, payload)


class TestMalformedDeltaPayloads:
    @pytest.fixture()
    def valid_payload(self):
        delta = GraphDelta(poi_rows=[0, 1], poi_values=np.zeros((2, 3)))
        return delta_to_payload(delta, encoding="json")

    def test_non_dict_payloads(self):
        for junk in (None, [], "delta", 3.5):
            assert_clean_value_error(delta_from_payload, junk)

    def test_wrong_wire_version(self, valid_payload):
        assert_clean_value_error(delta_from_payload,
                                 dict(valid_payload, wire_version=0))

    def test_unknown_encoding(self, valid_payload):
        assert_clean_value_error(delta_from_payload,
                                 dict(valid_payload, encoding="yaml"))

    def test_corrupt_base64(self):
        payload = {"wire_version": 1, "encoding": "npz", "npz_base64": "!!"}
        assert_clean_value_error(delta_from_payload, payload)

    def test_non_string_base64(self):
        for junk in (123, None, ["a"], {"b": 1}):
            payload = {"wire_version": 1, "encoding": "npz",
                       "npz_base64": junk}
            assert_clean_value_error(delta_from_payload, payload)
            graph_payload = {"wire_version": 1, "encoding": "npz",
                             "npz_base64": junk}
            assert_clean_value_error(graph_from_payload, graph_payload)

    def test_garbage_archive(self):
        payload = {"wire_version": 1, "encoding": "npz",
                   "npz_base64": base64.b64encode(b"junk").decode("ascii")}
        assert_clean_value_error(delta_from_payload, payload)

    def test_ragged_field(self, valid_payload):
        payload = dict(valid_payload, poi_values=[[1.0], [1.0, 2.0]])
        assert_clean_value_error(delta_from_payload, payload)

    def test_inconsistent_patch(self, valid_payload):
        payload = dict(valid_payload)
        del payload["poi_values"]
        assert_clean_value_error(delta_from_payload, payload)

    def test_float_rows_rejected(self, valid_payload):
        payload = dict(valid_payload, poi_rows=[0.25, 1.75])
        assert_clean_value_error(delta_from_payload, payload)

    def test_bad_edge_shape(self, valid_payload):
        payload = dict(valid_payload, add_edges=[[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert_clean_value_error(delta_from_payload, payload)
