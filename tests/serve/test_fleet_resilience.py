"""Fleet-level resilience: breakers, probes, degraded mode, budgets.

The regression this file exists for (PR 9 satellite): a shard that died
and then recovered used to stay excluded until someone called
``health()`` explicitly — the binary ``_down`` set had no path back.
With per-shard circuit breakers and the background half-open prober,
kill → recover → automatic revival must happen with *no* health call.
"""

from __future__ import annotations

import time

import pytest

from repro.serve import (AdmissionConfig, BreakerConfig, ChaosShard, Deadline,
                         DeadlineExceeded, FleetError, FleetRouter,
                         ResilienceConfig, ShedError, deadline_scope)
from repro.serve.client import ScoringServiceError
from repro.serve.fleet import ShardFailure, is_shard_failure

SHARD_IDS = ["s0", "s1", "s2"]

#: fast breaker + prober so revival happens in test time
FAST_RECOVERY = BreakerConfig(backoff_initial_s=0.05, backoff_max_s=0.5,
                              jitter=0.0)


def _build_fleet(shard_factory, victim, resilience, **chaos_kwargs):
    """A 3-shard fleet with ``victim`` wrapped in a ChaosShard."""
    shards, chaos = [], None
    for shard_id in SHARD_IDS:
        shard = shard_factory(shard_id)
        if shard_id == victim:
            chaos = ChaosShard(shard, **chaos_kwargs)
            shard = chaos
        shards.append(shard)
    return FleetRouter(shards, replication=2, resilience=resilience), chaos


def _open_city_on_victim(router, fleet_cities):
    """Open every city; return one whose active shard we can victimise."""
    actives = {}
    for name, graph in fleet_cities.items():
        payload = router.open_stream(name, graph)
        actives[name] = payload["shard"]
    return actives


def _wait_until(predicate, timeout_s=10.0, poll_s=0.02):
    give_up = time.monotonic() + timeout_s
    while time.monotonic() < give_up:
        if predicate():
            return True
        time.sleep(poll_s)
    return predicate()


# ----------------------------------------------------------------------
# chaos injection modes
# ----------------------------------------------------------------------
class TestChaosModes:
    def test_fixed_latency_slows_every_call(self, shard_factory):
        chaos = ChaosShard(shard_factory("lat"))
        chaos.set_latency(0.01)
        started = time.perf_counter()
        chaos.healthz()
        assert time.perf_counter() - started >= 0.01
        assert chaos.slow_calls == 1
        chaos.clear_chaos()
        chaos.healthz()
        assert chaos.slow_calls == 1  # cleared: no longer slow

    def test_ramp_grows_the_delay_per_call(self, shard_factory):
        chaos = ChaosShard(shard_factory("ramp"))
        chaos.healthz()  # pre-ramp call: never slow
        chaos.set_ramp(0.002)
        for _ in range(3):
            chaos.healthz()
        assert chaos.slow_calls == 3
        started = time.perf_counter()
        chaos.healthz()  # 4th ramped call: >= 4 * step
        assert time.perf_counter() - started >= 0.008

    def test_flaky_failures_are_seeded_and_deterministic(self, shard_factory):
        def failure_pattern(seed):
            chaos = ChaosShard(shard_factory(f"flaky-{seed}"), seed=seed)
            chaos.set_flaky(0.5)
            pattern = []
            for _ in range(20):
                try:
                    chaos.healthz()
                    pattern.append(False)
                except ShardFailure:
                    pattern.append(True)
            return pattern, chaos.flaky_failures

        first, fails_a = failure_pattern(7)
        second, fails_b = failure_pattern(7)
        assert first == second
        assert fails_a == fails_b == sum(first)
        assert 0 < fails_a < 20  # actually intermittent, not dead/healthy

    def test_clear_chaos_restores_passthrough(self, shard_factory):
        chaos = ChaosShard(shard_factory("clear"))
        chaos.fail()
        with pytest.raises(ShardFailure):
            chaos.healthz()
        chaos.set_flaky(1.0)
        chaos.clear_chaos()
        assert chaos.healthz()["status"] == "ok"
        assert not chaos.failing


# ----------------------------------------------------------------------
# shed-vs-shard-failure classification
# ----------------------------------------------------------------------
class TestFailureClassification:
    @pytest.mark.parametrize("error,fatal", [
        (ShardFailure("dead"), True),
        (TimeoutError("hung"), True),
        (ConnectionError("refused"), True),
        (ScoringServiceError(0, "transport"), True),
        (ScoringServiceError(500, "boom"), True),
        # overload-control answers come from a *healthy* shard protecting
        # itself; failing them over would amplify the overload
        (ScoringServiceError(503, "shed", retry_after_s=0.05), False),
        (ScoringServiceError(504, "deadline"), False),
        (ShedError("local shed"), False),
        (DeadlineExceeded("late"), False),
        # request problems must propagate, never fail over
        (ScoringServiceError(400, "bad delta"), False),
        (ScoringServiceError(404, "no stream"), False),
        (ValueError("malformed"), False),
    ], ids=lambda x: repr(x) if isinstance(x, bool) else type(x).__name__ +
        str(getattr(x, "status", "")))
    def test_classification(self, error, fatal):
        assert is_shard_failure(error) is fatal

    def test_remote_shed_errors_know_they_are_sheds(self):
        assert ScoringServiceError(503, "x").shed
        assert ScoringServiceError(504, "x").shed
        assert not ScoringServiceError(500, "x").shed


# ----------------------------------------------------------------------
# the satellite regression: kill -> recover -> automatic revival
# ----------------------------------------------------------------------
class TestAutoRevival:
    def test_recovered_shard_rejoins_without_a_health_call(
            self, shard_factory, fleet_cities):
        resilience = ResilienceConfig(breaker=FAST_RECOVERY,
                                      probe_interval_s=0.05)
        # victimise whichever shard ends up active for the first city
        probe_router, _ = _build_fleet(shard_factory, "none", resilience=None)
        actives = _open_city_on_victim(probe_router, fleet_cities)
        probe_router.close()
        name = next(iter(fleet_cities))
        victim = actives[name]

        router, chaos = _build_fleet(shard_factory, victim, resilience)
        try:
            _open_city_on_victim(router, fleet_cities)
            chaos.fail()
            payload = router.score_stream(name)  # fails over, not out
            assert payload["shard"] != victim
            assert victim in router.down_shards()

            chaos.recover()
            # the regression: NO router.health() here — the background
            # half-open prober must revive the shard on its own
            assert _wait_until(lambda: not router.down_shards()), \
                f"{victim} never auto-revived: {router.resilience_status()}"

            breaker = router.resilience_status()["breakers"][victim]
            assert breaker["state"] == "closed"
            assert breaker["trips"] >= 1
            assert breaker["probes"] >= 1
            # the full cycle shows in the transition log
            transitions = router.breaker_transitions(victim)
            assert ("closed", "open") in transitions
            assert ("open", "half_open") in transitions
            assert ("half_open", "closed") in transitions
            # and the revived shard serves again once it is active
            assert router.score_stream(name)["stream"] == name
        finally:
            router.close()

    def test_shard_that_stays_dead_stays_excluded(self, shard_factory,
                                                  fleet_cities):
        resilience = ResilienceConfig(breaker=FAST_RECOVERY,
                                      probe_interval_s=0.05)
        router, chaos = _build_fleet(shard_factory, SHARD_IDS[0], resilience)
        try:
            _open_city_on_victim(router, fleet_cities)
            chaos.fail()
            router.health()
            assert SHARD_IDS[0] in router.down_shards()
            time.sleep(0.3)  # several probe cycles, all failing
            assert SHARD_IDS[0] in router.down_shards()
            status = router.resilience_status()["breakers"][SHARD_IDS[0]]
            assert status["state"] == "open"
        finally:
            router.close()


# ----------------------------------------------------------------------
# gray failure: the shard answers, but uselessly late
# ----------------------------------------------------------------------
class TestGrayFailure:
    def test_slow_shard_trips_on_latency_and_recovers(self, shard_factory,
                                                      fleet_cities):
        resilience = ResilienceConfig(
            breaker=BreakerConfig(latency_threshold_s=0.01,
                                  latency_violations=2,
                                  backoff_initial_s=0.05,
                                  backoff_max_s=0.5, jitter=0.0),
            probe_interval_s=0.05)
        probe_router, _ = _build_fleet(shard_factory, "none", resilience=None)
        actives = _open_city_on_victim(probe_router, fleet_cities)
        probe_router.close()
        name = next(iter(fleet_cities))
        victim = actives[name]

        router, chaos = _build_fleet(shard_factory, victim, resilience)
        try:
            _open_city_on_victim(router, fleet_cities)
            chaos.set_latency(0.05)
            # the shard still answers *correctly* — only late
            for _ in range(2):
                assert router.score_stream(name)["stream"] == name
            assert chaos.failed_calls == 0
            assert chaos.slow_calls >= 2
            assert victim in router.down_shards(), \
                "latency alone should have tripped the breaker"
            # next score routes around the slow shard
            payload = router.score_stream(name)
            assert payload["shard"] != victim
            assert router.fleet_stats.failovers >= 1

            chaos.clear_chaos()
            assert _wait_until(lambda: not router.down_shards()), \
                "recovered slow shard never auto-revived"
        finally:
            router.close()


# ----------------------------------------------------------------------
# degraded mode: stale answers beat no answers
# ----------------------------------------------------------------------
class TestDegradedMode:
    @pytest.fixture()
    def degraded_router(self, shard_factory, fleet_cities):
        resilience = ResilienceConfig(
            admission=AdmissionConfig(max_concurrency=1, max_queue=0,
                                      queue_timeout_s=0.05),
            degraded=True, degraded_max_version_lag=8,
            probe_interval_s=None)
        router = FleetRouter([shard_factory(sid) for sid in SHARD_IDS],
                             replication=2, resilience=resilience)
        for name, graph in fleet_cities.items():
            router.open_stream(name, graph)
        yield router
        router.close()

    def test_shed_score_serves_bounded_stale_answer(self, degraded_router,
                                                    fleet_cities):
        name = next(iter(fleet_cities))
        fresh = degraded_router.score_stream(name)  # fills the stale cache
        # occupy the only admission slot, then score: shed -> degraded
        with degraded_router._admission.admit():
            payload = degraded_router.score_stream(name)
        assert payload["degraded"] is True
        assert payload["staleness"] == 0
        assert payload["probabilities"] == fresh["probabilities"]
        assert degraded_router.fleet_stats.sheds == 1
        assert degraded_router.fleet_stats.degraded_served == 1
        cache = degraded_router.resilience_status()["stale_cache"]
        assert cache["served"] == 1

    def test_shed_without_cached_answer_still_sheds(self, degraded_router,
                                                    fleet_cities):
        name = next(iter(fleet_cities))  # never scored: cache is cold
        with degraded_router._admission.admit():
            with pytest.raises(ShedError) as err:
                degraded_router.score_stream(name)
        assert err.value.reason == "queue_full"
        assert err.value.retry_after_s > 0

    def test_deadline_shed_never_gets_a_stale_answer(self, degraded_router,
                                                     fleet_cities):
        name = next(iter(fleet_cities))
        degraded_router.score_stream(name)  # cache is warm
        expired = Deadline(expires_at=time.monotonic() - 1.0)
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceeded):
                degraded_router.score_stream(name)


# ----------------------------------------------------------------------
# retry budget: failovers are funded, storms are not
# ----------------------------------------------------------------------
class TestRetryBudget:
    def test_dry_budget_denies_the_failover_retry(self, shard_factory,
                                                  fleet_cities):
        # a bucket that can never afford one retry
        resilience = ResilienceConfig(breaker=FAST_RECOVERY,
                                      retry_budget_capacity=0.5,
                                      probe_interval_s=None)
        probe_router, _ = _build_fleet(shard_factory, "none", resilience=None)
        actives = _open_city_on_victim(probe_router, fleet_cities)
        probe_router.close()
        name = next(iter(fleet_cities))
        victim = actives[name]

        router, chaos = _build_fleet(shard_factory, victim, resilience)
        try:
            _open_city_on_victim(router, fleet_cities)
            chaos.fail()
            with pytest.raises(FleetError, match="retry budget exhausted"):
                router.score_stream(name)
            assert router.fleet_stats.retries_denied == 1
            budget = router.resilience_status()["retry_budget"]
            assert budget["retries_denied"] == 1
            assert budget["balance"] >= 0.0
        finally:
            router.close()

    def test_funded_budget_allows_the_failover(self, shard_factory,
                                               fleet_cities):
        resilience = ResilienceConfig(breaker=FAST_RECOVERY,
                                      probe_interval_s=None)
        probe_router, _ = _build_fleet(shard_factory, "none", resilience=None)
        actives = _open_city_on_victim(probe_router, fleet_cities)
        probe_router.close()
        name = next(iter(fleet_cities))
        victim = actives[name]

        router, chaos = _build_fleet(shard_factory, victim, resilience)
        try:
            _open_city_on_victim(router, fleet_cities)
            chaos.fail()
            payload = router.score_stream(name)
            assert payload["shard"] != victim
            assert router.resilience_status()["retry_budget"][
                "retries_allowed"] >= 1
        finally:
            router.close()


# ----------------------------------------------------------------------
# deadline propagation through the router
# ----------------------------------------------------------------------
class TestFleetDeadlines:
    @pytest.fixture()
    def plain_router(self, shard_factory, fleet_cities):
        router = FleetRouter(
            [shard_factory(sid) for sid in SHARD_IDS], replication=2,
            resilience=ResilienceConfig(probe_interval_s=None))
        for name, graph in fleet_cities.items():
            router.open_stream(name, graph)
        yield router
        router.close()

    def test_expired_deadline_sheds_before_compute(self, plain_router,
                                                   fleet_cities, fleet_trace):
        name = next(iter(fleet_cities))
        delta = next(op.delta for op in fleet_trace.ops
                     if op.op == "update" and op.city == name)
        expired = Deadline(expires_at=time.monotonic() - 1.0)
        before = plain_router.fleet_stats.score_requests
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceeded):
                plain_router.score_stream(name)
            with pytest.raises(DeadlineExceeded):
                plain_router.update_stream(name, delta)
            with pytest.raises(DeadlineExceeded):
                plain_router.evict_stream(name)
        assert plain_router.fleet_stats.sheds == 3
        assert plain_router.fleet_stats.score_requests == before
        # the shed update was never applied: version chain intact
        assert plain_router.cities()[name]["version"] == 0

    def test_generous_deadline_is_invisible(self, plain_router, fleet_cities):
        name = next(iter(fleet_cities))
        with deadline_scope(Deadline.after_ms(60_000)):
            payload = plain_router.score_stream(name)
        assert payload["stream"] == name
        assert plain_router.fleet_stats.sheds == 0


# ----------------------------------------------------------------------
# observability surfaces
# ----------------------------------------------------------------------
class TestResilienceReporting:
    def test_healthz_and_stats_carry_the_resilience_block(self, shard_factory,
                                                          fleet_cities):
        router = FleetRouter(
            [shard_factory(sid) for sid in SHARD_IDS], replication=2,
            resilience=ResilienceConfig(probe_interval_s=None))
        try:
            health = router.healthz()
            assert set(health["resilience"]["breakers"]) == set(SHARD_IDS)
            for state in health["resilience"]["breakers"].values():
                assert state["state"] == "closed"
            assert health["resilience"]["retry_budget"]["balance"] == 16.0
            report = router.stats()
            assert report["resilience"]["retry_budget"]["requests"] == 0
        finally:
            router.close()
