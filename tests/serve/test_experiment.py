"""The config-sweep experiment runner: schema pinned, deterministic.

``EXPERIMENT.json`` is a published artifact (CI uploads it per run), so
its shape is a contract: the schema-pinning tests here fail loudly when
a key is renamed or dropped, and the determinism test asserts that two
sweeps over the same trace agree on everything except wall-clock
measurements.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (EXPERIMENT_SCHEMA_VERSION, ExperimentConfig,
                         format_experiment_table, run_experiment, save_trace,
                         summarize_metrics)
from repro.cli.main import main
from repro.obs import parse_prometheus_text

SWEEP = ExperimentConfig(fleet_sizes=(1, 2), replications=(2,),
                         cache_size=4)

REPORT_KEYS = {"schema_version", "experiment", "model", "grid", "traces",
               "cells"}
CELL_KEYS = {"cell", "trace", "fleet_size", "replication", "replay",
             "metrics", "bit_identical_to_baseline", "max_score_diff"}
METRICS_KEYS = {"http", "fleet", "cache", "streams"}
LATENCY_KEYS = {"count", "mean_ms", "p50_ms", "p95_ms", "p99_ms"}

# wall-clock measurements: present in every report, equal in none
_TIMING_KEYS = frozenset({"elapsed_s", "ops_per_second", "mean_ms",
                          "p50_ms", "p95_ms", "p99_ms"})


def scrub_timings(value):
    """Drop the wall-clock fields so two runs can be compared exactly."""
    if isinstance(value, dict):
        return {key: scrub_timings(child) for key, child in value.items()
                if key not in _TIMING_KEYS}
    if isinstance(value, list):
        return [scrub_timings(child) for child in value]
    return value


@pytest.fixture(scope="module")
def report(model_registry, fleet_trace):
    return run_experiment(model_registry.resolve("tiny"), [fleet_trace],
                          SWEEP, model="tiny")


class TestReportSchema:
    def test_top_level_schema_is_pinned(self, report, fleet_trace):
        assert set(report) == REPORT_KEYS
        assert report["schema_version"] == EXPERIMENT_SCHEMA_VERSION == 1
        assert report["experiment"] == "fleet_config_sweep"
        assert report["model"] == "tiny"
        assert report["grid"]["fleet_sizes"] == [1, 2]
        assert report["grid"]["replications"] == [2]
        assert report["grid"]["traces"] == [fleet_trace.name]
        assert set(report["traces"]) == {fleet_trace.name}
        json.dumps(report)  # the whole report is JSON-serialisable

    def test_cell_schema_is_pinned(self, report, fleet_trace):
        # replication clamps to the fleet size, so the grid yields
        # exactly f1r1 and f2r2
        assert [cell["cell"] for cell in report["cells"]] == [
            f"{fleet_trace.name}/f1r1", f"{fleet_trace.name}/f2r2"]
        for cell in report["cells"]:
            assert set(cell) == CELL_KEYS
            assert set(cell["metrics"]) == METRICS_KEYS
            assert set(cell["metrics"]["fleet"]["latency"]) == LATENCY_KEYS
            assert set(cell["replay"]) == {"trace", "ops", "cities",
                                           "elapsed_s", "ops_per_second"}

    def test_cells_measure_real_traffic(self, report, fleet_trace):
        ops = fleet_trace.summary()
        for cell in report["cells"]:
            metrics = cell["metrics"]
            # an in-process fleet never sees HTTP traffic
            assert metrics["http"]["requests"] == 0
            assert metrics["fleet"]["requests"]["open"] == ops["cities"]
            assert metrics["fleet"]["requests"]["score"] == ops["score"]
            assert metrics["fleet"]["requests"]["update"] == ops["update"]
            assert metrics["fleet"]["failovers"] == 0
            assert metrics["fleet"]["shards_healthy"] == cell["fleet_size"]
            latency = metrics["fleet"]["latency"]
            assert latency["count"] == sum(metrics["fleet"]["requests"]
                                           .values())
            # percentiles come from real buckets and are ordered
            assert 0 < latency["p50_ms"] <= latency["p95_ms"] \
                <= latency["p99_ms"]
            cache = metrics["cache"]
            assert cache["hits"] + cache["misses"] > 0
            assert cache["hit_rate"] == pytest.approx(
                cache["hits"] / (cache["hits"] + cache["misses"]), abs=1e-4)
            assert metrics["streams"]["updates"] == ops["update"]
            assert (sum(metrics["streams"]["updates_by_mode"].values())
                    == ops["update"])

    def test_cells_are_bit_identical_to_baseline(self, report):
        for cell in report["cells"]:
            assert cell["bit_identical_to_baseline"] is True
            assert cell["max_score_diff"] == 0.0

    def test_two_sweeps_agree_outside_wall_clock(self, report,
                                                 model_registry,
                                                 fleet_trace):
        again = run_experiment(model_registry.resolve("tiny"),
                               [fleet_trace], SWEEP, model="tiny")
        assert scrub_timings(again) == scrub_timings(report)

    def test_degenerate_grids_deduplicate_after_clamping(self,
                                                         model_registry,
                                                         fleet_trace):
        config = ExperimentConfig(fleet_sizes=(1,), replications=(1, 2, 3),
                                  cache_size=4, verify_identical=False)
        report = run_experiment(model_registry.resolve("tiny"),
                                [fleet_trace], config)
        assert len(report["cells"]) == 1
        cell = report["cells"][0]
        assert cell["replication"] == 1
        assert "bit_identical_to_baseline" not in cell

    def test_table_renders_every_cell(self, report):
        table = format_experiment_table(report)
        for cell in report["cells"]:
            assert cell["cell"] in table
        assert "p95 ms" in table and "hit rate" in table


class TestSummarizeMetrics:
    def test_empty_scrape_summarises_gracefully(self):
        summary = summarize_metrics(parse_prometheus_text(""))
        assert summary["http"]["requests"] == 0
        assert summary["fleet"]["requests"] == {}
        assert summary["fleet"]["latency"]["count"] == 0
        assert summary["fleet"]["latency"]["p95_ms"] is None
        assert summary["cache"]["hit_rate"] is None
        assert summary["streams"]["updates_by_mode"] == {}


class TestExperimentCli:
    def test_experiment_subcommand_writes_report(self, model_registry,
                                                 fleet_trace, tmp_path,
                                                 capsys):
        trace_path = save_trace(fleet_trace, tmp_path / "trace.npz")
        out = tmp_path / "EXPERIMENT.json"
        exit_code = main([
            "experiment", "--registry", str(model_registry.root),
            "--model", "tiny", "--trace", str(trace_path),
            "--fleet-sizes", "1,2", "--replications", "2",
            "--cache-size", "4", "--output", str(out)])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "fleet config sweep" in captured
        report = json.loads(out.read_text())
        assert report["schema_version"] == EXPERIMENT_SCHEMA_VERSION
        assert {cell["cell"] for cell in report["cells"]} == {
            f"{fleet_trace.name}/f1r1", f"{fleet_trace.name}/f2r2"}
        assert all(cell["bit_identical_to_baseline"]
                   for cell in report["cells"])
