"""The inference engine: caching, micro-batching, concurrency."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.serve import InferenceEngine


@pytest.fixture()
def engine(model_registry):
    return InferenceEngine.from_bundle(model_registry.load("tiny"))


class TestCaching:
    def test_cold_then_cached_scores_identical(self, engine,
                                               tiny_graph_small_image,
                                               reference_scores):
        first = engine.score(tiny_graph_small_image)
        second = engine.score(tiny_graph_small_image)
        assert not first.cache_hit and second.cache_hit
        np.testing.assert_array_equal(first.probabilities, reference_scores)
        np.testing.assert_array_equal(second.probabilities, reference_scores)
        assert engine.cache_stats.hits == 1
        assert engine.cache_stats.misses == 1
        assert engine.cache_stats.hit_rate == 0.5

    def test_modified_graph_misses_cache(self, engine, tiny_graph_small_image):
        engine.score(tiny_graph_small_image)
        labels = tiny_graph_small_image.labels.copy()
        labels[int(np.flatnonzero(labels == 1)[0])] = 0
        changed = tiny_graph_small_image.with_labels(
            labels, tiny_graph_small_image.labeled_mask)
        result = engine.score(changed)
        assert not result.cache_hit
        assert engine.cache_stats.misses == 2

    def test_lru_eviction(self, model_registry, tiny_graph_small_image):
        engine = InferenceEngine.from_bundle(model_registry.load("tiny"),
                                             cache_size=1)
        other = replace(tiny_graph_small_image, name="renamed")
        engine.score(tiny_graph_small_image)
        engine.score(other)
        assert engine.cache_stats.evictions == 1
        assert not engine.score(tiny_graph_small_image).cache_hit

    def test_cache_disabled(self, model_registry, tiny_graph_small_image):
        engine = InferenceEngine.from_bundle(model_registry.load("tiny"),
                                             cache_size=0)
        engine.score(tiny_graph_small_image)
        assert not engine.score(tiny_graph_small_image).cache_hit

    def test_warm_prepopulates(self, engine, tiny_graph_small_image):
        fingerprint = engine.warm(tiny_graph_small_image)
        result = engine.score(tiny_graph_small_image)
        assert result.cache_hit
        assert result.fingerprint == fingerprint


class TestMicroBatching:
    def test_unchunked_path_is_bit_identical(self, model_registry,
                                             tiny_graph_small_image,
                                             reference_scores):
        # default batch_size (2048) exceeds the tiny graph: monolithic path
        engine = InferenceEngine.from_bundle(model_registry.load("tiny"))
        np.testing.assert_array_equal(engine.predict_proba(tiny_graph_small_image),
                                      reference_scores)

    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_chunked_scores_match_to_roundoff(self, model_registry,
                                              tiny_graph_small_image,
                                              reference_scores, batch_size):
        # chunk shape flips BLAS kernel blocking, so exactness is float64
        # round-off, not bit-for-bit (see InferenceEngine._cold_scores)
        engine = InferenceEngine.from_bundle(model_registry.load("tiny"),
                                             batch_size=batch_size)
        np.testing.assert_allclose(engine.predict_proba(tiny_graph_small_image),
                                   reference_scores, rtol=1e-12, atol=1e-13)

    def test_chunked_scores_reproducible_for_fixed_batch(self, model_registry,
                                                         tiny_graph_small_image):
        engine = InferenceEngine.from_bundle(model_registry.load("tiny"),
                                             batch_size=17, cache_size=0)
        first = engine.predict_proba(tiny_graph_small_image)
        second = engine.predict_proba(tiny_graph_small_image)
        np.testing.assert_array_equal(first, second)

    def test_master_only_batched_scores(self, tiny_graph_small_image,
                                        fast_config, tmp_path):
        from repro.core import CMSFDetector
        from repro.serve import save_bundle, load_bundle

        graph = tiny_graph_small_image
        config = fast_config.with_overrides(use_gate=False)
        detector = CMSFDetector(config).fit(graph, graph.labeled_indices())
        reference = detector.predict_proba(graph)
        bundle = load_bundle(save_bundle(detector, tmp_path / "b", graph, name="m"))
        engine = InferenceEngine.from_bundle(bundle, batch_size=17)
        np.testing.assert_allclose(engine.predict_proba(graph), reference,
                                   rtol=1e-12, atol=1e-13)

    def test_invalid_batch_size_rejected(self, model_registry):
        with pytest.raises(ValueError, match="batch_size"):
            InferenceEngine.from_bundle(model_registry.load("tiny"), batch_size=0)


class TestScoring:
    def test_region_subset(self, engine, tiny_graph_small_image, reference_scores):
        result = engine.score(tiny_graph_small_image, regions=[5, 0, 17])
        np.testing.assert_array_equal(result.probabilities,
                                      reference_scores[[5, 0, 17]])
        np.testing.assert_array_equal(result.regions, [5, 0, 17])

    def test_region_out_of_range(self, engine, tiny_graph_small_image):
        with pytest.raises(ValueError, match="out of range"):
            engine.score(tiny_graph_small_image, regions=[10_000])

    def test_non_integer_regions_rejected(self, engine, tiny_graph_small_image):
        with pytest.raises(ValueError, match="integer node indices"):
            engine.score(tiny_graph_small_image, regions=[1.9])
        with pytest.raises(ValueError, match="regions"):
            engine.score(tiny_graph_small_image, regions=["a"])
        # empty selections are fine
        result = engine.score(tiny_graph_small_image, regions=[])
        assert result.probabilities.size == 0

    def test_preprocessing_mismatch_reported_clearly(self, engine, tiny_graph):
        # tiny_graph keeps the full raw image features while the bundle was
        # trained on the reduced 32-d variant: the engine must name the
        # mismatch instead of failing inside the encoder
        with pytest.raises(ValueError, match=r"image_dim \d+ != 32"):
            engine.score(tiny_graph)

    def test_top_percent_shortlist(self, engine, tiny_graph_small_image,
                                   reference_scores):
        result = engine.score(tiny_graph_small_image, top_percent=5.0)
        budget = max(1, int(round(tiny_graph_small_image.num_nodes * 0.05)))
        assert result.selected.size == budget
        expected = np.argsort(-reference_scores, kind="stable")[:budget]
        np.testing.assert_array_equal(np.sort(result.selected), np.sort(expected))

    def test_invalid_top_percent(self, engine, tiny_graph_small_image):
        with pytest.raises(ValueError, match="top_percent"):
            engine.score(tiny_graph_small_image, top_percent=0)

    def test_predict_threshold(self, engine, tiny_graph_small_image,
                               reference_scores):
        predictions = engine.predict(tiny_graph_small_image, threshold=0.5)
        np.testing.assert_array_equal(predictions,
                                      (reference_scores >= 0.5).astype(np.int64))


class TestConcurrency:
    def test_score_many_in_order_and_consistent(self, engine,
                                                tiny_graph_small_image,
                                                reference_scores):
        other = replace(tiny_graph_small_image, name="renamed")
        graphs = [tiny_graph_small_image, other] * 3
        results = engine.score_many(graphs)
        assert len(results) == 6
        for result in results:
            np.testing.assert_array_equal(result.probabilities, reference_scores)
        fingerprints = {result.fingerprint for result in results}
        assert len(fingerprints) == 2
        # concurrent duplicates are deduplicated: only one forward pass per
        # unique fingerprint regardless of request interleaving
        assert engine.cold_computes == 2
        assert engine.cache_stats.requests == 6

    def test_score_many_empty(self, engine):
        assert engine.score_many([]) == []
