"""Concurrent clients against a sharded fleet (satellite of the load PR).

M worker threads fire mixed score/update/evict traffic at a 3-shard
:class:`~repro.serve.fleet.FleetRouter` through the open-loop driver.
Two invariants must hold simultaneously:

* every per-city score trajectory is bit-identical (sha256 digests) to a
  serial single-shard oracle — concurrency and sharding are invisible in
  the numbers;
* ``FleetRouter.stats()`` reconciles with the issued op counts — the
  fine-grained per-city locking may reorder commits across cities, but
  it must never lose or double-count a request.
"""

from __future__ import annotations

import pytest

from repro.bench import (LoadConfig, load_matches_serial_oracle,
                         replay_trace, run_load)
from repro.serve import FleetRouter


@pytest.fixture(scope="module")
def concurrent_run(shard_factory, fleet_trace):
    fleet = FleetRouter([shard_factory(f"cc-shard-{i}") for i in range(3)],
                        replication=2)
    result = run_load(fleet_trace, fleet, LoadConfig(workers=3))
    stats = fleet.stats()
    fleet.close()
    return result, stats


def test_no_worker_errors(concurrent_run):
    result, _ = concurrent_run
    assert not result.errors
    assert len(result.records) == len(result.measured())  # no warm-up set


def test_bit_identical_to_serial_single_shard_oracle(concurrent_run,
                                                     shard_factory,
                                                     fleet_trace):
    result, _ = concurrent_run
    oracle = replay_trace(fleet_trace, shard_factory("cc-oracle"),
                          collect_stats=False, keep_scores=False)
    identical, mismatches = load_matches_serial_oracle(
        fleet_trace, result, oracle)
    assert identical, "\n".join(mismatches)


def test_fleet_counters_reconcile_with_issued_ops(concurrent_run,
                                                  fleet_trace):
    result, stats = concurrent_run
    fleet = stats["fleet"]
    counts = fleet_trace.op_counts()
    assert fleet["opens"] == len(fleet_trace.cities)
    assert fleet["score_requests"] == counts["score"]
    assert fleet["update_requests"] == counts["update"]
    assert fleet["evict_requests"] == counts["evict"]
    assert fleet["requests"] == len(fleet_trace.ops) + len(fleet_trace.cities)
    assert fleet["no_replica_errors"] == 0
    # healthy fleet: nothing went down, nothing failed over
    assert fleet["shard_failures"] == 0
    assert fleet["down"] == []


def test_every_op_produced_a_record(concurrent_run, fleet_trace):
    result, _ = concurrent_run
    assert sorted(r.index for r in result.records) == \
        list(range(len(fleet_trace.ops)))
    by_kind = {}
    for record in result.records:
        by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
    assert by_kind == {kind: count
                       for kind, count in fleet_trace.op_counts().items()
                       if count}
