"""``GET /metrics`` end-to-end over HTTP.

One :class:`~repro.obs.MetricsRegistry` is injected into both the
:class:`ScoringServer` and an in-process :class:`FleetRouter` fronting it
as a :class:`RemoteShard`, so a single scrape exposes all four metric
families the acceptance criteria name: per-endpoint HTTP histograms,
engine cache counters, per-stream update-mode latencies, and per-shard
fleet counters.
"""

from __future__ import annotations

import urllib.request

import pytest

from repro.obs import MetricsRegistry, metrics_delta, parse_prometheus_text
from repro.serve import FleetRouter, RemoteShard, ScoringClient, ScoringServer
from repro.serve.server import METRICS_CONTENT_TYPE, endpoint_label
from repro.synth import EvolutionConfig, generate_evolution


@pytest.fixture(scope="module")
def obs_registry():
    """A fresh registry so assertions see only this module's traffic."""
    return MetricsRegistry()


@pytest.fixture(scope="module")
def server(model_registry, obs_registry):
    with ScoringServer(model_registry, quiet=True,
                       metrics=obs_registry) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    client = ScoringClient(server.url)
    client.wait_until_ready()
    return client


def scrape(client) -> "object":
    return parse_prometheus_text(client.metrics_text())


class TestMetricsEndpoint:
    def test_serves_prometheus_content_type(self, server, client):
        with urllib.request.urlopen(server.url + "/metrics",
                                    timeout=10) as response:
            assert response.headers["Content-Type"] == METRICS_CONTENT_TYPE
            text = response.read().decode("utf-8")
        parsed = parse_prometheus_text(text)  # valid exposition format
        assert parsed.types  # at least the HTTP families are declared

    def test_all_four_metric_families_advance_end_to_end(
            self, client, obs_registry, tiny_graph_small_image):
        graph = tiny_graph_small_image
        before = scrape(client)

        # HTTP + engine traffic: a cold score then a cached repeat
        first = client.score(graph, "tiny")
        second = client.score(graph, "tiny")
        assert second["cache_hit"] and second["fingerprint"] == first["fingerprint"]

        # stream + fleet traffic: open a city through a fleet router whose
        # only shard is this server, then push a delta
        router = FleetRouter([RemoteShard(client.base_url, model="tiny")],
                             replication=1, name="metrics-e2e",
                             metrics=obs_registry)
        delta = generate_evolution(graph, EvolutionConfig(steps=1, seed=3))[0]
        router.open_stream("metrics-city", graph)
        update = router.update_stream("metrics-city", delta)
        assert update["mode"] in ("incremental", "full")

        after = scrape(client)
        moved = metrics_delta(before, after)

        # 1. per-endpoint HTTP histograms advance after /score and /update
        assert moved.value("repro_http_requests_total", endpoint="/score",
                           method="POST", status="200") >= 2
        assert moved.value("repro_http_request_seconds_count",
                           endpoint="/score") >= 2
        assert moved.value("repro_http_request_seconds_count",
                           endpoint="/update") >= 2  # open + delta
        assert moved.value("repro_http_request_seconds_sum",
                           endpoint="/score") > 0
        # bucket counts advanced too, not just _count
        assert sum(count for _, count
                   in moved.buckets("repro_http_request_seconds",
                                    endpoint="/score")) > 0

        # 2. engine cache counters, labelled by model
        assert moved.total("repro_engine_cache_hits_total", model="tiny") >= 1
        assert moved.total("repro_engine_cache_misses_total",
                           model="tiny") >= 1
        assert moved.total("repro_engine_cold_compute_seconds_count",
                           model="tiny") >= 1

        # 3. per-stream update latency, labelled by rescore mode
        assert after.types["repro_stream_update_seconds"] == "histogram"
        assert moved.total("repro_stream_update_seconds_count") >= 1
        modes = set(after.labels_of("repro_stream_update_seconds_count",
                                    "mode"))
        assert modes & {"incremental", "full"}

        # 4. per-shard fleet counters and health gauges
        assert moved.total("repro_fleet_requests_total",
                           fleet="metrics-e2e", op="open") == 1
        assert moved.total("repro_fleet_requests_total",
                           fleet="metrics-e2e", op="update") == 1
        shard_id = router.shards[0]
        assert after.value("repro_fleet_shard_healthy",
                           fleet="metrics-e2e", shard=shard_id) == 1
        assert moved.value("repro_fleet_request_seconds_count",
                           fleet="metrics-e2e", op="update") == 1

    def test_unknown_paths_collapse_to_bounded_labels(self, client):
        before = scrape(client)
        client.model_info("tiny")  # GET /models/tiny
        with pytest.raises(Exception):
            urllib.request.urlopen(client.base_url + "/no-such-endpoint",
                                   timeout=10)
        after = scrape(client)
        moved = metrics_delta(before, after)
        assert moved.value("repro_http_requests_total",
                           endpoint="/models/:name", method="GET",
                           status="200") == 1
        assert moved.value("repro_http_requests_total", endpoint="other",
                           method="GET", status="404") == 1
        assert moved.value("repro_http_errors_total", endpoint="other",
                           status="404") == 1

    def test_endpoint_label_normalisation(self):
        assert endpoint_label("/healthz", "GET") == "/healthz"
        assert endpoint_label("/metrics", "GET") == "/metrics"
        assert endpoint_label("/models/a%20b", "GET") == "/models/:name"
        assert endpoint_label("/score", "POST") == "/score"
        assert endpoint_label("/score", "GET") == "other"
        assert endpoint_label("/../../etc/passwd", "GET") == "other"
        assert endpoint_label("/anything", "POST") == "other"

    def test_healthz_reports_load_context(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0
        assert payload["uptime_seconds"] == payload["uptime_s"]
        assert payload["requests_total"] == payload["requests_served"]
        assert payload["models_available"] >= 1
        assert payload["bundles_available"] >= payload["models_available"]
