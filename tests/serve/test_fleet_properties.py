"""Property tests: consistent-hash stability, trace codec round-trips."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import (WorkloadConfig, generate_workload, trace_from_bytes,
                         trace_from_payload, trace_to_bytes, trace_to_payload)
from repro.serve import ConsistentHashRing

#: small-but-diverse shard id pools
shard_ids = st.lists(
    st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=8),
    min_size=2, max_size=8, unique=True)

keys = st.lists(st.text(min_size=0, max_size=24), min_size=1, max_size=40,
                unique=True)


class TestRingProperties:
    @given(ids=shard_ids, keys=keys, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_removing_a_shard_only_moves_its_own_keys(self, ids, keys, data):
        ring = ConsistentHashRing(ids)
        before = {key: ring.assign(key)[0] for key in keys}
        removed = data.draw(st.sampled_from(ids))
        ring.remove(removed)
        for key, owner in before.items():
            if owner != removed:
                assert ring.assign(key)[0] == owner

    @given(ids=shard_ids, keys=keys, new_id=st.text(
        alphabet="zyxw", min_size=9, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_adding_a_shard_only_steals_keys_for_itself(self, ids, keys,
                                                        new_id):
        ring = ConsistentHashRing(ids)
        before = {key: ring.assign(key)[0] for key in keys}
        ring.add(new_id)
        for key, owner in before.items():
            assert ring.assign(key)[0] in (owner, new_id)

    @given(ids=shard_ids, key=st.text(max_size=24),
           count=st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_replica_sets_are_distinct_stable_prefixes(self, ids, key, count):
        ring = ConsistentHashRing(ids)
        replicas = ring.assign(key, count)
        assert len(replicas) == min(count, len(ids))
        assert len(set(replicas)) == len(replicas)
        assert set(replicas) <= set(ids)
        # growing the replica count only appends, never reorders
        assert ring.assign(key, max(1, count - 1)) == replicas[:max(1, count - 1)]

    @given(ids=shard_ids, key=st.text(max_size=24))
    @settings(max_examples=30, deadline=None)
    def test_assignment_is_process_independent(self, ids, key):
        # two independently built rings with the same membership agree —
        # the hash is content-based, not id()/hash()-salted
        a = ConsistentHashRing(ids)
        b = ConsistentHashRing(list(reversed(ids)))
        assert a.assign(key, 3) == b.assign(key, 3)


class TestTraceCodecProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           ops=st.integers(min_value=0, max_value=8),
           weights=st.tuples(*[st.floats(min_value=0.0, max_value=1.0,
                                         allow_nan=False)] * 3),
           encoding=st.sampled_from(["bytes", "npz", "json"]))
    @settings(max_examples=15, deadline=None)
    def test_arbitrary_seeded_traces_round_trip(self, fleet_cities,
                                                traces_equal, seed, ops,
                                                weights, encoding):
        score_w, update_w, evict_w = weights
        if score_w + update_w + evict_w <= 0:
            score_w = 1.0
        trace = generate_workload(fleet_cities, WorkloadConfig(
            ops=ops, seed=seed, score_weight=score_w,
            update_weight=update_w, evict_weight=evict_w))
        if encoding == "bytes":
            restored = trace_from_bytes(trace_to_bytes(trace))
        else:
            payload = json.loads(json.dumps(
                trace_to_payload(trace, encoding=encoding)))
            restored = trace_from_payload(payload)
        traces_equal(trace, restored)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_generation_is_a_pure_function_of_seed(self, fleet_cities,
                                                   traces_equal, seed):
        config = WorkloadConfig(ops=6, seed=seed)
        traces_equal(generate_workload(fleet_cities, config),
                     generate_workload(fleet_cities, config))
