"""End-to-end integration tests spanning synth → urg → core → eval → data.

These tests exercise the same path as the examples and the CLI, but at the
smallest viable scale so they stay fast: a 16x16 synthetic city, a handful of
training epochs and the full public API surface (fit, predict, rank, persist,
reload, export).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CMSFConfig, CMSFDetector, make_variant
from repro.data import load_graph_npz, save_graph_npz
from repro.eval import block_kfold, detection_report, rank_regions
from repro.eval.significance import permutation_auc_test

FAST = CMSFConfig(hidden_dim=16, image_reduce_dim=16, classifier_hidden=8,
                  maga_layers=1, maga_heads=2, num_clusters=6, context_dim=8,
                  master_epochs=25, slave_epochs=8, patience=None, dropout=0.0,
                  seed=0)


@pytest.fixture(scope="module")
def fitted_detector(tiny_graph_small_image):
    graph = tiny_graph_small_image
    split = block_kfold(graph, n_folds=3, seed=0)[0]
    detector = CMSFDetector(FAST)
    detector.fit(graph, split.train_indices)
    return graph, split, detector


class TestEndToEndDetection:
    def test_detection_beats_chance_on_held_out_blocks(self, fitted_detector):
        graph, split, detector = fitted_detector
        scores = detector.predict_proba(graph)
        report = detection_report(graph.labels[split.test_indices],
                                  scores[split.test_indices])
        assert report["auc"] > 0.5

    def test_predictions_are_deterministic_for_fixed_seed(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        split = block_kfold(graph, n_folds=3, seed=0)[0]
        first = CMSFDetector(FAST).fit(graph, split.train_indices).predict_proba(graph)
        second = CMSFDetector(FAST).fit(graph, split.train_indices).predict_proba(graph)
        np.testing.assert_allclose(first, second)

    def test_ranked_screening_list_prioritises_uv_regions(self, fitted_detector):
        graph, _, detector = fitted_detector
        top = rank_regions(detector, graph, top_percent=10.0)
        bottom_rate = graph.ground_truth.mean()
        top_rate = graph.ground_truth[top].mean()
        assert top_rate >= bottom_rate

    def test_training_history_exposed_for_both_stages(self, fitted_detector):
        _, _, detector = fitted_detector
        history = detector.training_history()
        assert "master" in history and len(history["master"]) > 0
        assert "slave_detection" in history


class TestPersistenceRoundTrips:
    def test_detector_parameters_round_trip(self, fitted_detector, tmp_path):
        graph, _, detector = fitted_detector
        original = detector.predict_proba(graph)
        path = detector.save(str(tmp_path / "cmsf_params"))
        # Perturbing then reloading must restore the original predictions.
        module = detector.slave_result.stage
        for parameter in module.parameters():
            parameter.data = parameter.data + 0.05
        detector.load_parameters(path)
        np.testing.assert_allclose(detector.predict_proba(graph), original, atol=1e-10)

    def test_graph_archive_round_trip_preserves_evaluation(self, fitted_detector,
                                                           tmp_path):
        graph, split, detector = fitted_detector
        path = save_graph_npz(graph, tmp_path / "graph.npz")
        reloaded = load_graph_npz(path)
        scores = detector.predict_proba(reloaded)
        report = detection_report(reloaded.labels[split.test_indices],
                                  scores[split.test_indices])
        assert 0.0 <= report["auc"] <= 1.0


class TestVariantsAndSignificance:
    def test_component_variants_share_interface(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        split = block_kfold(graph, n_folds=3, seed=0)[0]
        for name in ("CMSF-M", "CMSF-G", "CMSF-H"):
            detector = make_variant(name, FAST)
            detector.fit(graph, split.train_indices)
            scores = detector.predict_proba(graph)
            assert scores.shape == (graph.num_nodes,)
            assert np.isfinite(scores).all()

    def test_significance_test_on_model_vs_random_scores(self, fitted_detector, rng):
        graph, split, detector = fitted_detector
        scores = detector.predict_proba(graph)
        random_scores = rng.random(graph.num_nodes)
        pool = split.test_indices
        result = permutation_auc_test(graph.labels[pool], scores[pool],
                                      random_scores[pool], num_permutations=200)
        assert result.auc_a >= result.auc_b - 0.2
        assert 0.0 <= result.p_value <= 1.0
