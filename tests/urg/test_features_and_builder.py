"""Tests for POI/image feature construction and the URG builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth.poi import POI_CATEGORIES, RADIUS_POI_TYPES, Poi
from repro.urg import (DATA_ABLATIONS, ImageFeatureConfig, PoiFeatureConfig,
                       UrbanRegionGraph, UrgBuildConfig, build_poi_features,
                       build_region_grid, build_urg, build_urg_variant,
                       bucketize_distances, extract_image_features, pca_reduce,
                       standardize_features)
from repro.urg.grid import RegionGrid


def _grid(height=4, width=4, size=128.0) -> RegionGrid:
    return RegionGrid(height=height, width=width, region_size_m=size,
                      active_mask=np.ones(height * width, dtype=bool))


def _poi(x, y, category="Food Service", poi_type=None, grid=None):
    poi_type = poi_type or category
    region = grid.region_of_point(x, y) if grid is not None else 0
    return Poi(x=x, y=y, category=category, poi_type=poi_type, region_index=region)


class TestPoiFeatures:
    def test_full_feature_dimension(self):
        grid = _grid()
        result = build_poi_features(grid, [])
        # 23 (1x1 hist) + 23 (3x3 hist) + 1 (count) + 15 (radius) + 1 (index)
        assert result.dim == 63
        assert len(result.feature_names) == 63

    def test_category_histogram_normalised(self):
        grid = _grid()
        pois = [_poi(10.0, 10.0, "Food Service", grid=grid),
                _poi(20.0, 20.0, "Food Service", grid=grid),
                _poi(30.0, 30.0, "Hotel", grid=grid)]
        result = build_poi_features(grid, pois)
        food_column = result.feature_names.index("cat:Food Service")
        hotel_column = result.feature_names.index("cat:Hotel")
        assert result.features[0, food_column] == pytest.approx(2 / 3)
        assert result.features[0, hotel_column] == pytest.approx(1 / 3)

    def test_window_histogram_includes_neighbours(self):
        grid = _grid()
        # POI in region (0,0); the 3x3 histogram of region (1,1) must see it.
        pois = [_poi(10.0, 10.0, "Hotel", grid=grid)]
        result = build_poi_features(grid, pois)
        column = result.feature_names.index("cat3x3:Hotel")
        center_region = grid.index(1, 1)
        assert result.features[center_region, column] == pytest.approx(1.0)

    def test_radius_buckets_match_paper_edges(self):
        distances = np.array([[100.0, 600.0, 2000.0, 5000.0]])
        np.testing.assert_array_equal(bucketize_distances(distances), [[0, 1, 2, 3]])

    def test_radius_feature_reflects_distance(self):
        grid = _grid(height=12, width=12)
        # One hospital in the top-left corner region.
        pois = [_poi(10.0, 10.0, "Medicine", poi_type="Hospital", grid=grid)]
        result = build_poi_features(grid, pois)
        column = result.feature_names.index("radius:Hospital")
        near = result.features[grid.index(0, 0), column]
        far = result.features[grid.index(11, 11), column]
        assert near < far

    def test_missing_poi_type_lands_in_last_bucket(self):
        grid = _grid()
        result = build_poi_features(grid, [])  # no POIs at all
        column = result.feature_names.index("radius:Airport")
        np.testing.assert_allclose(result.features[:, column], 1.0)

    def test_facility_index_requires_all_groups(self):
        grid = _grid()
        # Only one facility group present -> the index must be 0 everywhere.
        pois = [_poi(10.0, 10.0, "Medicine", poi_type="Hospital", grid=grid)]
        result = build_poi_features(grid, pois)
        column = result.feature_names.index("basic_facility_index")
        assert result.features[:, column].sum() == 0

    def test_onehot_radius_encoding(self):
        grid = _grid()
        config = PoiFeatureConfig(radius_encoding="onehot")
        result = build_poi_features(grid, [], config)
        # 23+23+1 category block + 15*4 one-hot radius + 1 index
        assert result.dim == 47 + 60 + 1

    def test_feature_switches(self):
        grid = _grid()
        no_category = build_poi_features(grid, [], PoiFeatureConfig(use_category=False))
        assert no_category.dim == 16
        no_radius = build_poi_features(grid, [], PoiFeatureConfig(use_radius=False))
        assert no_radius.dim == 48
        no_index = build_poi_features(grid, [], PoiFeatureConfig(use_index=False))
        assert no_index.dim == 62

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PoiFeatureConfig(use_category=False, use_radius=False, use_index=False)
        with pytest.raises(ValueError):
            PoiFeatureConfig(radius_encoding="fourier")


class TestImageFeatures:
    def test_disabled_returns_zero_width(self, tiny_city_data):
        features = extract_image_features(tiny_city_data, ImageFeatureConfig(enabled=False))
        assert features.shape == (tiny_city_data.num_regions, 0)

    def test_standardisation(self, tiny_city_data):
        features = extract_image_features(tiny_city_data, ImageFeatureConfig(standardize=True))
        np.testing.assert_allclose(features.mean(axis=0), 0.0, atol=1e-8)

    def test_reduction_dimension(self, tiny_city_data):
        features = extract_image_features(tiny_city_data,
                                          ImageFeatureConfig(reduce_dim=16))
        assert features.shape[1] == 16

    def test_pca_reduce_preserves_leading_variance(self, rng):
        base = rng.normal(size=(200, 3)) @ rng.normal(size=(3, 40))
        noise = rng.normal(scale=0.01, size=(200, 40))
        reduced = pca_reduce(base + noise, 3)
        assert reduced.shape == (200, 3)
        # Three components should capture nearly all the variance of a rank-3 matrix.
        assert reduced.var(axis=0).sum() > 0.95 * (base + noise).var(axis=0).sum()

    def test_pca_reduce_invalid_dim(self, rng):
        with pytest.raises(ValueError):
            pca_reduce(rng.normal(size=(10, 5)), 0)

    def test_standardize_features_unit_variance(self, rng):
        x = rng.normal(loc=5.0, scale=3.0, size=(100, 4))
        standardized = standardize_features(x)
        np.testing.assert_allclose(standardized.std(axis=0), 1.0, atol=1e-6)


class TestUrgBuilder:
    def test_graph_invariants(self, tiny_graph):
        graph = tiny_graph
        assert isinstance(graph, UrbanRegionGraph)
        assert graph.num_nodes > 0
        assert graph.edge_index.max() < graph.num_nodes
        assert graph.edge_index.min() >= 0
        # directed edge list contains both directions
        pairs = set(map(tuple, graph.edge_index.T))
        assert all((b, a) in pairs for a, b in list(pairs)[:200])

    def test_labels_and_masks_consistent(self, tiny_graph):
        graph = tiny_graph
        assert (graph.labels[~graph.labeled_mask] == -1).all()
        assert set(np.unique(graph.labels[graph.labeled_mask])).issubset({0, 1})
        assert graph.num_labeled_uv + graph.num_labeled_non_uv == graph.labeled_mask.sum()

    def test_feature_concatenation(self, tiny_graph):
        features = tiny_graph.features()
        assert features.shape == (tiny_graph.num_nodes, tiny_graph.feature_dim)

    def test_summary_matches_table1_fields(self, tiny_graph):
        summary = tiny_graph.summary()
        assert {"city", "regions", "edges", "uvs", "non_uvs"} <= set(summary)

    def test_with_labels_returns_copy(self, tiny_graph):
        new_labels = np.full(tiny_graph.num_nodes, -1)
        new_mask = np.zeros(tiny_graph.num_nodes, dtype=bool)
        modified = tiny_graph.with_labels(new_labels, new_mask)
        assert modified.labeled_mask.sum() == 0
        assert tiny_graph.labeled_mask.sum() > 0  # original untouched

    def test_with_labels_validates_length(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.with_labels(np.zeros(3), np.zeros(3, dtype=bool))

    def test_degree_matches_edge_count(self, tiny_graph):
        assert tiny_graph.degree().sum() == tiny_graph.num_edges

    def test_graph_validation_rejects_bad_edges(self, tiny_graph):
        with pytest.raises(ValueError):
            UrbanRegionGraph(
                name="bad", edge_index=np.array([[0], [999999]]),
                x_poi=tiny_graph.x_poi, x_img=tiny_graph.x_img,
                labels=tiny_graph.labels, labeled_mask=tiny_graph.labeled_mask,
                ground_truth=tiny_graph.ground_truth,
                region_index=tiny_graph.region_index,
                block_ids=tiny_graph.block_ids, grid_shape=tiny_graph.grid_shape)

    @pytest.mark.parametrize("ablation", list(DATA_ABLATIONS) + ["full"])
    def test_all_data_ablations_build(self, tiny_city_data, ablation):
        graph = build_urg_variant(tiny_city_data, ablation)
        assert graph.num_nodes > 0
        if ablation == "noImage":
            assert graph.image_dim == 0
        if ablation == "noProx":
            full = build_urg(tiny_city_data)
            assert graph.num_undirected_edges < full.num_undirected_edges

    def test_unknown_ablation_raises(self, tiny_city_data):
        with pytest.raises(ValueError):
            build_urg_variant(tiny_city_data, "noEverything")

    def test_feature_ablation_dimensions(self, tiny_city_data):
        full = build_urg(tiny_city_data)
        no_cate = build_urg_variant(tiny_city_data, "noCate")
        no_rad = build_urg_variant(tiny_city_data, "noRad")
        no_index = build_urg_variant(tiny_city_data, "noIndex")
        assert no_cate.poi_dim < full.poi_dim
        assert no_rad.poi_dim == full.poi_dim - 15
        assert no_index.poi_dim == full.poi_dim - 1
