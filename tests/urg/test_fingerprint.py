"""The content fingerprint used as the serving cache key."""

from __future__ import annotations

from dataclasses import replace

import numpy as np


class TestFingerprint:
    def test_deterministic_and_hex(self, tiny_graph):
        first = tiny_graph.fingerprint()
        assert first == tiny_graph.fingerprint()
        assert len(first) == 64
        int(first, 16)  # valid hex digest

    def test_identical_content_same_fingerprint(self, tiny_graph):
        clone = tiny_graph.with_labels(tiny_graph.labels, tiny_graph.labeled_mask)
        assert clone is not tiny_graph
        assert clone.fingerprint() == tiny_graph.fingerprint()

    def test_label_change_alters_fingerprint(self, tiny_graph):
        labels = tiny_graph.labels.copy()
        index = int(np.flatnonzero(labels == 1)[0])
        labels[index] = 0
        changed = tiny_graph.with_labels(labels, tiny_graph.labeled_mask)
        assert changed.fingerprint() != tiny_graph.fingerprint()

    def test_feature_change_alters_fingerprint(self, tiny_graph):
        changed = replace(tiny_graph, x_poi=tiny_graph.x_poi + 1e-12)
        assert changed.fingerprint() != tiny_graph.fingerprint()

    def test_edge_change_alters_fingerprint(self, tiny_graph):
        flipped = tiny_graph.edge_index[:, ::-1].copy()
        changed = replace(tiny_graph, edge_index=flipped)
        assert changed.fingerprint() != tiny_graph.fingerprint()

    def test_name_change_alters_fingerprint(self, tiny_graph):
        changed = replace(tiny_graph, name="other-city")
        assert changed.fingerprint() != tiny_graph.fingerprint()

    def test_inference_irrelevant_fields_ignored(self, tiny_graph):
        changed = replace(tiny_graph, ground_truth=1 - tiny_graph.ground_truth,
                          stats={"anything": 1.0})
        assert changed.fingerprint() == tiny_graph.fingerprint()
