"""Tests for the region grid, main-urban-area selection and edge construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth.poi import Poi
from repro.urg.grid import RegionGrid, build_region_grid, main_urban_area_mask
from repro.urg.relations import (add_self_loops, adjacency_matrix, build_edge_index,
                                 merge_edge_sets, road_connectivity_edges,
                                 spatial_proximity_edges, to_directed_edge_index)


def _full_grid(height=6, width=5, size=128.0) -> RegionGrid:
    return RegionGrid(height=height, width=width, region_size_m=size,
                      active_mask=np.ones(height * width, dtype=bool))


class TestRegionGrid:
    def test_index_coords_roundtrip(self):
        grid = _full_grid()
        for index in range(grid.num_regions):
            row, col = grid.coords(index)
            assert grid.index(row, col) == index

    def test_index_out_of_range(self):
        grid = _full_grid()
        with pytest.raises(IndexError):
            grid.index(6, 0)
        with pytest.raises(IndexError):
            grid.coords(30)

    def test_center_and_point_lookup(self):
        grid = _full_grid()
        x, y = grid.center(0)
        assert (x, y) == (64.0, 64.0)
        assert grid.region_of_point(x, y) == 0
        # points outside the grid are clamped to border regions
        assert grid.region_of_point(-50.0, -50.0) == 0
        assert grid.region_of_point(1e6, 1e6) == grid.num_regions - 1

    def test_neighbors_8_interior_and_corner(self):
        grid = _full_grid()
        interior = grid.index(2, 2)
        assert len(grid.neighbors_8(interior)) == 8
        corner = grid.index(0, 0)
        assert len(grid.neighbors_8(corner)) == 3

    def test_block_ids_group_10x10(self):
        grid = _full_grid(height=25, width=25)
        assert grid.block_id(grid.index(0, 0)) == grid.block_id(grid.index(9, 9))
        assert grid.block_id(grid.index(0, 0)) != grid.block_id(grid.index(0, 10))
        assert grid.block_id(grid.index(0, 0)) != grid.block_id(grid.index(10, 0))
        ids = grid.all_block_ids()
        assert ids.shape == (625,)
        assert len(np.unique(ids)) == 9  # 3x3 blocks of 10x10 over a 25x25 grid


class TestMainUrbanArea:
    def test_no_pois_keeps_everything(self):
        mask = main_urban_area_mask(4, 4, 100.0, [], coverage=0.9)
        assert mask.all()

    def test_concentrated_pois_shrink_the_frame(self):
        # All POIs in the centre cell of a 9x9 grid: the frame should not cover
        # the full grid.
        pois = [Poi(x=450.0 + i, y=450.0 + i, category="Food Service",
                    poi_type="Food Service", region_index=40) for i in range(20)]
        mask = main_urban_area_mask(9, 9, 100.0, pois, coverage=0.9)
        assert mask.sum() < 81
        # the central region must be covered
        assert mask[4 * 9 + 4]

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            main_urban_area_mask(4, 4, 100.0, [], coverage=0.0)

    def test_build_region_grid_active_subset(self, tiny_city_data):
        grid = build_region_grid(tiny_city_data)
        assert 0 < grid.num_active <= grid.num_regions


class TestEdgeConstruction:
    def test_spatial_proximity_counts_on_full_grid(self):
        grid = _full_grid(height=3, width=3)
        edges = spatial_proximity_edges(grid)
        # 3x3 grid with 8-neighbourhood: 20 undirected edges
        assert len(edges) == 20
        assert all(a < b for a, b in edges)

    def test_spatial_proximity_respects_active_mask(self):
        grid = _full_grid(height=3, width=3)
        grid.active_mask[4] = False  # deactivate the centre
        edges = spatial_proximity_edges(grid)
        assert all(4 not in edge for edge in edges)

    def test_road_connectivity_respects_hops(self, tiny_city_data):
        grid = build_region_grid(tiny_city_data)
        few = road_connectivity_edges(grid, tiny_city_data.roads, max_hops=1)
        many = road_connectivity_edges(grid, tiny_city_data.roads, max_hops=5)
        assert few.issubset(many)

    def test_merge_edge_sets_deduplicates_and_sorts(self):
        merged = merge_edge_sets({(1, 2), (3, 4)}, {(2, 1), (5, 6), (7, 7)})
        assert merged == [(1, 2), (3, 4), (5, 6)]

    def test_to_directed_edge_index_symmetric(self):
        edge_index = to_directed_edge_index([(0, 1), (2, 3)])
        assert edge_index.shape == (2, 4)
        pairs = set(map(tuple, edge_index.T))
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_to_directed_empty(self):
        assert to_directed_edge_index([]).shape == (2, 0)

    def test_add_self_loops(self):
        edge_index = to_directed_edge_index([(0, 1)])
        with_loops = add_self_loops(edge_index, 3)
        # 2 directed edges + 3 self-loops
        assert with_loops.shape == (2, 5)
        assert (with_loops[:, -3:] == np.array([[0, 1, 2], [0, 1, 2]])).all()

    def test_adjacency_matrix_symmetric(self):
        edge_index = to_directed_edge_index([(0, 1), (1, 2)])
        adjacency = adjacency_matrix(edge_index, 3)
        assert (adjacency == adjacency.T).all()
        assert adjacency.sum() == 4

    def test_build_edge_index_requires_a_relation(self, tiny_city_data):
        grid = build_region_grid(tiny_city_data)
        with pytest.raises(ValueError):
            build_edge_index(grid, tiny_city_data.roads,
                             use_proximity=False, use_road=False)

    def test_build_edge_index_stats(self, tiny_city_data):
        grid = build_region_grid(tiny_city_data)
        edge_index, stats = build_edge_index(grid, tiny_city_data.roads)
        assert stats["undirected_edges"] * 2 == edge_index.shape[1]
        assert stats["proximity_edges"] > 0
        assert stats["road_edges"] > 0

    def test_build_edge_index_without_roads(self, tiny_city_data):
        grid = build_region_grid(tiny_city_data)
        edge_index, stats = build_edge_index(grid, None, use_road=False)
        assert stats["road_edges"] == 0
        assert edge_index.shape[1] == 2 * stats["proximity_edges"]

    def test_road_requested_but_missing_network(self, tiny_city_data):
        grid = build_region_grid(tiny_city_data)
        with pytest.raises(ValueError):
            build_edge_index(grid, None, use_proximity=True, use_road=True)
