"""The metrics core: rendering golden-file, parse round-trip, quantiles.

These tests pin the Prometheus text exposition format produced by
``MetricsRegistry.render()`` — the experiment runner and the CI smoke
step both grep/parse this output, so the format is API.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    default_registry,
    metrics_delta,
    parse_prometheus_text,
    quantile_from_buckets,
    set_default_registry,
)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
class TestRendering:
    def test_golden_exposition(self):
        """The exact text for one counter, one gauge, one histogram."""
        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_http_requests_total", "HTTP requests.",
            labelnames=("endpoint", "status"))
        requests.labels(endpoint="/score", status="200").inc()
        requests.labels(endpoint="/score", status="200").inc(2)
        requests.labels(endpoint="/healthz", status="200").inc()
        registry.gauge("repro_streams_open", "Open streams.").set(3)
        hist = registry.histogram(
            "repro_request_seconds", "Request latency.",
            buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)

        assert registry.render() == (
            "# HELP repro_http_requests_total HTTP requests.\n"
            "# TYPE repro_http_requests_total counter\n"
            'repro_http_requests_total{endpoint="/healthz",status="200"} 1\n'
            'repro_http_requests_total{endpoint="/score",status="200"} 3\n'
            "# HELP repro_request_seconds Request latency.\n"
            "# TYPE repro_request_seconds histogram\n"
            'repro_request_seconds_bucket{le="0.1"} 1\n'
            'repro_request_seconds_bucket{le="1"} 2\n'
            'repro_request_seconds_bucket{le="+Inf"} 3\n'
            "repro_request_seconds_sum 5.55\n"
            "repro_request_seconds_count 3\n"
            "# HELP repro_streams_open Open streams.\n"
            "# TYPE repro_streams_open gauge\n"
            "repro_streams_open 3\n"
        )

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("tricky_total", "Escaping.",
                                   labelnames=("path",))
        counter.labels(path='a\\b"c\nd').inc()
        line = [l for l in registry.render().splitlines()
                if l.startswith("tricky_total{")][0]
        assert line == 'tricky_total{path="a\\\\b\\"c\\nd"} 1'

    def test_help_escaping_and_empty_families_skipped(self):
        registry = MetricsRegistry()
        registry.counter("used_total", "line one\nline two").inc()
        registry.counter("unused_total", "never incremented",
                         labelnames=("x",))
        text = registry.render()
        assert "# HELP used_total line one\\nline two\n" in text
        assert "unused_total" not in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name", "h")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "h", labelnames=("le",))
        with pytest.raises(ValueError):
            registry.counter("ok_total", "h", labelnames=("__x",))
        with pytest.raises(ValueError):
            registry.histogram("h_seconds", "h", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            registry.histogram("h2_seconds", "h", buckets=())


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "h", labelnames=("k",))
        b = registry.counter("x_total", "different help ok", labelnames=("k",))
        assert a is b

    def test_reregistration_mismatch_fails(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "h")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "h")
        with pytest.raises(ValueError):
            registry.counter("x_total", "h", labelnames=("k",))
        registry.histogram("h_seconds", "h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h_seconds", "h", buckets=(1.0, 3.0))

    def test_label_mismatch_on_use(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", "h", labelnames=("k",))
        with pytest.raises(ValueError):
            counter.labels(wrong="v")
        with pytest.raises(ValueError):
            counter.inc()  # labelled family has no default child

    def test_counter_monotonic(self):
        counter = MetricsRegistry().counter("x_total", "h")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        previous = set_default_registry(fresh)
        try:
            assert default_registry() is fresh
        finally:
            set_default_registry(previous)
        assert default_registry() is previous

    def test_concurrent_increments_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "h", labelnames=("t",))
        hist = registry.histogram("h_seconds", "h", buckets=(0.5,))

        def work(tag):
            child = counter.labels(t=tag)
            for _ in range(2000):
                child.inc()
                hist.observe(0.1)

        threads = [threading.Thread(target=work, args=(str(i % 2),))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.labels(t="0").value == 4000
        assert counter.labels(t="1").value == 4000
        assert hist.count == 8000


# ----------------------------------------------------------------------
# quantiles
# ----------------------------------------------------------------------
class TestQuantiles:
    def test_interpolation_within_bucket(self):
        # 10 observations in (0, 0.1], 10 in (0.1, 0.2]
        buckets = [(0.1, 10.0), (0.2, 20.0), (math.inf, 20.0)]
        assert quantile_from_buckets(buckets, 0.5) == pytest.approx(0.1)
        assert quantile_from_buckets(buckets, 0.25) == pytest.approx(0.05)
        assert quantile_from_buckets(buckets, 0.75) == pytest.approx(0.15)

    def test_lowest_bucket_interpolates_from_zero(self):
        buckets = [(0.2, 4.0), (math.inf, 4.0)]
        assert quantile_from_buckets(buckets, 0.5) == pytest.approx(0.1)

    def test_inf_bucket_clamps_to_highest_finite_bound(self):
        buckets = [(0.1, 0.0), (math.inf, 5.0)]
        assert quantile_from_buckets(buckets, 0.99) == 0.1

    def test_empty_histogram_is_none(self):
        assert quantile_from_buckets([], 0.5) is None
        assert quantile_from_buckets([(0.1, 0.0), (math.inf, 0.0)], 0.5) is None

    def test_histogram_child_quantile(self):
        hist = MetricsRegistry().histogram("h_seconds", "h",
                                           buckets=(0.01, 0.1, 1.0))
        for _ in range(100):
            hist.observe(0.05)
        q = hist.quantile(0.5)
        assert 0.01 < q <= 0.1

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            quantile_from_buckets([(1.0, 1.0)], 1.5)


# ----------------------------------------------------------------------
# parse-back round trip (the experiment runner's consumer path)
# ----------------------------------------------------------------------
class TestParseRoundTrip:
    def _populated(self):
        registry = MetricsRegistry()
        counter = registry.counter("rt_requests_total", "h",
                                   labelnames=("endpoint", "status"))
        counter.labels(endpoint="/score", status="200").inc(7)
        counter.labels(endpoint='/we"ird\npath', status="500").inc(2)
        registry.gauge("rt_healthy", "h", labelnames=("shard",)) \
            .labels(shard="s0").set(1)
        hist = registry.histogram("rt_seconds", "h",
                                  labelnames=("op",), buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 3.0):
            hist.labels(op="score").observe(value)
        return registry

    def test_round_trip_recovers_every_sample(self):
        registry = self._populated()
        parsed = parse_prometheus_text(registry.render())
        assert parsed.types["rt_requests_total"] == "counter"
        assert parsed.types["rt_healthy"] == "gauge"
        assert parsed.types["rt_seconds"] == "histogram"
        assert parsed.value("rt_requests_total",
                            endpoint="/score", status="200") == 7
        assert parsed.value("rt_requests_total",
                            endpoint='/we"ird\npath', status="500") == 2
        assert parsed.total("rt_requests_total") == 9
        assert parsed.value("rt_healthy", shard="s0") == 1
        assert parsed.value("rt_seconds_count", op="score") == 4
        assert parsed.value("rt_seconds_sum",
                            op="score") == pytest.approx(4.05)
        assert parsed.buckets("rt_seconds", op="score") == [
            (0.1, 1.0), (1.0, 3.0), (math.inf, 4.0)]

    def test_quantile_from_parsed_buckets(self):
        parsed = parse_prometheus_text(self._populated().render())
        p50 = parsed.quantile("rt_seconds", 0.5, op="score")
        assert 0.1 < p50 <= 1.0
        assert parsed.quantile("rt_seconds", 0.5, op="missing") is None

    def test_buckets_aggregate_across_labels(self):
        registry = MetricsRegistry()
        hist = registry.histogram("agg_seconds", "h",
                                  labelnames=("op",), buckets=(1.0,))
        hist.labels(op="a").observe(0.5)
        hist.labels(op="b").observe(2.0)
        parsed = parse_prometheus_text(registry.render())
        assert parsed.buckets("agg_seconds") == [(1.0, 1.0), (math.inf, 2.0)]
        assert parsed.labels_of("agg_seconds_count", "op") == ["a", "b"]

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("ok_total 1\nbroken{x= 2\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("no_value_total\n")

    def test_default_buckets_are_usable_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 5.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


# ----------------------------------------------------------------------
# snapshot deltas
# ----------------------------------------------------------------------
class TestMetricsDelta:
    def test_counters_subtract_gauges_keep_after(self):
        registry = MetricsRegistry()
        counter = registry.counter("d_total", "h")
        gauge = registry.gauge("d_open", "h")
        hist = registry.histogram("d_seconds", "h", buckets=(1.0,))
        counter.inc(5)
        gauge.set(10)
        hist.observe(0.5)
        before = parse_prometheus_text(registry.render())
        counter.inc(3)
        gauge.set(2)
        hist.observe(0.5)
        hist.observe(2.0)
        after = parse_prometheus_text(registry.render())

        delta = metrics_delta(before, after)
        assert delta.value("d_total") == 3
        assert delta.value("d_open") == 2  # gauge: state, not accumulation
        assert delta.value("d_seconds_count") == 2
        assert delta.buckets("d_seconds") == [(1.0, 1.0), (math.inf, 2.0)]

    def test_counter_reset_clamps_to_zero(self):
        before = parse_prometheus_text(
            "# TYPE x_total counter\nx_total 100\n")
        after = parse_prometheus_text(
            "# TYPE x_total counter\nx_total 4\n")
        assert metrics_delta(before, after).value("x_total") == 0.0
