"""Tests for the text charts and markdown report helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.protocol import MethodSummary
from repro.viz import (ablation_markdown, bar_chart, comparison_markdown, histogram,
                       line_plot, markdown_table, series_markdown, sparkline,
                       training_curve_report)


class TestBarChart:
    def test_longest_bar_for_largest_value(self):
        chart = bar_chart(["a", "b", "c"], [0.2, 0.8, 0.4])
        lines = chart.splitlines()
        bars = {line.split("|")[0].strip(): line.count("█") for line in lines}
        assert bars["b"] == max(bars.values())
        assert bars["a"] < bars["c"] < bars["b"]

    def test_handles_nan_values(self):
        chart = bar_chart(["ok", "missing"], [0.5, float("nan")])
        assert "n/a" in chart

    def test_label_value_mismatch_raises(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_title_included(self):
        assert bar_chart(["a"], [1.0], title="Figure 5(a)").startswith("Figure 5(a)")


class TestSparkline:
    def test_length_matches_input(self):
        values = [1.0, 2.0, 3.0, 2.0, 1.0]
        assert len(sparkline(values)) == len(values)

    def test_monotone_series_uses_increasing_blocks(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] < line[-1]

    def test_empty_series(self):
        assert sparkline([]) == ""


class TestLinePlot:
    def test_contains_points_and_axis_labels(self):
        xs = [1, 2, 3, 4, 5]
        ys = [0.5, 0.6, 0.7, 0.65, 0.6]
        plot = line_plot(xs, ys, x_label="K", y_label="AUC")
        assert "o" in plot
        assert "K" in plot and "AUC" in plot

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            line_plot([1, 2], [1.0])


class TestHistogram:
    def test_total_count_preserved(self, rng):
        values = rng.normal(size=200)
        text = histogram(values, bins=8)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in text.splitlines()]
        assert sum(counts) == 200


class TestMarkdown:
    def test_markdown_table_shape(self):
        table = markdown_table(["a", "b"], [[1, 2.5], ["x", float("nan")]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| a | b |")
        assert "n/a" in lines[3]

    def test_comparison_markdown_lists_methods(self):
        summary = MethodSummary(method="MLP",
                                summary={"auc": {"mean": 0.8, "std": 0.01}})
        text = comparison_markdown({"fuzhou": {"MLP": summary}}, ["MLP"],
                                   metrics=("auc",), title="Table II")
        assert "Table II" in text
        assert "0.800 (0.010)" in text

    def test_series_markdown(self):
        text = series_markdown({10: 0.8, 20: 0.85}, "K", "AUC", title="Figure 6(a)")
        assert "| K | AUC |" in text
        assert "| 20 | 0.850 |" in text

    def test_ablation_markdown_includes_all_variants(self):
        results = {"fuzhou": {"CMSF": 0.9, "CMSF-M": 0.85},
                   "beijing": {"CMSF": 0.8}}
        text = ablation_markdown(results, metric="AUC")
        assert "CMSF-M" in text and "beijing" in text

    def test_training_curve_report_has_sparkline_per_stage(self):
        report = training_curve_report({"master": [1.0, 0.5, 0.2], "slave": []})
        assert "master" in report and "slave" in report
        assert "(empty)" in report
        assert "1.0000 → 0.2000" in report
