"""Tests for the ASCII map renderers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth.config import LandUse
from repro.viz import (MapLegend, render_cluster_map, render_detection_map,
                       render_label_map, render_land_use_map, render_score_map)
from repro.viz.ascii_map import LAND_USE_CHARS


class TestLandUseMap:
    def test_dimensions_match_grid(self, tiny_city_data):
        text = render_land_use_map(tiny_city_data, with_legend=False, title=None)
        lines = text.splitlines()
        height, width = tiny_city_data.region_grid_shape()
        # One title line plus one line per grid row.
        assert len(lines) == height + 1
        assert all(len(line) == width for line in lines[1:])

    def test_village_cells_marked(self, tiny_city_data):
        text = render_land_use_map(tiny_city_data, with_legend=False)
        land_use = tiny_city_data.land_use.land_use
        expected_villages = int((land_use == int(LandUse.URBAN_VILLAGE)).sum())
        assert text.count(LAND_USE_CHARS[int(LandUse.URBAN_VILLAGE)]) == expected_villages

    def test_legend_contains_all_classes(self, tiny_city_data):
        text = render_land_use_map(tiny_city_data, with_legend=True)
        for name in ("urban village", "downtown", "suburb"):
            assert name in text


class TestLabelMap:
    def test_counts_match_graph(self, tiny_graph):
        text = render_label_map(tiny_graph, with_legend=False)
        body = "\n".join(text.splitlines()[1:])
        assert body.count("U") == tiny_graph.num_labeled_uv
        assert body.count("n") == tiny_graph.num_labeled_non_uv
        assert body.count("?") == tiny_graph.num_nodes - len(tiny_graph.labeled_indices())


class TestDetectionMap:
    def test_hits_and_false_alarms(self, tiny_graph):
        uv_nodes = np.flatnonzero(tiny_graph.ground_truth == 1)
        non_uv_nodes = np.flatnonzero(tiny_graph.ground_truth == 0)
        detected = np.concatenate([uv_nodes[:2], non_uv_nodes[:3]])
        text = render_detection_map(tiny_graph, detected, with_legend=False)
        body = "\n".join(text.splitlines()[1:])
        assert body.count("#") == 2
        assert body.count("o") == 3
        assert body.count(".") == uv_nodes.size - 2

    def test_empty_detection_set(self, tiny_graph):
        text = render_detection_map(tiny_graph, [], with_legend=False, title="map")
        body = "\n".join(text.splitlines()[1:])
        assert "#" not in body and "o" not in body


class TestClusterAndScoreMaps:
    def test_cluster_map_uses_alphabet(self, tiny_graph, rng):
        assignment = rng.integers(0, 5, size=tiny_graph.num_nodes)
        text = render_cluster_map(tiny_graph, assignment)
        assert any(char in text for char in "01234")

    def test_cluster_map_rejects_wrong_length(self, tiny_graph):
        with pytest.raises(ValueError):
            render_cluster_map(tiny_graph, np.zeros(3, dtype=int))

    def test_score_map_extremes(self, tiny_graph, rng):
        scores = rng.random(tiny_graph.num_nodes)
        scores[0], scores[1] = 0.0, 1.0
        text = render_score_map(tiny_graph, scores)
        assert "@" in text and "lowest score" in text

    def test_score_map_rejects_wrong_length(self, tiny_graph):
        with pytest.raises(ValueError):
            render_score_map(tiny_graph, np.zeros(2))


class TestLegend:
    def test_render_lists_all_entries(self):
        legend = MapLegend({"#": "hit", "o": "false alarm"})
        rendered = legend.render()
        assert "hit" in rendered and "false alarm" in rendered
        assert len(rendered.splitlines()) == 2
