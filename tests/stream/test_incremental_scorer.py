"""StreamingScorer's incremental rescoring policy and bookkeeping.

Complements ``tests/serve/test_streaming.py`` (which pins the bit-identity
acceptance contract end to end): here the policy machinery itself is under
test — mode selection, the auto-mode cutoff fallback, first-update
verification, pending seeds across ``rescore=False`` updates, chained
version fingerprints and the stats counters the ``/stats`` endpoint and
``repro-uv stream --stats`` surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import InferenceEngine
from repro.stream import GraphDelta, StreamingScorer
from repro.synth import EvolutionConfig, generate_evolution


@pytest.fixture()
def engine(fitted_detector):
    return InferenceEngine(fitted_detector, cache_size=8)


def _feature_delta(graph, rows, kind="edit", shift=0.25):
    rows = np.asarray(sorted(rows), dtype=np.int64)
    return GraphDelta(kind=kind, poi_rows=rows,
                      poi_values=graph.x_poi[rows] + shift)


class TestModeSelection:
    def test_first_rescore_is_full_then_incremental(self, engine,
                                                    tiny_graph_small_image):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph, incremental="auto")
        first = scorer.update(_feature_delta(graph, [5]))
        # no cache yet: the first update must take the full path
        assert first.mode == "full"
        second = scorer.update(_feature_delta(scorer.graph, [6]))
        assert second.mode == "incremental"
        assert 0 < second.affected_regions < graph.num_nodes
        assert 0 < second.affected_fraction < 1
        assert scorer.stats.incremental_rescores == 1
        assert scorer.stats.full_rescores == 1

    def test_warm_primes_the_incremental_path(self, engine,
                                              tiny_graph_small_image):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph, warm=True)
        update = scorer.update(_feature_delta(graph, [5]))
        assert update.mode == "incremental"

    def test_never_mode_always_full(self, engine, tiny_graph_small_image):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph, warm=True, incremental="never")
        assert not scorer.incremental_active
        update = scorer.update(_feature_delta(graph, [5]))
        assert update.mode == "full"
        assert scorer.stats.incremental_rescores == 0

    def test_auto_cutoff_falls_back_to_full(self, engine,
                                            tiny_graph_small_image):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph, warm=True,
                                 incremental_cutoff=0.05)
        # a city-wide delta exceeds any 5% receptive-field budget
        update = scorer.update(
            _feature_delta(graph, range(graph.num_nodes // 2)))
        assert update.mode == "full"
        assert scorer.stats.cutoff_fallbacks == 1

    def test_always_mode_ignores_cutoff(self, engine, tiny_graph_small_image):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph, warm=True,
                                 incremental="always",
                                 incremental_cutoff=0.05)
        update = scorer.update(
            _feature_delta(graph, range(graph.num_nodes // 2)))
        assert update.mode == "incremental"
        assert scorer.stats.cutoff_fallbacks == 0

    def test_cache_disabled_engine_disables_incremental(
            self, fitted_detector, tiny_graph_small_image):
        engine = InferenceEngine(fitted_detector, cache_size=0)
        scorer = StreamingScorer(engine, tiny_graph_small_image, warm=True)
        assert not scorer.incremental_active
        update = scorer.update(_feature_delta(tiny_graph_small_image, [5]))
        assert update.mode == "full"

    def test_invalid_knobs_rejected(self, engine, tiny_graph_small_image):
        with pytest.raises(ValueError, match="incremental"):
            StreamingScorer(engine, tiny_graph_small_image,
                            incremental="sometimes")
        with pytest.raises(ValueError, match="cutoff"):
            StreamingScorer(engine, tiny_graph_small_image,
                            incremental_cutoff=0.0)
        with pytest.raises(ValueError, match="fingerprints"):
            StreamingScorer(engine, tiny_graph_small_image,
                            fingerprints="vibes")


class TestCorrectnessUnderPolicy:
    @pytest.mark.parametrize("incremental", ["auto", "always", "never"])
    def test_scores_identical_across_modes(self, engine, fitted_detector,
                                           tiny_graph_small_image,
                                           incremental):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph, warm=True,
                                 incremental=incremental)
        deltas = generate_evolution(graph, EvolutionConfig(
            steps=6, seed=19, scenarios=("poi_churn", "road_rewiring",
                                         "imagery_refresh")))
        current = graph
        for delta in deltas:
            update = scorer.update(delta)
            current = delta.apply(current)
            assert np.array_equal(update.probabilities,
                                  fitted_detector.predict_proba(current)), \
                (incremental, delta.kind)

    def test_verification_runs_once_in_auto(self, engine,
                                            tiny_graph_small_image):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph, warm=True)
        scorer.update(_feature_delta(graph, [5]))
        scorer.update(_feature_delta(scorer.graph, [9]))
        assert scorer.stats.verified_rescores == 1
        assert scorer.stats.verify_failures == 0
        assert scorer.incremental_active

    def test_verification_failure_disables_incremental(
            self, engine, tiny_graph_small_image, monkeypatch):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph, warm=True)
        # sabotage the comparison so the stream sees a "mismatch"
        monkeypatch.setattr(scorer, "_scores_match",
                            lambda *args, **kwargs: False)
        update = scorer.update(_feature_delta(graph, [5]))
        # the oracle's scores are served, and the path is retired for good
        assert update.mode == "full"
        assert scorer.stats.verify_failures == 1
        assert not scorer.incremental_active
        later = scorer.update(_feature_delta(scorer.graph, [9]))
        assert later.mode == "full"

    def test_pending_seeds_cover_unscored_updates(self, engine,
                                                  fitted_detector,
                                                  tiny_graph_small_image):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph, warm=True)
        scorer.update(_feature_delta(graph, [5]), rescore=False)
        scorer.update(_feature_delta(scorer.graph, [60]), rescore=False)
        update = scorer.update(_feature_delta(scorer.graph, [100]))
        assert update.mode == "incremental"
        assert np.array_equal(update.probabilities,
                              fitted_detector.predict_proba(scorer.graph))

    def test_region_deltas_rescore_fully_and_stay_bitwise(
            self, engine, fitted_detector, tiny_graph_small_image):
        """Node-set changes break the fixed-shape bit-stability argument,
        so they must take the full path — and still end bit-identical."""
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph, warm=True,
                                 incremental="always")
        shrink = GraphDelta(kind="shrink", remove_regions=np.array([7, 80]))
        update = scorer.update(shrink)
        assert update.mode == "full"
        assert np.array_equal(update.probabilities,
                              fitted_detector.predict_proba(scorer.graph))
        grow = generate_evolution(scorer.graph, EvolutionConfig(
            steps=1, seed=5, scenarios=("region_growth",)))
        assert grow, "the removals above must free grid cells"
        update = scorer.update(grow[0])
        assert update.mode == "full"
        assert np.array_equal(update.probabilities,
                              fitted_detector.predict_proba(scorer.graph))
        # the incremental path re-arms on the next feature delta
        update = scorer.update(_feature_delta(scorer.graph, [5]))
        assert update.mode == "incremental"
        assert np.array_equal(update.probabilities,
                              fitted_detector.predict_proba(scorer.graph))

    def test_region_delta_without_rescore_drops_the_cache(
            self, engine, fitted_detector, tiny_graph_small_image):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph, warm=True)
        shrink = GraphDelta(kind="shrink", remove_regions=np.array([40, 41]))
        scorer.update(shrink, rescore=False)
        update = scorer.update(_feature_delta(scorer.graph, [5]))
        assert update.mode == "full"   # cache was dropped, full rebuild
        assert np.array_equal(update.probabilities,
                              fitted_detector.predict_proba(scorer.graph))
        # and the path re-arms afterwards
        again = scorer.update(_feature_delta(scorer.graph, [9]))
        assert again.mode == "incremental"

    def test_incremental_update_seeds_engine_cache(self, engine,
                                                   tiny_graph_small_image):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph, warm=True)
        update = scorer.update(_feature_delta(graph, [5]))
        assert update.mode == "incremental"
        hits_before = engine.cache_stats.hits
        repeat = scorer.score()
        assert repeat.cache_hit
        assert engine.cache_stats.hits == hits_before + 1
        assert np.array_equal(repeat.probabilities, update.probabilities)


class TestFingerprints:
    def test_chained_fingerprints_are_deterministic(self, engine,
                                                    tiny_graph_small_image):
        graph = tiny_graph_small_image
        delta = _feature_delta(graph, [5])
        a = StreamingScorer(engine, graph)
        b = StreamingScorer(engine, graph)
        assert a.update(delta).fingerprint == b.update(delta).fingerprint

    def test_chained_fingerprints_diverge_per_delta(self, engine,
                                                    tiny_graph_small_image):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph)
        first = scorer.update(_feature_delta(graph, [5]))
        second = scorer.update(_feature_delta(scorer.graph, [5], shift=0.5))
        assert first.fingerprint != second.fingerprint != scorer.graph.fingerprint()

    def test_content_mode_matches_graph_fingerprint(self, engine,
                                                    tiny_graph_small_image):
        graph = tiny_graph_small_image
        scorer = StreamingScorer(engine, graph, fingerprints="content")
        update = scorer.update(_feature_delta(graph, [5]))
        assert update.fingerprint == scorer.graph.fingerprint()

    def test_delta_digest_is_content_keyed(self, tiny_graph_small_image):
        graph = tiny_graph_small_image
        a = _feature_delta(graph, [5])
        b = _feature_delta(graph, [5])
        c = _feature_delta(graph, [6])
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()


class TestDescribe:
    def test_describe_reports_incremental_state(self, engine,
                                                tiny_graph_small_image):
        scorer = StreamingScorer(engine, tiny_graph_small_image)
        info = scorer.describe()
        assert info["incremental"] == "auto"
        assert isinstance(info["incremental_active"], bool)
        stats = info["stats"]
        for key in ("incremental_rescores", "full_rescores",
                    "cutoff_fallbacks", "verified_rescores",
                    "verify_failures", "incremental_regions"):
            assert key in stats
