"""Seeded evolution scenarios: determinism and applicability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream import GraphDelta, apply_deltas
from repro.synth import EvolutionConfig, available_scenarios, generate_evolution


class TestConfig:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            EvolutionConfig(scenarios=("tsunami",))

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ValueError, match="not be empty"):
            EvolutionConfig(scenarios=())

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EvolutionConfig(steps=-1)

    def test_available_scenarios(self):
        assert available_scenarios() == ["imagery_refresh", "poi_churn",
                                         "region_growth", "road_rewiring"]


class TestGenerate:
    def test_deterministic_for_seed(self, tiny_graph):
        config = EvolutionConfig(steps=6, seed=42)
        first = generate_evolution(tiny_graph, config)
        second = generate_evolution(tiny_graph, config)
        assert len(first) == len(second) > 0
        for a, b in zip(first, second):
            assert a.kind == b.kind
            for name, array in a.to_arrays().items():
                assert np.array_equal(array, b.to_arrays()[name])

    def test_different_seeds_differ(self, tiny_graph):
        a = generate_evolution(tiny_graph, EvolutionConfig(steps=2, seed=1,
                                                           scenarios=("poi_churn",)))
        b = generate_evolution(tiny_graph, EvolutionConfig(steps=2, seed=2,
                                                           scenarios=("poi_churn",)))
        assert not np.array_equal(a[0].poi_values, b[0].poi_values)

    def test_sequence_applies_cleanly(self, tiny_graph):
        deltas = generate_evolution(tiny_graph, EvolutionConfig(steps=10, seed=5))
        evolved = apply_deltas(tiny_graph, deltas)   # validates every step
        assert evolved.num_nodes >= tiny_graph.num_nodes

    def test_scenario_cycle_order(self, tiny_graph):
        deltas = generate_evolution(
            tiny_graph, EvolutionConfig(steps=4, seed=0,
                                        scenarios=("poi_churn", "road_rewiring")))
        assert [d.kind for d in deltas] == ["poi_churn", "road_rewiring",
                                            "poi_churn", "road_rewiring"]

    def test_feature_scenarios_are_feature_only(self, tiny_graph):
        deltas = generate_evolution(
            tiny_graph,
            EvolutionConfig(steps=4, seed=0,
                            scenarios=("poi_churn", "imagery_refresh")))
        assert deltas and all(not d.touches_topology for d in deltas)

    def test_rewiring_preserves_counts_and_symmetry(self, tiny_graph):
        deltas = generate_evolution(
            tiny_graph, EvolutionConfig(steps=1, seed=0,
                                        scenarios=("road_rewiring",),
                                        rewire_edges=3))
        evolved = apply_deltas(tiny_graph, deltas)
        assert evolved.num_edges == tiny_graph.num_edges
        # symmetry: every directed edge has its reverse
        edges = set(map(tuple, evolved.edge_index.T.tolist()))
        assert all((v, u) in edges for (u, v) in edges)

    def test_region_growth_fires_when_cells_are_free(self, tiny_graph):
        # the tiny city occupies the full grid; free a few cells first
        shrunk = GraphDelta(remove_regions=[0, 1, 2, 3]).apply(tiny_graph)
        deltas = generate_evolution(
            shrunk, EvolutionConfig(steps=2, seed=0,
                                    scenarios=("region_growth",),
                                    growth_regions=2))
        assert [d.kind for d in deltas] == ["region_growth", "region_growth"]
        evolved = apply_deltas(shrunk, deltas)
        assert evolved.num_nodes == shrunk.num_nodes + 4
        # appended regions are unlabeled and connected
        assert (evolved.labels[-4:] == -1).all()
        assert (evolved.degree()[-4:] > 0).all()

    def test_region_growth_skipped_on_full_grid(self, tiny_graph):
        assert tiny_graph.num_nodes == int(np.prod(tiny_graph.grid_shape)), \
            "fixture assumption: the tiny city occupies every grid cell"
        deltas = generate_evolution(
            tiny_graph, EvolutionConfig(steps=3, seed=0,
                                        scenarios=("region_growth",)))
        assert deltas == []

    def test_zero_steps(self, tiny_graph):
        assert generate_evolution(tiny_graph, EvolutionConfig(steps=0)) == []
