"""GraphDelta apply / validate / compose semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream import GraphDelta, apply_deltas, compose_deltas
from repro.stream.delta import delta_from_bytes, delta_to_bytes


def edge_set(graph):
    return set(map(tuple, graph.edge_index.T.tolist()))


# ----------------------------------------------------------------------
# construction / normalisation
# ----------------------------------------------------------------------
class TestConstruction:
    def test_empty_delta(self):
        delta = GraphDelta(kind="noop")
        assert delta.is_empty
        assert not delta.touches_topology
        assert not delta.touches_features

    def test_empty_arrays_normalise_to_none(self):
        delta = GraphDelta(poi_rows=np.zeros(0, dtype=np.int64),
                           poi_values=np.zeros((0, 4)))
        assert delta.poi_rows is None and delta.poi_values is None
        assert delta.is_empty

    def test_patch_requires_rows_and_values(self):
        with pytest.raises(ValueError, match="poi_values"):
            GraphDelta(poi_rows=[0, 1])

    def test_patch_row_value_count_mismatch(self):
        with pytest.raises(ValueError, match="row indices"):
            GraphDelta(poi_rows=[0, 1], poi_values=np.zeros((3, 4)))

    def test_duplicate_patch_rows_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            GraphDelta(poi_rows=[1, 1], poi_values=np.zeros((2, 4)))

    def test_non_integer_rows_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            GraphDelta(poi_rows=[0.5], poi_values=np.zeros((1, 4)))

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(ValueError, match=r"\(2, K\)"):
            GraphDelta(add_edges=np.zeros((3, 2), dtype=np.int64))

    def test_region_addition_arrays_must_agree(self):
        with pytest.raises(ValueError, match="disagree"):
            GraphDelta(add_region_index=[10, 11], add_x_poi=np.zeros((3, 4)))

    def test_region_addition_needs_region_index(self):
        with pytest.raises(ValueError, match="add_region_index"):
            GraphDelta(add_x_poi=np.zeros((2, 4)))

    def test_summary_counts(self):
        delta = GraphDelta(poi_rows=[0, 1], poi_values=np.zeros((2, 4)),
                           add_edges=[[0], [1]])
        summary = delta.summary()
        assert summary["patched_regions"] == 2
        assert summary["added_edges"] == 1
        assert summary["topology"] is True


# ----------------------------------------------------------------------
# validation against a graph
# ----------------------------------------------------------------------
class TestValidate:
    def test_patch_out_of_range(self, tiny_graph):
        delta = GraphDelta(poi_rows=[tiny_graph.num_nodes],
                           poi_values=np.zeros((1, tiny_graph.poi_dim)))
        with pytest.raises(ValueError, match="references region"):
            delta.validate(tiny_graph)

    def test_patch_wrong_width(self, tiny_graph):
        delta = GraphDelta(poi_rows=[0],
                           poi_values=np.zeros((1, tiny_graph.poi_dim + 1)))
        with pytest.raises(ValueError, match="feature"):
            delta.validate(tiny_graph)

    def test_remove_missing_edge(self, tiny_graph):
        # self-edges never exist in a built URG
        delta = GraphDelta(remove_edges=[[0], [0]])
        with pytest.raises(ValueError, match="not in the graph"):
            delta.validate(tiny_graph)

    def test_add_existing_edge(self, tiny_graph):
        existing = tiny_graph.edge_index[:, :1]
        delta = GraphDelta(add_edges=existing)
        with pytest.raises(ValueError, match="already exists"):
            delta.validate(tiny_graph)

    def test_add_self_loop_rejected(self, tiny_graph):
        delta = GraphDelta(add_edges=[[3], [3]])
        with pytest.raises(ValueError, match="self-loops"):
            delta.validate(tiny_graph)

    def test_add_edge_out_of_range(self, tiny_graph):
        delta = GraphDelta(add_edges=[[0], [tiny_graph.num_nodes + 5]])
        with pytest.raises(ValueError, match="references region"):
            delta.validate(tiny_graph)

    def test_add_region_on_occupied_cell(self, tiny_graph):
        taken = int(tiny_graph.region_index[0])
        delta = GraphDelta(add_region_index=[taken],
                           add_x_poi=np.zeros((1, tiny_graph.poi_dim)),
                           add_x_img=np.zeros((1, tiny_graph.image_dim)))
        with pytest.raises(ValueError, match="occupied"):
            delta.validate(tiny_graph)

    def test_remove_every_region_rejected(self, tiny_graph):
        delta = GraphDelta(remove_regions=np.arange(tiny_graph.num_nodes))
        with pytest.raises(ValueError, match="every region"):
            delta.validate(tiny_graph)

    def test_bad_labels_rejected(self, tiny_graph):
        graph = GraphDelta(remove_regions=[0]).apply(tiny_graph)
        delta = GraphDelta(add_region_index=[_free_cell(graph)],
                           add_x_poi=np.zeros((1, graph.poi_dim)),
                           add_x_img=np.zeros((1, graph.image_dim)),
                           add_labels=[7])
        with pytest.raises(ValueError, match="add_labels"):
            delta.validate(graph)


def _free_cell(graph):
    """A grid cell without a region (falls back to an occupied one)."""
    cells = int(np.prod(graph.grid_shape))
    free = np.setdiff1d(np.arange(cells), graph.region_index)
    return int(free[0]) if free.size else int(graph.region_index[0])


# ----------------------------------------------------------------------
# application semantics
# ----------------------------------------------------------------------
class TestApply:
    def test_apply_is_pure(self, tiny_graph, rng):
        before = tiny_graph.x_poi.copy()
        delta = GraphDelta(poi_rows=[1], poi_values=rng.normal(size=(1, tiny_graph.poi_dim)))
        updated = delta.apply(tiny_graph)
        assert np.array_equal(tiny_graph.x_poi, before)
        assert not np.array_equal(updated.x_poi[1], before[1])
        assert np.array_equal(updated.x_poi[0], before[0])

    def test_feature_patch_keeps_structure(self, tiny_graph, rng):
        delta = GraphDelta(img_rows=[0, 5], img_values=rng.normal(size=(2, tiny_graph.image_dim)))
        updated = delta.apply(tiny_graph)
        assert updated.structural_fingerprint() == tiny_graph.structural_fingerprint()
        assert updated.fingerprint() != tiny_graph.fingerprint()

    def test_edge_swap(self, tiny_graph):
        drop = tiny_graph.edge_index[:, :2]
        n = tiny_graph.num_nodes
        # find a pair that is not connected
        connected = edge_set(tiny_graph)
        pair = next((u, v) for u in range(n) for v in range(n)
                    if u != v and (u, v) not in connected)
        delta = GraphDelta(remove_edges=drop, add_edges=np.array([[pair[0]], [pair[1]]]))
        updated = delta.apply(tiny_graph)
        assert updated.num_edges == tiny_graph.num_edges - 1
        new_edges = edge_set(updated)
        assert pair in new_edges
        assert tuple(drop[:, 0].tolist()) not in new_edges
        assert updated.structural_fingerprint() != tiny_graph.structural_fingerprint()

    def test_region_growth(self, tiny_graph, rng):
        removed = GraphDelta(remove_regions=[0]).apply(tiny_graph)
        free = _free_cell(removed)
        delta = GraphDelta(
            add_region_index=[free],
            add_x_poi=rng.normal(size=(1, removed.poi_dim)),
            add_x_img=rng.normal(size=(1, removed.image_dim)),
            add_edges=[[removed.num_nodes, 0], [0, removed.num_nodes]],
            add_labels=[1], add_ground_truth=[1])
        updated = delta.apply(removed)
        new_id = removed.num_nodes
        assert updated.num_nodes == removed.num_nodes + 1
        assert updated.labels[new_id] == 1
        assert updated.labeled_mask[new_id]
        assert updated.ground_truth[new_id] == 1
        assert int(updated.region_index[new_id]) == free
        assert (new_id, 0) in edge_set(updated)

    def test_region_growth_defaults_unlabeled(self, tiny_graph, rng):
        removed = GraphDelta(remove_regions=[3]).apply(tiny_graph)
        delta = GraphDelta(
            add_region_index=[_free_cell(removed)],
            add_x_poi=rng.normal(size=(1, removed.poi_dim)),
            add_x_img=rng.normal(size=(1, removed.image_dim)))
        updated = delta.apply(removed)
        assert updated.labels[-1] == -1
        assert not updated.labeled_mask[-1]
        assert updated.ground_truth[-1] == 0

    def test_region_removal_compacts_and_remaps(self, tiny_graph):
        victim = 5
        delta = GraphDelta(remove_regions=[victim])
        updated = delta.apply(tiny_graph)
        assert updated.num_nodes == tiny_graph.num_nodes - 1
        # all edges incident to the victim are gone, others remapped
        old_edges = tiny_graph.edge_index
        incident = (old_edges == victim).any(axis=0)
        assert updated.num_edges == tiny_graph.num_edges - int(incident.sum())
        assert updated.edge_index.max() < updated.num_nodes
        # surviving node data is preserved in order
        keep = np.ones(tiny_graph.num_nodes, dtype=bool)
        keep[victim] = False
        assert np.array_equal(updated.x_poi, tiny_graph.x_poi[keep])
        assert np.array_equal(updated.region_index, tiny_graph.region_index[keep])

    def test_validate_false_skips_checks(self, tiny_graph):
        # removing a non-existent edge silently keeps the graph intact
        delta = GraphDelta(remove_edges=[[0], [0]])
        updated = delta.apply(tiny_graph, validate=False)
        assert updated.num_edges == tiny_graph.num_edges

    def test_apply_deltas_chains(self, tiny_graph, rng):
        d1 = GraphDelta(poi_rows=[0], poi_values=rng.normal(size=(1, tiny_graph.poi_dim)))
        d2 = GraphDelta(remove_regions=[1])
        result = apply_deltas(tiny_graph, [d1, d2])
        assert result.num_nodes == tiny_graph.num_nodes - 1
        assert result.stats["stream_updates"] == 2


# ----------------------------------------------------------------------
# composition
# ----------------------------------------------------------------------
class TestCompose:
    def test_feature_compose_later_wins(self, tiny_graph, rng):
        a = GraphDelta(poi_rows=[0, 1], poi_values=rng.normal(size=(2, tiny_graph.poi_dim)))
        b = GraphDelta(poi_rows=[1, 2], poi_values=rng.normal(size=(2, tiny_graph.poi_dim)))
        combined = a.compose(b)
        sequential = b.apply(a.apply(tiny_graph))
        at_once = combined.apply(tiny_graph)
        assert np.array_equal(sequential.x_poi, at_once.x_poi)
        assert np.array_equal(sequential.x_img, at_once.x_img)

    def test_edge_compose_with_cancellation(self, tiny_graph):
        n = tiny_graph.num_nodes
        connected = edge_set(tiny_graph)
        pair = next((u, v) for u in range(n) for v in range(n)
                    if u != v and (u, v) not in connected)
        add = np.array([[pair[0]], [pair[1]]])
        a = GraphDelta(add_edges=add)
        b = GraphDelta(remove_edges=add)       # removes what a added
        combined = a.compose(b)
        sequential = b.apply(a.apply(tiny_graph))
        at_once = combined.apply(tiny_graph)
        assert edge_set(sequential) == edge_set(at_once)
        assert combined.num_added_edges == 0

    def test_compose_rejects_region_changes(self, tiny_graph):
        a = GraphDelta(remove_regions=[0])
        b = GraphDelta(kind="other")
        with pytest.raises(ValueError, match="sequentially"):
            a.compose(b)
        with pytest.raises(ValueError, match="sequentially"):
            b.compose(a)

    def test_compose_deltas_folds(self, tiny_graph, rng):
        parts = [GraphDelta(poi_rows=[i], poi_values=rng.normal(size=(1, tiny_graph.poi_dim)))
                 for i in range(3)]
        combined = compose_deltas(parts)
        sequential = apply_deltas(tiny_graph, parts)
        assert np.array_equal(combined.apply(tiny_graph).x_poi, sequential.x_poi)

    def test_compose_empty_sequence(self):
        assert compose_deltas([]).is_empty


# ----------------------------------------------------------------------
# bytes round-trip
# ----------------------------------------------------------------------
class TestBytesRoundTrip:
    def test_round_trip_all_fields(self, tiny_graph, rng):
        delta = GraphDelta(
            kind="everything",
            poi_rows=[0, 2], poi_values=rng.normal(size=(2, tiny_graph.poi_dim)),
            img_rows=[1], img_values=rng.normal(size=(1, tiny_graph.image_dim)),
            remove_edges=tiny_graph.edge_index[:, :2],
            add_edges=[[0], [200]],
            remove_regions=[7])
        restored = delta_from_bytes(delta_to_bytes(delta))
        assert restored.kind == "everything"
        for name, array in delta.to_arrays().items():
            assert np.array_equal(array, restored.to_arrays()[name]), name

    def test_corrupt_bytes_raise_value_error(self):
        with pytest.raises(ValueError):
            delta_from_bytes(b"definitely not an npz archive")

    def test_unknown_fields_rejected(self, rng):
        import io
        import json
        buffer = io.BytesIO()
        meta = {"format_version": 1, "kind": "x"}
        np.savez(buffer,
                 meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
                 bogus=np.zeros(3))
        with pytest.raises(ValueError, match="unknown fields"):
            delta_from_bytes(buffer.getvalue())
