"""Tests for the cross-city transfer and master-slave regression extensions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CMSFConfig
from repro.extensions import (CrossCityTransfer, MasterSlaveRegressor,
                              RegressionConfig, TransferConfig,
                              synthetic_region_indicator)
from repro.synth import generate_city, tiny_city
from repro.urg import build_urg

FAST_CMSF = CMSFConfig(hidden_dim=16, image_reduce_dim=16, classifier_hidden=8,
                       maga_layers=1, maga_heads=2, num_clusters=6, context_dim=8,
                       master_epochs=20, slave_epochs=8, patience=None,
                       dropout=0.0, seed=0)


@pytest.fixture(scope="module")
def two_cities():
    """Two small cities sharing the same feature configuration."""
    source = generate_city(tiny_city(seed=21))
    target = generate_city(tiny_city(seed=22))
    return build_urg(source), build_urg(target)


class TestCrossCityTransfer:
    def test_transfer_strategies_produce_metrics(self, two_cities):
        source_graph, target_graph = two_cities
        transfer = CrossCityTransfer(TransferConfig(cmsf=FAST_CMSF, target_epochs=15))
        transfer.pretrain(source_graph)

        labeled = target_graph.labeled_indices()
        half = labeled.size // 2
        results = transfer.transfer(target_graph, labeled[:half], labeled[half:],
                                    strategies=("finetune", "master_slave"))
        assert set(results) == {"finetune", "master_slave"}
        for result in results.values():
            assert result.scores.shape == (target_graph.num_nodes,)
            assert "auc" in result.metrics
            assert len(result.history) > 0

    def test_transfer_before_pretrain_raises(self, two_cities):
        _, target_graph = two_cities
        labeled = target_graph.labeled_indices()
        with pytest.raises(RuntimeError):
            CrossCityTransfer(TransferConfig(cmsf=FAST_CMSF)).transfer(
                target_graph, labeled[:10], labeled[10:])

    def test_unknown_strategy_rejected(self, two_cities):
        source_graph, target_graph = two_cities
        transfer = CrossCityTransfer(TransferConfig(cmsf=FAST_CMSF, target_epochs=5))
        transfer.pretrain(source_graph)
        labeled = target_graph.labeled_indices()
        with pytest.raises(ValueError):
            transfer.transfer(target_graph, labeled[:10], labeled[10:],
                              strategies=("teleport",))


class TestSyntheticIndicator:
    def test_indicator_range_and_structure(self, tiny_city_data, tiny_graph):
        indicator = synthetic_region_indicator(tiny_city_data, tiny_graph, noise=0.0)
        assert indicator.shape == (tiny_graph.num_nodes,)
        assert indicator.min() >= 0.0 and indicator.max() <= 1.0
        # Downtown regions should look more "developed" than urban villages.
        from repro.synth.config import LandUse
        land = tiny_city_data.land_use.land_use.reshape(-1)[tiny_graph.region_index]
        downtown = indicator[land == int(LandUse.DOWNTOWN)]
        villages = indicator[land == int(LandUse.URBAN_VILLAGE)]
        if downtown.size and villages.size:
            assert downtown.mean() > villages.mean()

    def test_noise_is_reproducible(self, tiny_city_data, tiny_graph):
        first = synthetic_region_indicator(tiny_city_data, tiny_graph, seed=5)
        second = synthetic_region_indicator(tiny_city_data, tiny_graph, seed=5)
        np.testing.assert_allclose(first, second)


class TestMasterSlaveRegressor:
    def test_fit_predict_evaluate(self, tiny_city_data, tiny_graph_small_image):
        graph = tiny_graph_small_image
        targets = synthetic_region_indicator(tiny_city_data, graph, noise=0.02)
        rng = np.random.default_rng(0)
        nodes = rng.permutation(graph.num_nodes)
        train, test = nodes[:graph.num_nodes // 2], nodes[graph.num_nodes // 2:]

        config = RegressionConfig(cmsf=FAST_CMSF, epochs=150, learning_rate=3e-3, seed=0)
        regressor = MasterSlaveRegressor(config)
        regressor.fit(graph, targets, train)
        report = regressor.evaluate(graph, targets, test)

        # Better than always predicting the mean, and a small absolute error.
        assert report["mse"] < 0.05
        assert report["r2"] > 0.0
        assert len(regressor.history) == 150
        assert regressor.history[-1] < regressor.history[0]

    def test_predict_before_fit_raises(self, tiny_graph_small_image):
        with pytest.raises(RuntimeError):
            MasterSlaveRegressor().predict(tiny_graph_small_image)

    def test_target_length_mismatch_raises(self, tiny_graph_small_image):
        with pytest.raises(ValueError):
            MasterSlaveRegressor(RegressionConfig(cmsf=FAST_CMSF, epochs=1)).fit(
                tiny_graph_small_image, np.zeros(3), np.array([0, 1]))
