"""Score-drift report over evolving-city trajectories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import DriftReport, score_drift_report


class TestScoreDriftReport:
    def test_identical_trajectories_show_no_drift(self):
        scores = np.linspace(0.0, 1.0, 20)
        report = score_drift_report([scores, scores.copy(), scores.copy()])
        assert report.num_steps == 2
        for step in report.steps:
            assert step.mean_abs_change == 0.0
            assert step.max_abs_change == 0.0
            assert step.rank_correlation == pytest.approx(1.0)
            assert step.crossed_up == step.crossed_down == 0
        assert report.total_crossings == 0
        assert report.total_mean_abs_change == 0.0

    def test_step_statistics(self):
        before = np.array([0.1, 0.4, 0.9])
        after = np.array([0.6, 0.4, 0.3])   # region 0 up-crosses, 2 down-crosses
        report = score_drift_report([before, after], threshold=0.5)
        (step,) = report.steps
        assert step.crossed_up == 1
        assert step.crossed_down == 1
        assert step.max_abs_change == pytest.approx(0.6)
        assert step.mean_abs_change == pytest.approx((0.5 + 0.0 + 0.6) / 3)
        # the ranking reversed between 0 and 2
        assert step.rank_correlation < 1.0

    def test_kinds_and_topology_labels(self):
        a, b, c = np.zeros(4), np.ones(4) * 0.2, np.ones(4) * 0.4
        report = score_drift_report([a, b, c],
                                    kinds=["poi_churn", "road_rewiring"],
                                    topology=[False, True])
        assert [step.kind for step in report.steps] == ["poi_churn",
                                                        "road_rewiring"]
        assert [step.topology for step in report.steps] == [False, True]

    def test_region_growth_compares_shared_prefix(self):
        before = np.array([0.1, 0.2, 0.3])
        after = np.array([0.1, 0.2, 0.3, 0.9])   # one appended region
        report = score_drift_report([before, after])
        (step,) = report.steps
        assert step.regions_before == 3
        assert step.regions_after == 4
        assert step.mean_abs_change == 0.0
        # growth changed the node set: topology inferred when not given
        assert step.topology is True

    def test_mismatched_label_lengths_rejected(self):
        with pytest.raises(ValueError, match="one entry per applied delta"):
            score_drift_report([np.zeros(3), np.ones(3)], kinds=["a", "b"])
        with pytest.raises(ValueError, match="one entry per applied delta"):
            score_drift_report([np.zeros(3), np.ones(3)], topology=[])

    def test_single_trajectory_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            score_drift_report([np.zeros(3)])

    def test_constant_scores_have_defined_rank_corr(self):
        # regression: constant vectors used to yield nan, which a rollout
        # policy could neither promote nor rollback on — two constant
        # vectors now count as perfect rank agreement
        report = score_drift_report([np.full(5, 0.5), np.full(5, 0.7)])
        assert report.steps[0].rank_correlation == 1.0
        assert report.worst_rank_correlation == 1.0

    def test_constant_vs_varying_scores_have_zero_rank_corr(self):
        # a constant vector against a varying one carries no rank
        # information: defined (0.0), never nan
        report = score_drift_report([np.full(4, 0.5),
                                     np.array([0.1, 0.9, 0.3, 0.6])])
        assert report.steps[0].rank_correlation == 0.0
        assert report.worst_rank_correlation == 0.0

    def test_single_region_rank_corr_is_defined(self):
        report = score_drift_report([np.array([0.2]), np.array([0.8])])
        assert report.steps[0].rank_correlation == 1.0
        assert np.isfinite(report.worst_rank_correlation)

    def test_to_dict_round_trips_through_json(self):
        import json
        report = score_drift_report([np.zeros(3), np.ones(3)],
                                    kinds=["imagery_refresh"])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["num_steps"] == 1
        assert payload["steps"][0]["kind"] == "imagery_refresh"
        assert payload["steps"][0]["crossed_up"] == 3

    def test_format_renders_every_step(self):
        report = score_drift_report(
            [np.zeros(4), np.ones(4) * 0.1, np.ones(4)],
            kinds=["poi_churn", "region_growth"])
        text = report.format()
        assert "poi_churn" in text and "region_growth" in text
        assert "threshold crossings" in text
        assert len(text.splitlines()) == 2 + 2 + 2  # header+rule, rows, rule+summary
