"""Tests for spatial statistics and cluster quality measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (cluster_quality, join_count_statistics, morans_i,
                            neighborhood_agreement, silhouette_score)


class TestMoransI:
    def test_ground_truth_is_positively_autocorrelated(self, tiny_graph):
        value = morans_i(tiny_graph, tiny_graph.ground_truth.astype(float))
        assert value > 0.1

    def test_random_values_near_zero(self, tiny_graph, rng):
        values = rng.normal(size=tiny_graph.num_nodes)
        assert abs(morans_i(tiny_graph, values)) < 0.15

    def test_constant_values_return_nan(self, tiny_graph):
        assert np.isnan(morans_i(tiny_graph, np.ones(tiny_graph.num_nodes)))

    def test_mask_restricts_to_subset(self, tiny_graph):
        mask = tiny_graph.labeled_mask
        value = morans_i(tiny_graph, tiny_graph.ground_truth.astype(float), mask=mask)
        assert np.isnan(value) or -1.0 <= value <= 1.5

    def test_wrong_length_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            morans_i(tiny_graph, np.zeros(5))


class TestJoinCounts:
    def test_uv_regions_cluster_on_graph(self, tiny_graph):
        stats = join_count_statistics(tiny_graph, tiny_graph.ground_truth)
        assert stats["joins_11"] + stats["joins_00"] + stats["joins_01"] == stats["edges"]
        # Planted villages are contiguous patches, so UV-UV joins exceed the
        # random-labelling expectation by a wide margin.
        assert stats["clustering_ratio"] > 2.0

    def test_non_binary_values_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            join_count_statistics(tiny_graph, tiny_graph.ground_truth + 5)


class TestNeighborhoodAgreement:
    def test_bounds_and_signal(self, tiny_graph, rng):
        agreement = neighborhood_agreement(tiny_graph, tiny_graph.ground_truth)
        assert 0.0 <= agreement <= 1.0
        shuffled = rng.permutation(tiny_graph.ground_truth)
        assert agreement >= neighborhood_agreement(tiny_graph, shuffled) - 0.05


class TestClusterQuality:
    def test_perfect_clustering(self):
        assignment = np.array([0, 0, 0, 1, 1, 1])
        uv = np.array([1, 1, 1, 0, 0, 0])
        report = cluster_quality(assignment, uv, num_clusters=2)
        assert report.purity == 1.0
        assert report.num_used_clusters == 2
        assert report.uv_concentration == 1.0

    def test_degenerate_single_cluster(self):
        assignment = np.zeros(10, dtype=int)
        uv = np.array([1] * 3 + [0] * 7)
        report = cluster_quality(assignment, uv, num_clusters=4)
        assert report.num_used_clusters == 1
        assert report.purity == pytest.approx(0.7)
        assert report.normalized_entropy == pytest.approx(0.0)

    def test_as_dict_keys(self):
        report = cluster_quality(np.array([0, 1]), np.array([0, 1]), num_clusters=2)
        summary = report.as_dict()
        assert set(summary) >= {"purity", "uv_concentration", "normalized_entropy"}

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            cluster_quality(np.array([0, 1]), np.array([0]))

    def test_with_representations_computes_silhouette(self, rng):
        reps = np.concatenate([rng.normal(0, 0.1, size=(20, 4)),
                               rng.normal(5, 0.1, size=(20, 4))])
        assignment = np.array([0] * 20 + [1] * 20)
        uv = np.array([1] * 20 + [0] * 20)
        report = cluster_quality(assignment, uv, num_clusters=2, representations=reps)
        assert report.silhouette > 0.8


class TestSilhouette:
    def test_well_separated_clusters_score_high(self, rng):
        reps = np.concatenate([rng.normal(0, 0.05, size=(30, 3)),
                               rng.normal(3, 0.05, size=(30, 3))])
        assignment = np.array([0] * 30 + [1] * 30)
        assert silhouette_score(reps, assignment) > 0.9

    def test_single_cluster_returns_nan(self, rng):
        reps = rng.normal(size=(10, 3))
        assert np.isnan(silhouette_score(reps, np.zeros(10, dtype=int)))

    def test_sampling_keeps_score_stable(self, rng):
        reps = np.concatenate([rng.normal(0, 0.2, size=(100, 3)),
                               rng.normal(4, 0.2, size=(100, 3))])
        assignment = np.array([0] * 100 + [1] * 100)
        full = silhouette_score(reps, assignment, sample_size=200)
        sampled = silhouette_score(reps, assignment, sample_size=50,
                                   rng=np.random.default_rng(1))
        assert abs(full - sampled) < 0.1
