"""Tests for calibration, threshold sweeps and error breakdowns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (best_f1_threshold, brier_score, budget_sweep,
                            calibration_report, error_breakdown,
                            precision_recall_curve, screening_report)


class TestCalibration:
    def test_perfectly_calibrated_probabilities(self, rng):
        probabilities = rng.random(5000)
        labels = (rng.random(5000) < probabilities).astype(int)
        report = calibration_report(labels, probabilities, num_bins=10)
        assert report.expected_calibration_error < 0.05
        assert report.brier_score < 0.30

    def test_overconfident_predictions_flagged(self):
        labels = np.array([0, 0, 0, 0, 1])
        probabilities = np.array([0.9, 0.9, 0.9, 0.9, 0.9])
        report = calibration_report(labels, probabilities, num_bins=5)
        assert report.expected_calibration_error > 0.5

    def test_brier_score_bounds(self):
        assert brier_score(np.array([1, 0]), np.array([1.0, 0.0])) == 0.0
        assert brier_score(np.array([1, 0]), np.array([0.0, 1.0])) == 1.0

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            calibration_report(np.array([0, 1]), np.array([0.5, 1.5]))

    def test_report_rows_cover_all_bins(self):
        report = calibration_report(np.array([0, 1, 1, 0]),
                                    np.array([0.1, 0.9, 0.8, 0.3]), num_bins=4)
        assert len(report.as_rows()) == 4
        assert set(report.as_dict()) == {"expected_calibration_error",
                                         "max_calibration_error", "brier_score"}


class TestThresholds:
    def test_precision_recall_monotone_recall(self, rng):
        labels = rng.integers(0, 2, size=100)
        scores = rng.random(100)
        precision, recall, thresholds = precision_recall_curve(labels, scores)
        assert np.all(np.diff(recall) >= -1e-12)
        assert precision.shape == recall.shape == thresholds.shape

    def test_perfect_separation_best_f1_is_one(self):
        labels = np.array([0, 0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.3, 0.8, 0.9])
        best = best_f1_threshold(labels, scores)
        assert best["f1"] == pytest.approx(1.0)
        assert 0.3 < best["threshold"] <= 0.8

    def test_budget_sweep_row_per_budget(self, rng):
        labels = rng.integers(0, 2, size=200)
        scores = rng.random(200)
        rows = budget_sweep(labels, scores, budgets=(1, 5, 10))
        assert [row["budget_percent"] for row in rows] == [1.0, 5.0, 10.0]
        assert all(row["num_selected"] >= 1 for row in rows)

    def test_screening_report_mentions_best_threshold(self, rng):
        labels = rng.integers(0, 2, size=50)
        scores = rng.random(50)
        report = screening_report(labels, scores, budgets=(5, 10))
        assert "best-F1 threshold" in report
        assert len(report.splitlines()) == 4


class TestErrorBreakdown:
    def test_breakdown_structure(self, tiny_city_data, tiny_graph, rng):
        scores = rng.random(tiny_graph.num_nodes)
        breakdown = error_breakdown(tiny_graph, tiny_city_data, scores, top_percent=10.0)
        assert set(breakdown) == {"detected_by_land_use",
                                  "false_alarm_rate_by_land_use",
                                  "miss_rate_by_village_kind"}
        assert all(0.0 <= value <= 1.0
                   for value in breakdown["false_alarm_rate_by_land_use"].values())

    def test_perfect_scores_have_low_miss_rate(self, tiny_city_data, tiny_graph):
        scores = tiny_graph.ground_truth.astype(float)
        uv_fraction = 100.0 * tiny_graph.ground_truth.mean() + 2.0
        breakdown = error_breakdown(tiny_graph, tiny_city_data, scores,
                                    top_percent=uv_fraction)
        for rate in breakdown["miss_rate_by_village_kind"].values():
            assert rate <= 0.2

    def test_score_length_mismatch_raises(self, tiny_city_data, tiny_graph):
        with pytest.raises(ValueError):
            error_breakdown(tiny_graph, tiny_city_data, np.zeros(3))
