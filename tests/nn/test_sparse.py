"""Tests for the sparse/segment operations used by the GNN layers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.sparse import (degree, gather_rows, scatter_rows, segment_max_raw,
                             segment_mean, segment_softmax, segment_sum)
from repro.nn.tensor import Tensor
from tests.nn.test_tensor_autograd import check_gradient


class TestGatherRows:
    def test_gather_values(self, rng):
        x = Tensor(rng.normal(size=(5, 3)))
        index = np.array([0, 4, 4, 2])
        out = gather_rows(x, index)
        np.testing.assert_allclose(out.data, x.data[index])

    def test_gather_gradient_with_repeats(self, rng):
        x_value = rng.normal(size=(5, 3))
        index = np.array([1, 1, 1, 0])
        check_gradient(lambda t: (gather_rows(t, index) ** 2).sum(), x_value)


class TestSegmentSum:
    def test_segment_sum_values(self):
        values = Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        out = segment_sum(values, np.array([0, 0, 2]), 3)
        np.testing.assert_allclose(out.data, [[4.0, 6.0], [0.0, 0.0], [5.0, 6.0]])

    def test_segment_sum_empty_segment_is_zero(self):
        values = Tensor(np.ones((2, 2)))
        out = segment_sum(values, np.array([0, 0]), 4)
        np.testing.assert_allclose(out.data[1:], 0.0)

    def test_segment_sum_gradient(self, rng):
        values = rng.normal(size=(6, 2))
        ids = np.array([0, 1, 1, 2, 2, 2])
        check_gradient(lambda t: (segment_sum(t, ids, 3) ** 2).sum(), values)

    def test_segment_sum_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((3, 2))), np.array([0, 1]), 2)

    def test_segment_sum_out_of_range_raises(self):
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((2, 2))), np.array([0, 5]), 3)

    def test_scatter_rows_alias(self, rng):
        values = Tensor(rng.normal(size=(4, 2)))
        ids = np.array([3, 0, 0, 2])
        np.testing.assert_allclose(scatter_rows(values, ids, 4).data,
                                   segment_sum(values, ids, 4).data)

    def test_segment_sum_3d_values(self, rng):
        values = Tensor(rng.normal(size=(5, 2, 3)))
        ids = np.array([0, 1, 0, 1, 1])
        out = segment_sum(values, ids, 2)
        expected = np.zeros((2, 2, 3))
        for i, seg in enumerate(ids):
            expected[seg] += values.data[i]
        np.testing.assert_allclose(out.data, expected)


class TestSegmentMeanMax:
    def test_segment_mean_values(self):
        values = Tensor(np.array([[2.0], [4.0], [10.0]]))
        out = segment_mean(values, np.array([0, 0, 1]), 3)
        np.testing.assert_allclose(out.data, [[3.0], [10.0], [0.0]])

    def test_segment_max_raw(self):
        values = np.array([1.0, 5.0, -2.0, 3.0])
        out = segment_max_raw(values, np.array([0, 0, 1, 1]), 2)
        np.testing.assert_allclose(out, [5.0, 3.0])

    def test_degree(self):
        ids = np.array([0, 0, 2, 2, 2])
        np.testing.assert_allclose(degree(ids, 4), [2, 0, 3, 0])


class TestSegmentSoftmax:
    def test_sums_to_one_within_each_segment(self, rng):
        scores = Tensor(rng.normal(size=(10,)))
        ids = np.array([0, 0, 0, 1, 1, 2, 2, 2, 2, 3])
        out = segment_softmax(scores, ids, 4).data
        for segment in range(4):
            np.testing.assert_allclose(out[ids == segment].sum(), 1.0, atol=1e-9)

    def test_single_entry_segment_gets_probability_one(self):
        scores = Tensor(np.array([12.3]))
        out = segment_softmax(scores, np.array([0]), 1).data
        np.testing.assert_allclose(out, [1.0], atol=1e-9)

    def test_numerically_stable_with_large_scores(self):
        scores = Tensor(np.array([1000.0, 1001.0, -1000.0]))
        out = segment_softmax(scores, np.array([0, 0, 0]), 1).data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out.sum(), 1.0, atol=1e-9)

    def test_gradient(self, rng):
        scores_value = rng.normal(size=(6,))
        ids = np.array([0, 0, 1, 1, 1, 2])
        check_gradient(lambda t: (segment_softmax(t, ids, 3) ** 2).sum(), scores_value)

    def test_multihead_scores(self, rng):
        scores = Tensor(rng.normal(size=(5, 3)))
        ids = np.array([0, 0, 1, 1, 1])
        out = segment_softmax(scores, ids, 2).data
        for segment in range(2):
            np.testing.assert_allclose(out[ids == segment].sum(axis=0),
                                       np.ones(3), atol=1e-9)

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_property_distribution_per_segment(self, n_edges, n_segments):
        rng = np.random.default_rng(n_edges * 7 + n_segments)
        ids = rng.integers(0, n_segments, size=n_edges)
        scores = Tensor(rng.normal(size=(n_edges,)) * 5)
        out = segment_softmax(scores, ids, n_segments).data
        assert (out >= 0).all() and (out <= 1 + 1e-9).all()
        for segment in np.unique(ids):
            np.testing.assert_allclose(out[ids == segment].sum(), 1.0, atol=1e-8)
