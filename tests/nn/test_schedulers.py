"""Tests for the additional learning-rate schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear
from repro.nn.optim import SGD
from repro.nn.schedulers import CosineAnnealing, LinearWarmup, StepDecay


def _optimizer(lr=0.1):
    module = Linear(3, 2, np.random.default_rng(0))
    return SGD(module.parameters(), lr=lr)


class TestStepDecay:
    def test_rate_halves_every_step_size(self):
        optimizer = _optimizer(lr=0.1)
        scheduler = StepDecay(optimizer, step_size=2, gamma=0.5)
        rates = [scheduler.step() for _ in range(6)]
        assert rates[0] == pytest.approx(0.1)
        assert rates[1] == pytest.approx(0.05)
        assert rates[3] == pytest.approx(0.025)
        assert rates[5] == pytest.approx(0.0125)

    def test_min_lr_floor(self):
        optimizer = _optimizer(lr=1e-7)
        scheduler = StepDecay(optimizer, step_size=1, gamma=0.1, min_lr=1e-8)
        for _ in range(5):
            scheduler.step()
        assert optimizer.lr == pytest.approx(1e-8)

    def test_reset_restores_initial_rate(self):
        optimizer = _optimizer(lr=0.2)
        scheduler = StepDecay(optimizer, step_size=1, gamma=0.5)
        scheduler.step()
        scheduler.reset()
        assert optimizer.lr == pytest.approx(0.2)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            StepDecay(_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepDecay(_optimizer(), step_size=1, gamma=1.5)


class TestCosineAnnealing:
    def test_monotone_decrease_to_min(self):
        optimizer = _optimizer(lr=0.1)
        scheduler = CosineAnnealing(optimizer, total_epochs=10, min_lr=0.001)
        rates = [scheduler.step() for _ in range(10)]
        assert all(b <= a + 1e-12 for a, b in zip(rates, rates[1:]))
        assert rates[-1] == pytest.approx(0.001)

    def test_rate_stays_at_min_after_horizon(self):
        optimizer = _optimizer(lr=0.1)
        scheduler = CosineAnnealing(optimizer, total_epochs=4, min_lr=0.01)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.01)

    def test_halfway_rate_is_midpoint(self):
        optimizer = _optimizer(lr=0.2)
        scheduler = CosineAnnealing(optimizer, total_epochs=2, min_lr=0.0)
        first = scheduler.step()
        assert first == pytest.approx(0.1)


class TestLinearWarmup:
    def test_ramps_to_base_rate(self):
        optimizer = _optimizer(lr=0.1)
        scheduler = LinearWarmup(optimizer, warmup_epochs=4)
        assert optimizer.lr == pytest.approx(0.025)
        rates = [scheduler.step() for _ in range(4)]
        assert rates[-1] == pytest.approx(0.1)
        assert all(b >= a for a, b in zip(rates, rates[1:]))

    def test_hands_over_to_wrapped_scheduler(self):
        optimizer = _optimizer(lr=0.1)
        after = StepDecay(optimizer, step_size=1, gamma=0.5)
        scheduler = LinearWarmup(optimizer, warmup_epochs=2, after=after)
        scheduler.step()
        scheduler.step()               # warm-up complete, lr == 0.1
        assert optimizer.lr == pytest.approx(0.1)
        assert scheduler.step() == pytest.approx(0.05)

    def test_reset(self):
        optimizer = _optimizer(lr=0.1)
        scheduler = LinearWarmup(optimizer, warmup_epochs=2)
        scheduler.step()
        scheduler.reset()
        assert optimizer.lr == pytest.approx(0.05)

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            LinearWarmup(_optimizer(), warmup_epochs=0)
