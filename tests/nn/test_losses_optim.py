"""Tests for loss functions, optimisers and the LR schedule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear
from repro.nn import functional as F
from repro.nn.losses import (bce_with_logits, binary_cross_entropy,
                             class_balanced_weights, mse_loss, pu_rank_loss)
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, ExponentialDecay
from repro.nn.tensor import Tensor
from tests.nn.test_tensor_autograd import check_gradient


class TestBinaryCrossEntropy:
    def test_matches_manual_value(self):
        probs = Tensor(np.array([0.9, 0.1, 0.8]))
        targets = np.array([1.0, 0.0, 0.0])
        expected = -(np.log(0.9) + np.log(0.9) + np.log(0.2)) / 3
        assert binary_cross_entropy(probs, targets).item() == pytest.approx(expected)

    def test_perfect_prediction_is_near_zero(self):
        probs = Tensor(np.array([1.0, 0.0]))
        loss = binary_cross_entropy(probs, np.array([1.0, 0.0]))
        assert loss.item() < 1e-6

    def test_weights_change_the_loss(self):
        probs = Tensor(np.array([0.6, 0.6]))
        targets = np.array([1.0, 0.0])
        unweighted = binary_cross_entropy(probs, targets).item()
        weighted = binary_cross_entropy(probs, targets,
                                        weights=np.array([10.0, 1.0])).item()
        assert weighted != pytest.approx(unweighted)

    def test_gradient(self, rng):
        logits = rng.normal(size=(8,))
        targets = (rng.random(8) > 0.5).astype(float)
        check_gradient(lambda t: binary_cross_entropy(F.sigmoid(t), targets), logits)

    def test_bce_with_logits_matches_probability_form(self, rng):
        logits = rng.normal(size=(10,))
        targets = (rng.random(10) > 0.5).astype(float)
        a = bce_with_logits(Tensor(logits), targets).item()
        b = binary_cross_entropy(F.sigmoid(Tensor(logits)), targets).item()
        assert a == pytest.approx(b, rel=1e-6)

    def test_bce_with_logits_stable_for_extreme_logits(self):
        logits = Tensor(np.array([1e4, -1e4]))
        loss = bce_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())


class TestPuRankLoss:
    def test_zero_when_positive_outranks_by_margin(self):
        probs = Tensor(np.array([1.0, 0.0, 0.0]))
        labels = np.array([1, 0, 0])
        assert pu_rank_loss(probs, labels).item() == pytest.approx(0.0)

    def test_positive_when_ranking_is_wrong(self):
        probs = Tensor(np.array([0.0, 1.0]))
        labels = np.array([1, 0])
        # diff = -1, margin term = (1 - (-1))^2 = 4
        assert pu_rank_loss(probs, labels).item() == pytest.approx(4.0)

    def test_degenerate_sets_return_zero(self):
        probs = Tensor(np.array([0.3, 0.4]))
        assert pu_rank_loss(probs, np.array([1, 1])).item() == 0.0
        assert pu_rank_loss(probs, np.array([0, 0])).item() == 0.0

    def test_gradient_pushes_positives_up(self):
        scores = Tensor(np.array([0.2, 0.8, 0.3]), requires_grad=True)
        labels = np.array([1, 0, 0])
        pu_rank_loss(scores, labels).backward()
        assert scores.grad[0] < 0          # increasing the positive reduces loss
        assert scores.grad[1] > 0           # decreasing the unlabeled reduces loss

    def test_gradient_numeric(self, rng):
        values = rng.random(6)
        labels = np.array([1, 1, 0, 0, 0, 1])
        check_gradient(lambda t: pu_rank_loss(t, labels), values)


class TestOtherLosses:
    def test_mse_loss_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_class_balanced_weights_sum_property(self):
        labels = np.array([1, 0, 0, 0, 0, 0, 0, 0, 0, 1])
        weights = class_balanced_weights(labels)
        # positives get upweighted, negatives downweighted
        assert weights[labels == 1].mean() > weights[labels == 0].mean()
        assert weights.sum() == pytest.approx(len(labels))

    def test_class_balanced_weights_single_class(self):
        weights = class_balanced_weights(np.zeros(5))
        assert np.isfinite(weights).all()


class _Quadratic:
    """Simple quadratic objective f(w) = ||w - target||^2 for optimiser tests."""

    def __init__(self, target):
        self.w = Parameter(np.zeros_like(target))
        self.target = target

    def loss(self):
        diff = self.w - Tensor(self.target)
        return (diff * diff).sum()


class TestOptimizers:
    def test_sgd_converges_on_quadratic(self):
        problem = _Quadratic(np.array([1.0, -2.0, 3.0]))
        optimizer = SGD([problem.w], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            problem.loss().backward()
            optimizer.step()
        np.testing.assert_allclose(problem.w.data, problem.target, atol=1e-3)

    def test_sgd_momentum_converges_faster_than_plain(self):
        target = np.array([2.0, 2.0])
        plain, momentum = _Quadratic(target), _Quadratic(target)
        opt_plain = SGD([plain.w], lr=0.01)
        opt_momentum = SGD([momentum.w], lr=0.01, momentum=0.9)
        for _ in range(50):
            for problem, optimizer in ((plain, opt_plain), (momentum, opt_momentum)):
                optimizer.zero_grad()
                problem.loss().backward()
                optimizer.step()
        assert momentum.loss().item() < plain.loss().item()

    def test_adam_converges_on_quadratic(self):
        problem = _Quadratic(np.array([0.5, -0.5]))
        optimizer = Adam([problem.w], lr=0.05)
        for _ in range(300):
            optimizer.zero_grad()
            problem.loss().backward()
            optimizer.step()
        np.testing.assert_allclose(problem.w.data, problem.target, atol=1e-2)

    def test_adam_trains_a_linear_classifier(self, rng):
        # Separable 2-D problem: Adam + BCE should reach high training accuracy.
        n = 200
        x = rng.normal(size=(n, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(float)
        layer = Linear(2, 1, rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        for _ in range(150):
            optimizer.zero_grad()
            probs = F.sigmoid(layer(Tensor(x)).reshape(-1))
            binary_cross_entropy(probs, y).backward()
            optimizer.step()
        predictions = (F.sigmoid(layer(Tensor(x)).reshape(-1)).data > 0.5).astype(float)
        assert (predictions == y).mean() > 0.95

    def test_gradient_clipping_limits_update(self):
        param = Parameter(np.zeros(4))
        optimizer = SGD([param], lr=1.0, max_grad_norm=1.0)
        param.grad = np.full(4, 100.0)
        optimizer.step()
        assert np.linalg.norm(param.data) <= 1.0 + 1e-9

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.ones(3) * 10)
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(3)
        optimizer.step()
        assert (param.data < 10).all()

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)


class TestExponentialDecay:
    def test_decay_rate_matches_paper_setting(self):
        optimizer = SGD([Parameter(np.ones(1))], lr=1.0)
        scheduler = ExponentialDecay(optimizer, decay_rate=0.001)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.999)
        for _ in range(9):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.999 ** 10)

    def test_minimum_learning_rate_floor(self):
        optimizer = SGD([Parameter(np.ones(1))], lr=1e-7)
        scheduler = ExponentialDecay(optimizer, decay_rate=0.5, min_lr=1e-7)
        scheduler.step()
        assert optimizer.lr == pytest.approx(1e-7)

    def test_reset_restores_initial(self):
        optimizer = SGD([Parameter(np.ones(1))], lr=0.3)
        scheduler = ExponentialDecay(optimizer, decay_rate=0.1)
        scheduler.step()
        scheduler.reset()
        assert optimizer.lr == pytest.approx(0.3)

    def test_invalid_decay_rate(self):
        optimizer = SGD([Parameter(np.ones(1))], lr=0.3)
        with pytest.raises(ValueError):
            ExponentialDecay(optimizer, decay_rate=1.5)
