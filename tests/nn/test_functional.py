"""Tests for activations, softmax and dropout (repro.nn.functional)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.nn.test_tensor_autograd import check_gradient


class TestActivationValues:
    def test_relu_values(self):
        x = Tensor(np.array([-2.0, 0.0, 3.0]))
        np.testing.assert_allclose(F.relu(x).data, [0.0, 0.0, 3.0])

    def test_leaky_relu_values(self):
        x = Tensor(np.array([-2.0, 0.0, 3.0]))
        np.testing.assert_allclose(F.leaky_relu(x, 0.1).data, [-0.2, 0.0, 3.0])

    def test_sigmoid_bounds_and_symmetry(self):
        x = Tensor(np.array([-100.0, 0.0, 100.0]))
        out = F.sigmoid(x).data
        assert out[0] == pytest.approx(0.0, abs=1e-30)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0)

    def test_sigmoid_no_overflow_on_large_negative(self):
        x = Tensor(np.array([-1e4]))
        out = F.sigmoid(x).data
        assert np.isfinite(out).all()

    def test_tanh_matches_numpy(self, rng):
        x = rng.normal(size=(5,))
        np.testing.assert_allclose(F.tanh(Tensor(x)).data, np.tanh(x))

    def test_elu_values(self):
        x = Tensor(np.array([-1.0, 2.0]))
        out = F.elu(x).data
        assert out[0] == pytest.approx(np.expm1(-1.0))
        assert out[1] == pytest.approx(2.0)

    def test_get_activation_lookup(self):
        assert F.get_activation("relu") is F.relu
        assert F.get_activation(None) is F.identity
        assert F.get_activation("NONE") is F.identity
        with pytest.raises(KeyError):
            F.get_activation("swishish")


class TestActivationGradients:
    def test_relu_gradient(self, rng):
        x = rng.normal(size=(4, 3)) + 0.05
        check_gradient(lambda t: F.relu(t).sum(), x)

    def test_leaky_relu_gradient(self, rng):
        x = rng.normal(size=(4, 3)) + 0.05
        check_gradient(lambda t: F.leaky_relu(t, 0.2).sum(), x)

    def test_elu_gradient(self, rng):
        x = rng.normal(size=(4, 3))
        check_gradient(lambda t: F.elu(t).sum(), x, atol=1e-4)

    def test_sigmoid_gradient(self, rng):
        x = rng.normal(size=(4, 3))
        check_gradient(lambda t: (F.sigmoid(t) ** 2).sum(), x)

    def test_tanh_gradient(self, rng):
        x = rng.normal(size=(4, 3))
        check_gradient(lambda t: (F.tanh(t) ** 2).sum(), x)

    def test_softmax_gradient(self, rng):
        x = rng.normal(size=(5, 4))
        check_gradient(lambda t: (F.softmax(t, axis=-1) ** 2).sum(), x)

    def test_softmax_with_temperature_gradient(self, rng):
        x = rng.normal(size=(3, 6))
        check_gradient(lambda t: (F.softmax(t, axis=-1, temperature=0.3) ** 2).sum(), x)

    def test_log_softmax_gradient(self, rng):
        x = rng.normal(size=(4, 4))
        check_gradient(lambda t: (F.log_softmax(t, axis=-1) * Tensor(np.eye(4))).sum(), x)


class TestSoftmaxProperties:
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=2, max_value=8),
           st.floats(min_value=0.05, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_softmax_rows_sum_to_one(self, rows, cols, temperature):
        rng = np.random.default_rng(rows * 100 + cols)
        x = Tensor(rng.normal(size=(rows, cols)) * 3)
        out = F.softmax(x, axis=-1, temperature=temperature).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(rows), atol=1e-9)
        assert (out >= 0).all()

    def test_lower_temperature_sharpens(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0]]))
        soft = F.softmax(x, temperature=1.0).data
        sharp = F.softmax(x, temperature=0.1).data
        assert sharp.max() > soft.max()

    def test_softmax_invalid_temperature(self):
        with pytest.raises(ValueError):
            F.softmax(Tensor(np.ones(3)), temperature=0.0)

    def test_softmax_invariant_to_shift(self, rng):
        x = rng.normal(size=(2, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_consistent_with_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(np.exp(F.log_softmax(x).data), F.softmax(x).data,
                                   atol=1e-12)


class TestDropout:
    def test_dropout_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)), requires_grad=True)
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_dropout_zero_probability_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        assert F.dropout(x, 0.0, rng, training=True) is x

    def test_dropout_scales_surviving_entries(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 50)))
        out = F.dropout(x, 0.5, rng, training=True).data
        surviving = out[out != 0]
        # Inverted dropout rescales kept units by 1/keep_prob.
        np.testing.assert_allclose(surviving, 2.0)
        assert 0.3 < (out == 0).mean() < 0.7

    def test_dropout_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, rng)

    def test_dropout_gradient_masks_match_forward(self):
        rng = np.random.default_rng(3)
        x = Tensor(np.ones((6, 6)), requires_grad=True)
        out = F.dropout(x, 0.4, rng, training=True)
        out.sum().backward()
        # Gradient must be zero exactly where the forward output was dropped.
        np.testing.assert_allclose((out.data == 0), (x.grad == 0))
