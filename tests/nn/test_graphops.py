"""Tests for the precomputed graph compute plans (EdgePlan / SegmentPlan).

The contract under test is twofold:

1. plan-based primitives compute the same thing as the naive ``np.add.at``
   reference — values *and* gradients — across random shapes, empty-edge
   graphs, single-node graphs and both supported dtypes;
2. for float64, plan-based results are **bit-identical** to the legacy
   per-call kernels, because the plan only moves structural work out of the
   hot path without changing the arithmetic order.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.graphops import (EdgePlan, SegmentPlan, affected_regions,
                               clear_plan_cache, plan_cache_info)
from repro.nn.sparse import (gather_rows, segment_max_raw, segment_mean,
                             segment_softmax, segment_sum)
from repro.nn.tensor import Tensor, dtype_scope


def _reference_scatter_sum(ids, values, num_segments):
    out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
    np.add.at(out, ids, values)
    return out


class TestSegmentPlan:
    def test_validates_once_at_construction(self):
        with pytest.raises(ValueError):
            SegmentPlan(np.array([0, 7]), 3)
        with pytest.raises(ValueError):
            SegmentPlan(np.array([-1, 0]), 3)
        with pytest.raises(ValueError):
            SegmentPlan(np.array([[0, 1]]), 3)

    @given(st.integers(min_value=0, max_value=40),
           st.integers(min_value=1, max_value=9),
           st.integers(min_value=1, max_value=4),
           st.sampled_from([np.float32, np.float64]))
    @settings(max_examples=40, deadline=None)
    def test_scatter_sum_matches_add_at(self, n_entries, n_segments, cols, dtype):
        rng = np.random.default_rng(n_entries * 31 + n_segments * 7 + cols)
        ids = rng.integers(0, n_segments, size=n_entries)
        values = rng.normal(size=(n_entries, cols)).astype(dtype)
        plan = SegmentPlan(ids, n_segments)
        out = plan.scatter_sum(values)
        assert out.dtype == dtype
        np.testing.assert_allclose(
            out, _reference_scatter_sum(plan.ids, values, n_segments),
            rtol=1e-5 if dtype == np.float32 else 1e-12)

    @given(st.integers(min_value=0, max_value=40),
           st.integers(min_value=1, max_value=9))
    @settings(max_examples=30, deadline=None)
    def test_segment_max_matches_maximum_at(self, n_entries, n_segments):
        rng = np.random.default_rng(n_entries * 13 + n_segments)
        ids = rng.integers(0, n_segments, size=n_entries)
        values = rng.normal(size=(n_entries, 2))
        plan = SegmentPlan(ids, n_segments)
        reference = np.full((n_segments, 2), -np.inf)
        np.maximum.at(reference, ids, values)
        np.testing.assert_array_equal(plan.segment_max(values), reference)

    def test_counts_and_gather(self):
        plan = SegmentPlan(np.array([2, 0, 2, 2]), 4)
        np.testing.assert_array_equal(plan.counts, [1, 0, 3, 0])
        values = np.arange(8.0).reshape(4, 2)
        np.testing.assert_array_equal(plan.gather(values),
                                      values[[2, 0, 2, 2]])

    def test_empty_ids(self):
        plan = SegmentPlan(np.zeros(0, dtype=np.int64), 3)
        out = plan.scatter_sum(np.zeros((0, 2)))
        np.testing.assert_array_equal(out, np.zeros((3, 2)))
        np.testing.assert_array_equal(plan.segment_max(np.zeros((0, 2))),
                                      np.full((3, 2), -np.inf))


class TestEdgePlan:
    def test_appends_self_loops(self):
        edges = np.array([[0, 1], [1, 2]])
        plan = EdgePlan(edges, 3)
        assert plan.num_edges == 2 + 3
        np.testing.assert_array_equal(plan.src[-3:], [0, 1, 2])
        np.testing.assert_array_equal(plan.dst[-3:], [0, 1, 2])
        bare = EdgePlan(edges, 3, self_loops=False)
        assert bare.num_edges == 2

    def test_degrees_include_self_loops(self):
        plan = EdgePlan(np.array([[0, 1], [1, 2]]), 3)
        np.testing.assert_array_equal(plan.degrees, [1, 2, 2])

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError):
            EdgePlan(np.array([[0], [5]]), 3)
        with pytest.raises(ValueError):
            EdgePlan(np.zeros((3, 4), dtype=np.int64), 5)

    def test_empty_edge_graph(self):
        plan = EdgePlan(np.zeros((2, 0), dtype=np.int64), 4)
        assert plan.num_edges == 4  # just the self-loops
        np.testing.assert_array_equal(plan.degrees, np.ones(4))

    def test_single_node_graph(self):
        plan = EdgePlan(np.zeros((2, 0), dtype=np.int64), 1)
        values = Tensor(np.array([[3.0, 4.0]]), requires_grad=True)
        out = segment_sum(gather_rows(values, plan.src_plan), plan.dst_plan, 1)
        np.testing.assert_array_equal(out.data, [[3.0, 4.0]])
        out.sum().backward()
        np.testing.assert_array_equal(values.grad, [[1.0, 1.0]])

    def test_for_edges_caches_by_content(self):
        clear_plan_cache()
        edges = np.array([[0, 1, 2], [1, 2, 0]])
        first = EdgePlan.for_edges(edges, 3)
        second = EdgePlan.for_edges(edges.copy(), 3)  # same content, new array
        assert first is second
        assert plan_cache_info()["entries"] == 1
        different = EdgePlan.for_edges(edges, 4)
        assert different is not first

    def test_for_graph(self, tiny_graph):
        plan = EdgePlan.for_graph(tiny_graph)
        assert plan.num_nodes == tiny_graph.num_nodes
        assert plan.num_edges == tiny_graph.num_edges + tiny_graph.num_nodes
        assert EdgePlan.for_graph(tiny_graph) is plan

    def test_gcn_norm_matches_legacy_formula(self):
        plan = EdgePlan(np.array([[0, 1, 1], [1, 0, 2]]), 3)
        degree = np.maximum(plan.degrees.astype(np.float64), 1.0)
        expected = 1.0 / np.sqrt(degree[plan.src] * degree[plan.dst])
        np.testing.assert_array_equal(plan.gcn_norm(np.float64), expected)
        assert plan.gcn_norm(np.float32).dtype == np.float32


def _random_graph(rng, n_nodes, n_edges):
    edges = rng.integers(0, n_nodes, size=(2, n_edges)).astype(np.int64)
    return EdgePlan(edges, n_nodes)


class TestPlanPrimitivesBitIdentical:
    """Plan-based ops versus the raw-id legacy path, values and gradients."""

    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=60),
           st.integers(min_value=1, max_value=3),
           st.sampled_from([np.float32, np.float64]))
    @settings(max_examples=40, deadline=None)
    def test_segment_sum_and_gradient(self, n_nodes, n_edges, cols, dtype):
        rng = np.random.default_rng(n_nodes * 101 + n_edges * 3 + cols)
        plan = _random_graph(rng, n_nodes, n_edges)
        raw = rng.normal(size=(plan.num_edges, cols)).astype(dtype)

        with dtype_scope(dtype):
            legacy_in = Tensor(raw.copy(), requires_grad=True)
            legacy = segment_sum(legacy_in, plan.dst, n_nodes)
            (legacy * legacy).sum().backward()

            planned_in = Tensor(raw.copy(), requires_grad=True)
            planned = segment_sum(planned_in, plan.dst_plan, n_nodes)
            (planned * planned).sum().backward()

        np.testing.assert_array_equal(planned.data, legacy.data)
        np.testing.assert_array_equal(planned_in.grad, legacy_in.grad)

    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=60),
           st.sampled_from([np.float32, np.float64]))
    @settings(max_examples=40, deadline=None)
    def test_gather_rows_and_gradient(self, n_nodes, n_edges, dtype):
        rng = np.random.default_rng(n_nodes * 17 + n_edges)
        plan = _random_graph(rng, n_nodes, n_edges)
        raw = rng.normal(size=(n_nodes, 3)).astype(dtype)

        with dtype_scope(dtype):
            legacy_in = Tensor(raw.copy(), requires_grad=True)
            legacy = gather_rows(legacy_in, plan.src)
            (legacy * legacy).sum().backward()

            planned_in = Tensor(raw.copy(), requires_grad=True)
            planned = gather_rows(planned_in, plan.src_plan)
            (planned * planned).sum().backward()

        np.testing.assert_array_equal(planned.data, legacy.data)
        # The backward scatter goes through the prebuilt CSR operator, which
        # sums in the same order as the per-call matrix: exact match.
        np.testing.assert_array_equal(planned_in.grad, legacy_in.grad)

    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_segment_softmax_and_gradient(self, n_nodes, n_edges):
        rng = np.random.default_rng(n_nodes * 29 + n_edges)
        plan = _random_graph(rng, n_nodes, n_edges)
        raw = rng.normal(size=(plan.num_edges, 2)) * 4

        legacy_in = Tensor(raw.copy(), requires_grad=True)
        legacy = segment_softmax(legacy_in, plan.dst, n_nodes)
        (legacy * legacy).sum().backward()

        planned_in = Tensor(raw.copy(), requires_grad=True)
        planned = segment_softmax(planned_in, plan.dst_plan, n_nodes)
        (planned * planned).sum().backward()

        np.testing.assert_array_equal(planned.data, legacy.data)
        np.testing.assert_array_equal(planned_in.grad, legacy_in.grad)
        # Softmax still normalises within every populated segment.
        for segment in np.unique(plan.dst):
            np.testing.assert_allclose(
                planned.data[plan.dst == segment].sum(axis=0), 1.0, atol=1e-8)

    def test_segment_mean_matches_legacy(self):
        plan = EdgePlan(np.array([[0, 1, 2, 2], [1, 1, 0, 2]]), 3)
        values = np.arange(plan.num_edges * 2, dtype=np.float64).reshape(-1, 2)
        legacy = segment_mean(Tensor(values), plan.dst, 3)
        planned = segment_mean(Tensor(values), plan.dst_plan, 3)
        np.testing.assert_array_equal(planned.data, legacy.data)

    def test_segment_max_raw_matches_legacy(self):
        plan = EdgePlan(np.array([[0, 1, 2, 2], [1, 1, 0, 2]]), 3)
        values = np.array([5.0, -1.0, 3.0, 9.0, 0.0, 1.0, 2.0])
        legacy = segment_max_raw(values, plan.dst, 3)
        planned = segment_max_raw(values, plan.dst_plan, 3)
        np.testing.assert_array_equal(planned, legacy)

    def test_plan_num_segments_mismatch_raises(self):
        plan = EdgePlan(np.array([[0], [1]]), 3)
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((plan.num_edges, 1))), plan.dst_plan, 5)


class TestAffectedRegions:
    """Receptive-field expansion over edge arrays and plans."""

    def _chain_plan(self, n=8):
        # 0 -> 1 -> 2 -> ... -> n-1 (directed chain)
        edges = np.stack([np.arange(n - 1), np.arange(1, n)])
        return EdgePlan(edges, n)

    def test_out_expansion_follows_message_flow(self):
        plan = self._chain_plan()
        assert affected_regions(plan, [2], 0).tolist() == [2]
        assert affected_regions(plan, [2], 1).tolist() == [2, 3]
        assert affected_regions(plan, [2], 3).tolist() == [2, 3, 4, 5]

    def test_in_expansion_is_the_transpose(self):
        plan = self._chain_plan()
        assert affected_regions(plan, [4], 2, direction="in").tolist() == [2, 3, 4]

    def test_both_directions(self):
        plan = self._chain_plan()
        assert affected_regions(plan, [4], 1,
                                direction="both").tolist() == [3, 4, 5]

    def test_raw_edge_arrays_do_not_imply_self_loops(self):
        edges = np.stack([np.arange(7), np.arange(1, 8)])
        got = affected_regions(edges, [2], 2, num_nodes=8)
        assert got.tolist() == [2, 3, 4]

    def test_converges_early_on_saturation(self):
        plan = self._chain_plan(4)
        assert affected_regions(plan, [0], 100).tolist() == [0, 1, 2, 3]

    def test_validates_inputs(self):
        plan = self._chain_plan()
        with pytest.raises(ValueError, match="direction"):
            affected_regions(plan, [0], 1, direction="sideways")
        with pytest.raises(ValueError, match="hops"):
            affected_regions(plan, [0], -1)
        with pytest.raises(ValueError, match="touched"):
            affected_regions(plan, [99], 1)
        with pytest.raises(ValueError, match="num_nodes"):
            affected_regions(np.zeros((2, 0), dtype=np.int64), [0], 1)


class TestSubPlan:
    def _grid_plan(self):
        # 4x4 grid, symmetric 4-neighbourhood
        n = 16
        edges = []
        for r in range(4):
            for c in range(4):
                i = r * 4 + c
                if c < 3:
                    edges += [(i, i + 1), (i + 1, i)]
                if r < 3:
                    edges += [(i, i + 4), (i + 4, i)]
        return EdgePlan(np.asarray(edges, dtype=np.int64).T, n)

    def test_induced_subgraph_preserves_per_dst_edge_order(self):
        plan = self._grid_plan()
        sub = plan.subplan(np.array([5]), halo=2)
        # every interior in-edge must be present, relabelled, in the same
        # relative order as the parent (raw edges first, self-loop last)
        interior_local = sub.interior_local[0]
        parent_srcs = plan.src[plan.dst == 5]
        sub_srcs = sub.nodes[sub.plan.src[sub.plan.dst == interior_local]]
        assert parent_srcs.tolist() == sub_srcs.tolist()

    def test_halo_covers_receptive_field(self):
        plan = self._grid_plan()
        sub = plan.subplan(np.array([5]), halo=2)
        expected = affected_regions(plan, [5], 2, direction="in")
        assert sub.nodes.tolist() == expected.tolist()
        assert sub.interior.tolist() == [5]

    def test_subplan_is_cached_content_keyed(self):
        plan = self._grid_plan()
        before = plan_cache_info()["subplan_builds"]
        first = plan.subplan(np.array([1, 2]), halo=1)
        again = plan.subplan(np.array([2, 1, 2]), halo=1)
        assert again is first
        assert plan_cache_info()["subplan_builds"] == before + 1
        other = plan.subplan(np.array([1, 2]), halo=2)
        assert other is not first
        assert plan_cache_info()["subplan_builds"] == before + 2

    def test_local_of_rejects_outside_ids(self):
        plan = self._grid_plan()
        sub = plan.subplan(np.array([0]), halo=1)
        with pytest.raises(ValueError, match="outside"):
            sub.local_of(np.array([15]))

    def test_interior_validation(self):
        plan = self._grid_plan()
        with pytest.raises(ValueError, match="interior"):
            plan.subplan(np.array([], dtype=np.int64))
        with pytest.raises(ValueError, match="range"):
            plan.subplan(np.array([99]))


class TestFrontier:
    def test_gathers_every_in_edge_in_parent_order(self):
        edges = np.array([[0, 1, 2, 0], [1, 1, 1, 2]])
        plan = EdgePlan(edges, 3)
        frontier = plan.frontier(np.array([1]))
        # parent order for dst 1: raw edges (0,1), (1,1), (2,1), then loop
        assert frontier.edge_src.tolist() == [0, 1, 2, 1]
        assert frontier.edge_dst.tolist() == [1, 1, 1, 1]
        assert frontier.seg.ids.tolist() == [0, 0, 0, 0]
        assert frontier.num_dst == 1

    def test_multiple_dsts_group_contiguously(self):
        edges = np.array([[0, 1, 2, 0], [1, 1, 1, 2]])
        plan = EdgePlan(edges, 3)
        frontier = plan.frontier(np.array([0, 2]))
        # dst 0 has only its self-loop; dst 2 has (0,2) then its loop
        assert frontier.edge_src.tolist() == [0, 0, 2]
        assert frontier.seg.ids.tolist() == [0, 1, 1]

    def test_segment_reductions_match_full_plan(self):
        rng = np.random.default_rng(0)
        n, m = 30, 200
        edges = rng.integers(0, n, size=(2, m))
        plan = EdgePlan(edges, n)
        values = rng.normal(size=(plan.num_edges, 3))
        full = plan.dst_plan.scatter_sum(values)
        dsts = np.unique(rng.integers(0, n, size=10))
        frontier = plan.frontier(dsts)
        # gather the same per-edge values through the frontier's positions
        order = np.argsort(plan.dst, kind="stable")
        lookup = {}
        for pos in order:
            lookup.setdefault(int(plan.dst[pos]), []).append(pos)
        positions = np.concatenate([lookup[int(d)] for d in dsts])
        sub = frontier.seg.scatter_sum(values[positions])
        assert np.array_equal(sub, full[dsts])

    def test_validates_dst_nodes(self):
        plan = EdgePlan(np.array([[0], [1]]), 2)
        with pytest.raises(ValueError, match="sorted"):
            plan.frontier(np.array([1, 0]))
        with pytest.raises(ValueError, match="range"):
            plan.frontier(np.array([5]))
        with pytest.raises(ValueError, match="destination"):
            plan.frontier(np.array([], dtype=np.int64))
