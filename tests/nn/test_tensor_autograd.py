"""Gradient correctness of the autodiff core.

Every differentiable operation is checked against central finite differences
on random inputs.  If these tests pass, the CMSF training code can trust the
gradients it receives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import (Tensor, as_tensor, concatenate, maximum, no_grad,
                             stack, where)


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued function."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss, x_value: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autograd gradient against finite differences."""
    x = Tensor(x_value.copy(), requires_grad=True)
    loss = build_loss(x)
    loss.backward()
    analytic = x.grad.copy()

    def scalar_fn(value: np.ndarray) -> float:
        return float(build_loss(Tensor(value)).item())

    numeric = numerical_gradient(scalar_fn, x_value.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


class TestBasicOps:
    def test_add_gradient(self, rng):
        x = rng.normal(size=(4, 3))
        y = rng.normal(size=(4, 3))
        check_gradient(lambda t: (t + Tensor(y)).sum(), x)

    def test_add_broadcast_gradient(self, rng):
        x = rng.normal(size=(4, 3))
        bias = rng.normal(size=(3,))
        check_gradient(lambda t: (t + Tensor(bias)).sum(), x)
        # gradient w.r.t. the broadcast operand
        check_gradient(lambda t: (Tensor(x) + t).sum(), bias.copy())

    def test_mul_gradient(self, rng):
        x = rng.normal(size=(5, 2))
        y = rng.normal(size=(5, 2))
        check_gradient(lambda t: (t * Tensor(y) * 2.0).sum(), x)

    def test_div_gradient(self, rng):
        x = rng.normal(size=(3, 3)) + 3.0
        y = rng.normal(size=(3, 3)) + 3.0
        check_gradient(lambda t: (Tensor(y) / t).sum(), x)

    def test_pow_gradient(self, rng):
        x = rng.random((4, 4)) + 0.5
        check_gradient(lambda t: (t ** 3).sum(), x)

    def test_neg_and_sub(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (-t - Tensor(np.ones((3, 4)))).sum(), x)

    def test_matmul_gradient(self, rng):
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(3, 5))
        check_gradient(lambda t: (t @ Tensor(b)).sum(), a)
        check_gradient(lambda t: (Tensor(a) @ t).sum(), b)

    def test_matmul_vector_gradient(self, rng):
        a = rng.normal(size=(4, 3))
        v = rng.normal(size=(3,))
        check_gradient(lambda t: (t @ Tensor(v)).sum(), a)
        check_gradient(lambda t: (Tensor(a) @ t).sum(), v)

    def test_exp_log_gradient(self, rng):
        x = rng.random((3, 3)) + 0.5
        check_gradient(lambda t: t.exp().sum(), x)
        check_gradient(lambda t: t.log().sum(), x)

    def test_abs_gradient(self, rng):
        x = rng.normal(size=(4, 4)) + 0.1  # keep away from the kink at 0
        check_gradient(lambda t: t.abs().sum(), x)

    def test_clip_gradient(self, rng):
        x = rng.normal(size=(5, 5))
        check_gradient(lambda t: t.clip(-0.5, 0.5).sum(), x, atol=1e-4)


class TestReductionsAndShapes:
    def test_sum_axis_gradient(self, rng):
        x = rng.normal(size=(4, 5))
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), x)
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) ** 2).sum(), x)

    def test_mean_gradient(self, rng):
        x = rng.normal(size=(6, 2))
        check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), x)
        check_gradient(lambda t: t.mean(), x)

    def test_max_gradient(self, rng):
        x = rng.normal(size=(4, 5))
        check_gradient(lambda t: t.max(axis=1).sum(), x)

    def test_reshape_gradient(self, rng):
        x = rng.normal(size=(4, 6))
        check_gradient(lambda t: (t.reshape(2, 12) ** 2).sum(), x)
        check_gradient(lambda t: (t.reshape(4, 2, 3) ** 2).sum(), x)

    def test_transpose_gradient(self, rng):
        x = rng.normal(size=(3, 5))
        check_gradient(lambda t: (t.T @ Tensor(np.ones((3, 2)))).sum(), x)

    def test_getitem_gradient(self, rng):
        x = rng.normal(size=(6, 4))
        index = np.array([0, 2, 2, 5])
        check_gradient(lambda t: (t[index] ** 2).sum(), x)
        check_gradient(lambda t: (t[:, 1:3] ** 2).sum(), x)

    def test_concatenate_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        y = rng.normal(size=(3, 2))
        check_gradient(lambda t: (concatenate([t, Tensor(y)], axis=1) ** 2).sum(), x)
        check_gradient(lambda t: (concatenate([Tensor(x), t], axis=1) ** 2).sum(), y)

    def test_stack_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        y = rng.normal(size=(3, 4))
        check_gradient(lambda t: (stack([t, Tensor(y)], axis=0) ** 2).sum(), x)

    def test_where_and_maximum_gradient(self, rng):
        x = rng.normal(size=(4, 4)) + 0.05
        cond = rng.random((4, 4)) > 0.5
        check_gradient(lambda t: where(cond, t, Tensor(np.zeros((4, 4)))).sum(), x)
        other = rng.normal(size=(4, 4))
        check_gradient(lambda t: maximum(t, Tensor(other)).sum(), x, atol=1e-4)


class TestAutogradMechanics:
    def test_gradient_accumulates_over_multiple_uses(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        loss = (x * x).sum() + x.sum()
        loss.backward()
        np.testing.assert_allclose(x.grad, 2 * x.data + 1.0)

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = x * 3.0
        y.backward(np.full((2, 2), 2.0))
        np.testing.assert_allclose(x.grad, np.full((2, 2), 6.0))

    def test_no_grad_context_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert y._backward is None
        assert y._parents == ()

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x.detach() * 5).sum()
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_gradient(self, rng):
        # f(x) = sum((x*2) * (x+1)) exercises shared parents in the tape.
        x_value = rng.normal(size=(4,))
        check_gradient(lambda t: ((t * 2.0) * (t + 1.0)).sum(), x_value)

    def test_repr_and_item(self):
        x = Tensor(np.array([2.5]), requires_grad=True)
        assert "requires_grad" in repr(x)
        assert x.item() == pytest.approx(2.5)

    def test_as_tensor_idempotent(self):
        x = Tensor(np.ones(3))
        assert as_tensor(x) is x
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_comparison_returns_numpy(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]))
        mask = x > 1.5
        assert isinstance(mask, np.ndarray)
        assert mask.tolist() == [False, True, True]


class TestThreadLocalScopes:
    """``no_grad``/``dtype_scope`` must be private to their thread.

    Regression for a serving-concurrency bug: the flags were module
    globals, so two threads interleaving enter/exit could restore each
    other's saved state and leave autograd disabled process-wide — any
    training run afterwards silently skipped backprop.
    """

    def test_crossed_no_grad_interleaving_cannot_stick(self):
        import threading

        from repro.nn.tensor import is_grad_enabled

        steps = [threading.Event() for _ in range(4)]
        states = {}

        def first():
            scope = no_grad()
            scope.__enter__()          # A enters (saves True)
            steps[0].set()
            steps[1].wait(5)           # ... B enters meanwhile
            scope.__exit__(None, None, None)
            steps[2].set()
            states["first"] = is_grad_enabled()

        def second():
            steps[0].wait(5)
            scope = no_grad()
            scope.__enter__()          # with a global flag this saved False
            steps[1].set()
            steps[2].wait(5)
            scope.__exit__(None, None, None)
            states["second"] = is_grad_enabled()

        threads = [threading.Thread(target=first),
                   threading.Thread(target=second)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert states == {"first": True, "second": True}
        assert is_grad_enabled()

    def test_no_grad_in_worker_does_not_leak_to_main(self):
        import threading

        from repro.nn.tensor import is_grad_enabled

        inside = threading.Event()
        release = threading.Event()

        def worker():
            with no_grad():
                inside.set()
                release.wait(5)

        thread = threading.Thread(target=worker)
        thread.start()
        assert inside.wait(5)
        assert is_grad_enabled()       # the worker's scope is its own
        release.set()
        thread.join(10)

    def test_dtype_scope_is_per_thread(self):
        import threading

        from repro.nn.tensor import dtype_scope, get_default_dtype

        inside = threading.Event()
        release = threading.Event()
        seen = {}

        def worker():
            with dtype_scope(np.float32):
                seen["worker"] = get_default_dtype()
                inside.set()
                release.wait(5)
            seen["worker_after"] = get_default_dtype()

        thread = threading.Thread(target=worker)
        thread.start()
        assert inside.wait(5)
        assert get_default_dtype() == np.float64
        release.set()
        thread.join(10)
        assert seen == {"worker": np.float32, "worker_after": np.float64}
