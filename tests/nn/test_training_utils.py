"""Tests for the training utilities (validation splits, early stopping, AUC)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import roc_auc
from repro.nn import EarlyStopping, Linear, validation_split
from repro.nn.training import binary_auc


class TestValidationSplit:
    def _labels(self, n_pos: int, n_neg: int) -> np.ndarray:
        labels = np.full(n_pos + n_neg + 10, -1, dtype=np.int64)
        labels[:n_pos] = 1
        labels[n_pos:n_pos + n_neg] = 0
        return labels

    def test_partition_is_disjoint_and_complete(self, rng):
        labels = self._labels(20, 60)
        train = np.arange(80)
        fit, val = validation_split(train, labels, 0.2, rng)
        assert np.intersect1d(fit, val).size == 0
        np.testing.assert_array_equal(np.sort(np.concatenate([fit, val])), train)

    def test_stratification_keeps_both_classes_in_validation(self, rng):
        labels = self._labels(20, 60)
        fit, val = validation_split(np.arange(80), labels, 0.25, rng)
        assert (labels[val] == 1).sum() >= 2
        assert (labels[val] == 0).sum() >= 2

    def test_too_few_positives_disable_validation(self, rng):
        labels = self._labels(3, 60)
        fit, val = validation_split(np.arange(63), labels, 0.2, rng)
        assert val.size == 0
        assert fit.size == 63

    def test_zero_fraction_returns_everything(self, rng):
        labels = self._labels(10, 10)
        fit, val = validation_split(np.arange(20), labels, 0.0, rng)
        assert val.size == 0 and fit.size == 20

    def test_invalid_fraction_raises(self, rng):
        with pytest.raises(ValueError):
            validation_split(np.arange(10), np.ones(10), 1.0, rng)

    @given(n_pos=st.integers(5, 40), n_neg=st.integers(5, 120),
           fraction=st.floats(0.05, 0.5))
    @settings(max_examples=30, deadline=None)
    def test_property_split_never_loses_samples(self, n_pos, n_neg, fraction):
        labels = self._labels(n_pos, n_neg)
        train = np.arange(n_pos + n_neg)
        fit, val = validation_split(train, labels, fraction,
                                    np.random.default_rng(0))
        assert fit.size + val.size == train.size
        assert np.intersect1d(fit, val).size == 0


class TestEarlyStopping:
    def _module(self):
        return Linear(3, 2, np.random.default_rng(0))

    def test_min_mode_stops_after_patience(self):
        module = self._module()
        stopper = EarlyStopping(module, patience=3, mode="min")
        values = [1.0, 0.5, 0.6, 0.7, 0.8]
        stops = [stopper.update(value, epoch) for epoch, value in enumerate(values)]
        assert stops == [False, False, False, False, True]
        assert stopper.best_epoch == 1

    def test_restore_best_reloads_snapshot(self):
        module = self._module()
        stopper = EarlyStopping(module, patience=None, mode="max")
        stopper.update(0.9, epoch=0)
        best_weights = module.weight.data.copy()
        module.weight.data = module.weight.data + 10.0
        stopper.update(0.1, epoch=1)
        assert stopper.restore_best()
        np.testing.assert_allclose(module.weight.data, best_weights)

    def test_restore_without_updates_is_noop(self):
        stopper = EarlyStopping(self._module(), patience=2)
        assert stopper.restore_best() is False

    def test_nan_values_count_as_no_improvement(self):
        stopper = EarlyStopping(self._module(), patience=2, mode="max")
        assert not stopper.update(float("nan"), 0)
        assert stopper.update(float("nan"), 1)
        assert stopper.best_value is None
        assert stopper.epochs_since_best == 2

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            EarlyStopping(self._module(), mode="sideways")


class TestBinaryAuc:
    def test_perfect_and_inverted_ranking(self):
        labels = np.array([0, 0, 1, 1])
        assert binary_auc(labels, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
        assert binary_auc(labels, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0

    def test_single_class_returns_nan(self):
        assert np.isnan(binary_auc(np.ones(5), np.random.rand(5)))

    @given(st.integers(2, 60), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_reference_auc(self, size, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=size)
        scores = rng.normal(size=size)
        expected = roc_auc(labels, scores)
        actual = binary_auc(labels, scores)
        if np.isnan(expected):
            assert np.isnan(actual)
        else:
            assert actual == pytest.approx(expected, abs=1e-9)
