"""Tests for the module system, layers, initialisers and serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import MLP, Dropout, Linear, LogisticRegression, Sequential
from repro.nn import init as initmod
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.serialization import (load_state_dict, model_size_mbytes,
                                    parameter_count, save_state_dict)
from repro.nn.tensor import Tensor


class _ToyModel(Module):
    def __init__(self, rng):
        super().__init__()
        self.first = Linear(4, 8, rng)
        self.second = Linear(8, 2, rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.second(self.first(x)) * self.scale


class TestModuleSystem:
    def test_named_parameters_are_qualified_and_ordered(self, rng):
        model = _ToyModel(rng)
        names = [name for name, _ in model.named_parameters()]
        assert names == ["scale", "first.weight", "first.bias",
                         "second.weight", "second.bias"]

    def test_parameter_count(self, rng):
        model = _ToyModel(rng)
        expected = 1 + (8 * 4 + 8) + (2 * 8 + 2)
        assert model.num_parameters() == expected
        assert parameter_count(model) == expected

    def test_zero_grad_clears_all(self, rng):
        model = _ToyModel(rng)
        out = model(Tensor(np.ones((3, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(3, 3, rng), Dropout(0.5, rng))
        model.eval()
        assert all(not m.training for _, m in model.named_modules())
        model.train()
        assert all(m.training for _, m in model.named_modules())

    def test_state_dict_roundtrip(self, rng):
        model = _ToyModel(rng)
        other = _ToyModel(np.random.default_rng(999))
        assert not np.allclose(model.first.weight.data, other.first.weight.data)
        other.load_state_dict(model.state_dict())
        np.testing.assert_allclose(model.first.weight.data, other.first.weight.data)

    def test_load_state_dict_strict_mismatch(self, rng):
        model = _ToyModel(rng)
        state = model.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            model.load_state_dict(state)
        model.load_state_dict(state, strict=False)  # tolerated when not strict

    def test_load_state_dict_shape_mismatch(self, rng):
        model = _ToyModel(rng)
        state = model.state_dict()
        state["first.weight"] = np.ones((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_module_list_registration(self, rng):
        modules = ModuleList([Linear(2, 2, rng), Linear(2, 2, rng)])
        assert len(modules) == 2
        assert len(list(modules.named_parameters())) == 4
        with pytest.raises(RuntimeError):
            modules(Tensor(np.ones((1, 2))))


class TestLayers:
    def test_linear_shapes_and_bias(self, rng):
        layer = Linear(5, 3, rng)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)
        no_bias = Linear(5, 3, rng, bias=False)
        assert no_bias.bias is None
        assert no_bias.num_parameters() == 15

    def test_linear_invalid_dims(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 3, rng)

    def test_linear_matches_manual_computation(self, rng):
        layer = Linear(4, 2, rng)
        x = rng.normal(size=(3, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_mlp_output_shape_and_depth(self, rng):
        mlp = MLP(6, [8, 4], 2, rng, dropout=0.1)
        out = mlp(Tensor(np.ones((5, 6))))
        assert out.shape == (5, 2)
        # 3 Linear + 2 Activation + 2 Dropout
        assert len(mlp.net) == 7

    def test_mlp_no_hidden_layers(self, rng):
        mlp = MLP(3, [], 1, rng)
        assert mlp(Tensor(np.ones((2, 3)))).shape == (2, 1)

    def test_mlp_out_activation(self, rng):
        mlp = MLP(3, [4], 1, rng, out_activation="sigmoid")
        out = mlp(Tensor(np.random.default_rng(0).normal(size=(10, 3)))).data
        assert (out > 0).all() and (out < 1).all()

    def test_logistic_regression_outputs_probabilities(self, rng):
        lr = LogisticRegression(4, rng)
        out = lr(Tensor(rng.normal(size=(6, 4)))).data
        assert out.shape == (6,)
        assert (out > 0).all() and (out < 1).all()

    def test_dropout_module_respects_eval(self, rng):
        layer = Dropout(0.9, rng)
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(layer(x).data, 1.0)

    def test_dropout_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.5, rng)


class TestInitializers:
    def test_xavier_uniform_bounds(self, rng):
        weights = initmod.xavier_uniform((64, 32), rng)
        limit = np.sqrt(6.0 / (32 + 64))
        assert np.abs(weights).max() <= limit

    def test_kaiming_scale_decreases_with_fan_in(self, rng):
        wide = initmod.kaiming_uniform((16, 1000), rng)
        narrow = initmod.kaiming_uniform((16, 4), rng)
        assert wide.std() < narrow.std()

    def test_lookup_and_errors(self, rng):
        assert initmod.get_initializer("zeros")((3,), rng).sum() == 0
        with pytest.raises(KeyError):
            initmod.get_initializer("does-not-exist")

    def test_deterministic_given_seed(self):
        a = initmod.xavier_normal((4, 4), np.random.default_rng(5))
        b = initmod.xavier_normal((4, 4), np.random.default_rng(5))
        np.testing.assert_allclose(a, b)


class TestSerialization:
    def test_save_and_load_roundtrip(self, rng, tmp_path):
        model = _ToyModel(rng)
        path = save_state_dict(model, str(tmp_path / "model"))
        assert path.endswith(".npz")
        restored = load_state_dict(path)
        assert set(restored) == set(model.state_dict())
        fresh = _ToyModel(np.random.default_rng(321))
        fresh.load_state_dict(restored)
        np.testing.assert_allclose(fresh.second.weight.data, model.second.weight.data)

    def test_model_size_reporting(self, rng):
        model = _ToyModel(rng)
        assert model_size_mbytes(model) == pytest.approx(
            model.num_parameters() * 4 / 1024 ** 2)
