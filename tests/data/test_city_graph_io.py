"""Round-trip tests for city / graph persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_city_dir, load_graph_npz, save_city_dir, save_graph_npz
from repro.data.city_io import config_from_dict, config_to_dict
from repro.synth import generate_city, tiny_city
from repro.urg import build_urg


class TestConfigRoundTrip:
    def test_round_trip_preserves_all_fields(self):
        config = tiny_city(seed=3)
        rebuilt = config_from_dict(config_to_dict(config))
        assert config_to_dict(rebuilt) == config_to_dict(config)
        assert rebuilt.villages.size_range == config.villages.size_range
        assert rebuilt.pois.base_intensity == config.pois.base_intensity


class TestCityRoundTrip:
    def test_save_and_load_city(self, tiny_city_data, tmp_path):
        directory = save_city_dir(tiny_city_data, tmp_path / "city")
        loaded = load_city_dir(directory)

        np.testing.assert_array_equal(loaded.land_use.land_use,
                                      tiny_city_data.land_use.land_use)
        np.testing.assert_allclose(loaded.land_use.building_density,
                                   tiny_city_data.land_use.building_density)
        assert loaded.land_use.villages == tiny_city_data.land_use.villages
        assert loaded.land_use.village_kinds == tiny_city_data.land_use.village_kinds
        assert loaded.land_use.old_town == tiny_city_data.land_use.old_town

        assert len(loaded.pois) == len(tiny_city_data.pois)
        assert loaded.pois[0].category == tiny_city_data.pois[0].category

        assert loaded.roads.num_intersections == tiny_city_data.roads.num_intersections
        assert loaded.roads.num_segments == tiny_city_data.roads.num_segments

        np.testing.assert_allclose(loaded.imagery.features, tiny_city_data.imagery.features)
        np.testing.assert_array_equal(loaded.labels.labels, tiny_city_data.labels.labels)

    def test_rebuilt_city_produces_identical_graph(self, tiny_city_data, tmp_path):
        directory = save_city_dir(tiny_city_data, tmp_path / "city")
        loaded = load_city_dir(directory)
        original_graph = build_urg(tiny_city_data)
        rebuilt_graph = build_urg(loaded)
        np.testing.assert_array_equal(rebuilt_graph.edge_index, original_graph.edge_index)
        np.testing.assert_allclose(rebuilt_graph.x_poi, original_graph.x_poi)

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_city_dir(tmp_path / "missing")


class TestGraphRoundTrip:
    def test_save_and_load_graph(self, tiny_graph, tmp_path):
        path = save_graph_npz(tiny_graph, tmp_path / "graph")
        assert path.suffix == ".npz"
        loaded = load_graph_npz(path)

        assert loaded.name == tiny_graph.name
        assert loaded.grid_shape == tiny_graph.grid_shape
        np.testing.assert_array_equal(loaded.edge_index, tiny_graph.edge_index)
        np.testing.assert_allclose(loaded.x_poi, tiny_graph.x_poi)
        np.testing.assert_allclose(loaded.x_img, tiny_graph.x_img)
        np.testing.assert_array_equal(loaded.labels, tiny_graph.labels)
        np.testing.assert_array_equal(loaded.labeled_mask, tiny_graph.labeled_mask)
        assert loaded.stats == tiny_graph.stats
        assert loaded.poi_feature_names == tiny_graph.poi_feature_names

    def test_load_missing_graph_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph_npz(tmp_path / "nope.npz")

    def test_labeled_counts_preserved(self, tiny_graph, tmp_path):
        path = save_graph_npz(tiny_graph, tmp_path / "graph.npz")
        loaded = load_graph_npz(path)
        assert loaded.num_labeled_uv == tiny_graph.num_labeled_uv
        assert loaded.num_labeled_non_uv == tiny_graph.num_labeled_non_uv


class TestCityGeneratedFromLoadedConfigIsDeterministic:
    def test_same_seed_same_city(self, tmp_path):
        config = tiny_city(seed=9)
        first = generate_city(config)
        second = generate_city(config_from_dict(config_to_dict(config)))
        np.testing.assert_array_equal(first.land_use.land_use, second.land_use.land_use)
        np.testing.assert_allclose(first.imagery.features, second.imagery.features)
        assert len(first.pois) == len(second.pois)
