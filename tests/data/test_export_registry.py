"""Tests for GeoJSON / CSV export and the dataset registry."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.data import (DatasetRegistry, export_pois_csv, export_predictions_csv,
                        regions_to_geojson, save_geojson)


class TestGeojsonExport:
    def test_one_feature_per_region(self, tiny_graph):
        collection = regions_to_geojson(tiny_graph)
        assert collection["type"] == "FeatureCollection"
        assert len(collection["features"]) == tiny_graph.num_nodes

    def test_properties_include_scores_and_land_use(self, tiny_graph, tiny_city_data, rng):
        scores = rng.random(tiny_graph.num_nodes)
        collection = regions_to_geojson(tiny_graph, scores=scores, city=tiny_city_data)
        properties = collection["features"][0]["properties"]
        assert "uv_probability" in properties
        assert "land_use" in properties

    def test_score_length_mismatch_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            regions_to_geojson(tiny_graph, scores=np.zeros(3))

    def test_save_geojson_round_trip(self, tiny_graph, tmp_path):
        path = save_geojson(regions_to_geojson(tiny_graph), tmp_path / "regions.geojson")
        with open(path) as handle:
            loaded = json.load(handle)
        assert len(loaded["features"]) == tiny_graph.num_nodes

    def test_polygon_is_closed_square(self, tiny_graph):
        feature = regions_to_geojson(tiny_graph, region_size_m=128.0)["features"][0]
        ring = feature["geometry"]["coordinates"][0]
        assert ring[0] == ring[-1]
        assert len(ring) == 5


class TestCsvExport:
    def test_poi_csv_row_count(self, tiny_city_data, tmp_path):
        path = export_pois_csv(tiny_city_data, tmp_path / "pois.csv")
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(tiny_city_data.pois)

    def test_predictions_sorted_and_truncated(self, tiny_graph, rng, tmp_path):
        scores = rng.random(tiny_graph.num_nodes)
        path = export_predictions_csv(tiny_graph, scores, tmp_path / "preds.csv", top_k=10)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 10
        probabilities = [float(row["uv_probability"]) for row in rows]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_predictions_length_mismatch_raises(self, tiny_graph, tmp_path):
        with pytest.raises(ValueError):
            export_predictions_csv(tiny_graph, np.zeros(2), tmp_path / "preds.csv")


class TestDatasetRegistry:
    def test_materialize_city_and_reload(self, tmp_path):
        registry = DatasetRegistry(tmp_path / "datasets")
        first = registry.materialize_city("tiny")
        assert registry.city_dir("tiny").is_dir()
        second = registry.materialize_city("tiny")
        np.testing.assert_array_equal(first.land_use.land_use, second.land_use.land_use)

    def test_materialize_graph_uses_cache(self, tmp_path):
        registry = DatasetRegistry(tmp_path / "datasets")
        graph = registry.materialize_graph("tiny")
        assert registry.graph_path("tiny").exists()
        reloaded = registry.materialize_graph("tiny")
        np.testing.assert_array_equal(graph.edge_index, reloaded.edge_index)

    def test_entries_and_manifest(self, tmp_path):
        registry = DatasetRegistry(tmp_path / "datasets")
        registry.materialize_graph("tiny")
        entries = registry.entries()
        assert len(entries) == 1
        assert entries[0]["has_graph"] is True
        manifest = registry.save_manifest()
        with open(manifest) as handle:
            assert json.load(handle)[0]["name"] == "tiny"
        assert "tiny" in registry.describe()

    def test_seed_override_creates_separate_entry(self, tmp_path):
        registry = DatasetRegistry(tmp_path / "datasets")
        registry.materialize_city("tiny", seed=1)
        registry.materialize_city("tiny", seed=2)
        names = {entry["name"] for entry in registry.entries()}
        assert names == {"tiny-seed1", "tiny-seed2"}
