"""Scorer-level durability: a crashed-and-recovered stream is
indistinguishable — same versions, same fingerprints, bit-identical
float64 scores — from one that never crashed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.durable import DurabilityLog, SnapshotState
from repro.durable.snapshot import (cache_from_arrays, cache_to_arrays,
                                    snapshot_from_bytes, snapshot_to_bytes)
from repro.obs import MetricsRegistry
from repro.serve import InferenceEngine
from repro.stream import StreamingScorer
from repro.synth import EvolutionConfig, generate_evolution


@pytest.fixture(scope="module")
def deltas(tiny_graph_small_image):
    out = generate_evolution(tiny_graph_small_image,
                             EvolutionConfig(steps=6, seed=13))
    assert len(out) >= 4
    return out


def _durable_scorer(fitted_detector, graph, wal_root, **options):
    engine = InferenceEngine(fitted_detector, cache_size=8)
    wal = DurabilityLog(wal_root, metrics=MetricsRegistry())
    scorer = StreamingScorer(engine, graph, warm=True,
                             wal=wal.stream("city"), **options)
    return scorer, wal


class TestStreamRecovery:
    def test_recovered_stream_is_bit_identical(
            self, fitted_detector, tiny_graph_small_image, deltas, tmp_path):
        scorer, _ = _durable_scorer(fitted_detector, tiny_graph_small_image,
                                    tmp_path / "wal")
        control = StreamingScorer(
            InferenceEngine(fitted_detector, cache_size=8),
            tiny_graph_small_image, warm=True)
        for delta in deltas[:3]:
            scorer.update(delta)
            control.update(delta)
        # "crash": drop the scorer, recover from disk with a cold engine
        crashed_version = scorer.version
        crashed_fingerprint = scorer.fingerprint
        del scorer

        wal = DurabilityLog(tmp_path / "wal", metrics=MetricsRegistry())
        recovered = wal.recover("city")
        assert recovered.version == crashed_version
        assert recovered.fingerprint == crashed_fingerprint
        assert recovered.records_replayed == 3
        resumed = StreamingScorer.from_snapshot(
            InferenceEngine(fitted_detector, cache_size=8), recovered,
            wal=wal.stream("city"))
        assert resumed.version == control.version
        assert resumed.fingerprint == control.fingerprint
        assert np.array_equal(resumed.predict_proba(),
                              control.predict_proba())

        # post-recovery updates keep tracking the uninterrupted stream
        for delta in deltas[3:5]:
            resumed_update = resumed.update(delta)
            control_update = control.update(delta)
            assert resumed.fingerprint == control.fingerprint
            assert np.array_equal(resumed_update.probabilities,
                                  control_update.probabilities)

    def test_checkpoint_compacts_and_preserves_cache(
            self, fitted_detector, tiny_graph_small_image, deltas, tmp_path):
        scorer, wal = _durable_scorer(fitted_detector,
                                      tiny_graph_small_image,
                                      tmp_path / "wal")
        for delta in deltas[:2]:
            scorer.update(delta)
        result = scorer.checkpoint(force=True)
        assert result is not None and result["seq"] == 2
        # compaction pruned the replay tail; the snapshot carries the
        # activation cache so recovery needs no rescore at all
        recovered = DurabilityLog(tmp_path / "wal",
                                  metrics=MetricsRegistry()).recover("city")
        assert recovered.records_replayed == 0
        assert recovered.version == 2
        assert recovered.cache is not None

        resumed = StreamingScorer.from_snapshot(
            InferenceEngine(fitted_detector, cache_size=8), recovered)
        assert np.array_equal(resumed.predict_proba(),
                              scorer.predict_proba())

    def test_checkpoint_respects_thresholds(self, fitted_detector,
                                            tiny_graph_small_image,
                                            tmp_path):
        scorer, _ = _durable_scorer(fitted_detector, tiny_graph_small_image,
                                    tmp_path / "wal")
        assert scorer.checkpoint() is None  # nothing to compact yet
        assert scorer.checkpoint(force=True) is not None

    def test_describe_reports_durable(self, fitted_detector,
                                      tiny_graph_small_image, tmp_path):
        scorer, _ = _durable_scorer(fitted_detector, tiny_graph_small_image,
                                    tmp_path / "wal")
        assert scorer.describe()["durable"] is True
        plain = StreamingScorer(InferenceEngine(fitted_detector),
                                tiny_graph_small_image)
        assert plain.describe()["durable"] is False

    def test_append_failure_leaves_stream_unchanged(
            self, fitted_detector, tiny_graph_small_image, deltas, tmp_path):
        """A delta that cannot be logged is never acknowledged."""
        scorer, wal = _durable_scorer(fitted_detector,
                                      tiny_graph_small_image,
                                      tmp_path / "wal")
        before_version = scorer.version
        before_fingerprint = scorer.fingerprint
        # desync the log so the next append is refused
        wal.stream("city")._next_seq = 99
        from repro.durable import DurabilityError
        with pytest.raises(DurabilityError, match="non-contiguous"):
            scorer.update(deltas[0])
        assert scorer.version == before_version
        assert scorer.fingerprint == before_fingerprint


class TestSnapshotCodec:
    def test_score_cache_roundtrip_is_bit_identical(
            self, fitted_detector, tiny_graph_small_image, deltas):
        scorer = StreamingScorer(InferenceEngine(fitted_detector,
                                                 cache_size=8),
                                 tiny_graph_small_image, warm=True)
        scorer.update(deltas[0])
        cache = scorer._state.cache
        assert cache is not None
        arrays = cache_to_arrays(cache)
        rebuilt = cache_from_arrays(
            {key: np.copy(value) for key, value in arrays.items()},
            len(cache.levels))
        assert rebuilt.scores.dtype == np.float64
        assert np.array_equal(rebuilt.scores, cache.scores)
        assert np.array_equal(rebuilt.local_repr, cache.local_repr)
        for (poi, img), (other_poi, other_img) in zip(rebuilt.levels,
                                                      cache.levels):
            assert np.array_equal(poi, other_poi)
            assert np.array_equal(img, other_img)

    def test_snapshot_bytes_roundtrip(self, fitted_detector,
                                      tiny_graph_small_image):
        scorer = StreamingScorer(InferenceEngine(fitted_detector,
                                                 cache_size=8),
                                 tiny_graph_small_image, warm=True)
        state = SnapshotState(graph=scorer.graph,
                              fingerprint=scorer.fingerprint,
                              seq=scorer.version,
                              options={"incremental": "auto",
                                       "fingerprints": "chained"},
                              warm=True, cache=scorer._state.cache)
        rebuilt = snapshot_from_bytes(snapshot_to_bytes(state))
        assert rebuilt.fingerprint == state.fingerprint
        assert rebuilt.seq == state.seq
        assert rebuilt.options == state.options
        assert rebuilt.graph.fingerprint() == state.graph.fingerprint()
        assert np.array_equal(rebuilt.cache.scores, state.cache.scores)

    def test_malformed_snapshot_bytes_rejected(self):
        with pytest.raises(ValueError):
            snapshot_from_bytes(b"not an npz archive")
