"""Write-ahead-log mechanics: framing, rotation, fsync policies,
snapshot compaction, and every fault-injection branch of recovery.

These tests run against the log alone (no model, no scorer): deltas come
from the seeded evolution generator and fingerprints from the same
sha256 chain the streaming scorer uses, so recovery's chain verification
is exercised for real without paying for inference.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.durable import (Checkpointer, DurabilityError, DurabilityLog,
                           SnapshotState, chain_fingerprint, frame_record)
from repro.durable.wal import _parse_frames
from repro.obs import MetricsRegistry, parse_prometheus_text
from repro.synth import EvolutionConfig, generate_evolution


@pytest.fixture(scope="module")
def deltas(tiny_graph_small_image):
    out = generate_evolution(tiny_graph_small_image,
                             EvolutionConfig(steps=6, seed=3))
    assert len(out) >= 5
    return out


def _open_log(root, graph, name="city", metrics=None, **options):
    """A DurabilityLog plus a freshly opened StreamLog at seq 0."""
    wal = DurabilityLog(root, metrics=metrics or MetricsRegistry(), **options)
    log = wal.stream(name, fresh=True)
    log.write_snapshot(SnapshotState(
        graph=graph, fingerprint=graph.fingerprint(), seq=0,
        options={"fingerprints": "chained"}, warm=False, cache=None))
    return wal, log


def _append_chain(log, graph, deltas, fingerprint=None):
    """Append deltas with the chained fingerprints recovery will verify.

    Returns the final (graph, fingerprint, version).
    """
    fingerprint = fingerprint or graph.fingerprint()
    version = log.status()["next_seq"] - 1
    for delta in deltas:
        fingerprint = chain_fingerprint(fingerprint, delta)
        version += 1
        log.append_delta(delta, version, fingerprint)
        graph = delta.apply(graph, validate=False)
    return graph, fingerprint, version


class TestFraming:
    def test_frame_roundtrip(self, tmp_path):
        frames = b"".join(frame_record(p) for p in (b"one", b"two", b""))
        payloads, clean_end, torn = _parse_frames(frames, tmp_path / "x")
        assert payloads == [b"one", b"two", b""]
        assert clean_end == len(frames) and not torn

    def test_incomplete_tail_is_torn_not_corrupt(self, tmp_path):
        frames = frame_record(b"whole") + frame_record(b"cut-off")[:-3]
        payloads, clean_end, torn = _parse_frames(frames, tmp_path / "x")
        assert payloads == [b"whole"] and torn
        assert clean_end == len(frame_record(b"whole"))

    def test_checksum_mismatch_raises_with_path(self, tmp_path):
        data = bytearray(frame_record(b"payload"))
        data[-1] ^= 0xFF  # flip a payload byte; the frame stays complete
        with pytest.raises(DurabilityError) as excinfo:
            _parse_frames(bytes(data), tmp_path / "seg")
        assert "checksum mismatch" in str(excinfo.value)
        assert str(tmp_path / "seg") in str(excinfo.value)


class TestAppendRecover:
    def test_roundtrip_replays_to_exact_chain(self, tmp_path, deltas,
                                              tiny_graph_small_image):
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph)
        final_graph, final_fp, version = _append_chain(log, graph, deltas)
        log.close()

        recovered = DurabilityLog(tmp_path,
                                  metrics=MetricsRegistry()).recover("city")
        assert recovered.version == version == len(deltas)
        assert recovered.fingerprint == final_fp
        assert recovered.graph.fingerprint() == final_graph.fingerprint()
        assert recovered.records_replayed == len(deltas)
        assert recovered.truncated_tail == 0
        assert recovered.cache is None  # replayed deltas invalidate it

    def test_recovered_log_accepts_further_appends(self, tmp_path, deltas,
                                                   tiny_graph_small_image):
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph)
        _append_chain(log, graph, deltas[:2])
        log.close()

        wal = DurabilityLog(tmp_path, metrics=MetricsRegistry())
        recovered = wal.recover("city")
        log = wal.stream("city")
        graph, fp, version = recovered.graph, recovered.fingerprint, \
            recovered.version
        _append_chain(log, graph, deltas[2:4], fingerprint=fp)
        again = DurabilityLog(tmp_path, metrics=MetricsRegistry()) \
            .recover("city")
        assert again.version == version + 2
        assert again.records_replayed == 4

    def test_non_contiguous_append_refused(self, tmp_path, deltas,
                                           tiny_graph_small_image):
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph)
        fp = chain_fingerprint(graph.fingerprint(), deltas[0])
        log.append_delta(deltas[0], 1, fp)
        with pytest.raises(DurabilityError, match="non-contiguous"):
            log.append_delta(deltas[1], 3, fp)

    def test_append_requires_reset_or_recover(self, tmp_path, deltas,
                                              tiny_graph_small_image):
        wal = DurabilityLog(tmp_path, metrics=MetricsRegistry())
        log = wal.stream("never-opened")
        with pytest.raises(DurabilityError, match="no established history"):
            log.append_delta(deltas[0], 1, "feedbeef")


class TestRotation:
    def test_segments_rotate_at_record_count_boundary(
            self, tmp_path, deltas, tiny_graph_small_image):
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph, segment_records=2)
        _append_chain(log, graph, deltas[:5])
        log.close()
        names = sorted(p.name for p in (tmp_path / "city").iterdir()
                       if p.suffix == ".seg")
        # records 1-2, 3-4, 5 — each new segment named for its first seq
        assert names == ["wal-00000001.seg", "wal-00000003.seg",
                         "wal-00000005.seg"]
        recovered = DurabilityLog(tmp_path, segment_records=2,
                                  metrics=MetricsRegistry()).recover("city")
        assert recovered.version == 5
        assert recovered.records_replayed == 5


class TestFsyncPolicies:
    def _fsyncs(self, metrics):
        parsed = parse_prometheus_text(metrics.render())
        return sum(value for (name, _), value in parsed.samples.items()
                   if name == "repro_wal_fsyncs_total")

    def test_always_fsyncs_every_append(self, tmp_path, deltas,
                                        tiny_graph_small_image):
        metrics = MetricsRegistry()
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph, metrics=metrics, fsync="always")
        _append_chain(log, graph, deltas[:3])
        assert self._fsyncs(metrics) >= 3

    def test_never_only_flushes(self, tmp_path, deltas,
                                tiny_graph_small_image):
        metrics = MetricsRegistry()
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph, metrics=metrics, fsync="never")
        before = self._fsyncs(metrics)
        _append_chain(log, graph, deltas[:3])
        assert self._fsyncs(metrics) == before

    def test_interval_coalesces_fsyncs(self, tmp_path, deltas,
                                       tiny_graph_small_image):
        metrics = MetricsRegistry()
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph, metrics=metrics,
                           fsync="interval", fsync_interval_s=3600.0)
        before = self._fsyncs(metrics)
        _append_chain(log, graph, deltas[:4])
        # the first append syncs (the last sync is ancient), the rest
        # ride inside the hour-long window
        assert self._fsyncs(metrics) == before + 1


class TestFaultInjection:
    def test_torn_tail_truncated_and_replay_continues(
            self, tmp_path, deltas, tiny_graph_small_image):
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph)
        _, _, version = _append_chain(log, graph, deltas[:3])
        log.close()
        segment = tmp_path / "city" / "wal-00000001.seg"
        clean_size = segment.stat().st_size
        with open(segment, "ab") as handle:
            handle.write(b"\x00\x00\x09\x12partial")  # interrupted frame

        recovered = DurabilityLog(tmp_path,
                                  metrics=MetricsRegistry()).recover("city")
        assert recovered.version == version
        assert recovered.truncated_tail == 1
        assert segment.stat().st_size == clean_size  # tail physically gone
        again = DurabilityLog(tmp_path,
                              metrics=MetricsRegistry()).recover("city")
        assert again.truncated_tail == 0

    def test_flipped_byte_in_record_is_corruption(self, tmp_path, deltas,
                                                  tiny_graph_small_image):
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph)
        _append_chain(log, graph, deltas[:3])
        log.close()
        segment = tmp_path / "city" / "wal-00000001.seg"
        data = bytearray(segment.read_bytes())
        data[len(data) // 2] ^= 0xFF
        segment.write_bytes(bytes(data))
        with pytest.raises(DurabilityError, match="checksum mismatch"):
            DurabilityLog(tmp_path, metrics=MetricsRegistry()).recover("city")

    def test_incomplete_record_mid_log_is_corruption(
            self, tmp_path, deltas, tiny_graph_small_image):
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph, segment_records=2)
        _append_chain(log, graph, deltas[:4])  # two segments
        log.close()
        first = tmp_path / "city" / "wal-00000001.seg"
        first.write_bytes(first.read_bytes()[:-5])
        with pytest.raises(DurabilityError, match="not the final segment"):
            DurabilityLog(tmp_path, segment_records=2,
                          metrics=MetricsRegistry()).recover("city")

    def test_missing_snapshot_is_a_clean_error(self, tmp_path, deltas,
                                               tiny_graph_small_image):
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph)
        _append_chain(log, graph, deltas[:2])
        log.close()
        for path in (tmp_path / "city").glob("snap-*.snap"):
            path.unlink()
        with pytest.raises(DurabilityError) as excinfo:
            DurabilityLog(tmp_path, metrics=MetricsRegistry()).recover("city")
        message = str(excinfo.value)
        assert "no snapshot found" in message
        assert str(tmp_path / "city") in message
        # the whole point of DurabilityError: no raw repr leaks through
        assert "KeyError" not in message and "Errno" not in message

    def test_crash_during_compaction_replays_only_the_tail(
            self, tmp_path, deltas, tiny_graph_small_image):
        """Snapshot written, prune never ran: stale records are skipped.

        Simulated by restoring the pre-compaction segment after a
        checkpoint, exactly the state a crash between ``os.replace`` and
        the prune loop leaves behind.
        """
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph)
        mid_graph, mid_fp, _ = _append_chain(log, graph, deltas[:2])
        segment = tmp_path / "city" / "wal-00000001.seg"
        pre_compaction = segment.read_bytes()
        log.write_snapshot(SnapshotState(
            graph=mid_graph, fingerprint=mid_fp, seq=2,
            options={"fingerprints": "chained"}, warm=False, cache=None))
        assert not segment.exists()  # pruned by the checkpoint
        segment.write_bytes(pre_compaction)  # ... but the crash undid it
        (tmp_path / "city" / "snap-00000009.snap.tmp").write_bytes(b"junk")

        recovered = DurabilityLog(tmp_path,
                                  metrics=MetricsRegistry()).recover("city")
        assert recovered.snapshot_seq == 2
        assert recovered.records_replayed == 0  # both records were <= seq 2
        assert recovered.fingerprint == mid_fp

    def test_corrupt_newest_snapshot_falls_back_to_older(
            self, tmp_path, deltas, tiny_graph_small_image):
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph)
        mid_graph, mid_fp, _ = _append_chain(log, graph, deltas[:2])
        segment = tmp_path / "city" / "wal-00000001.seg"
        pre_compaction = segment.read_bytes()
        log.write_snapshot(SnapshotState(
            graph=mid_graph, fingerprint=mid_fp, seq=2,
            options={"fingerprints": "chained"}, warm=False, cache=None))
        segment.write_bytes(pre_compaction)  # crash-during-compaction again
        log.close()
        newest = tmp_path / "city" / "snap-00000002.snap"
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest.write_bytes(bytes(data))

        recovered = DurabilityLog(tmp_path,
                                  metrics=MetricsRegistry()).recover("city")
        assert recovered.snapshot_seq == 0  # fell back to the opening snap
        assert recovered.records_replayed == 2
        assert recovered.fingerprint == mid_fp

    def test_gap_in_log_is_refused(self, tmp_path, deltas,
                                   tiny_graph_small_image):
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph, segment_records=1)
        _append_chain(log, graph, deltas[:3])
        log.close()
        (tmp_path / "city" / "wal-00000002.seg").unlink()
        with pytest.raises(DurabilityError, match="gap in delta log"):
            DurabilityLog(tmp_path, segment_records=1,
                          metrics=MetricsRegistry()).recover("city")


class TestCompaction:
    def test_checkpoint_prunes_covered_segments(self, tmp_path, deltas,
                                                tiny_graph_small_image):
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph)
        final_graph, final_fp, version = _append_chain(log, graph,
                                                       deltas[:4])
        log.write_snapshot(SnapshotState(
            graph=final_graph, fingerprint=final_fp, seq=version,
            options={"fingerprints": "chained"}, warm=False, cache=None))
        directory = tmp_path / "city"
        assert not list(directory.glob("wal-*.seg"))
        # keep_snapshots=2: the opening snapshot survives as the fallback
        assert {p.name for p in directory.glob("snap-*.snap")} == {
            "snap-00000000.snap", "snap-00000004.snap"}

        recovered = DurabilityLog(tmp_path,
                                  metrics=MetricsRegistry()).recover("city")
        assert recovered.version == version
        assert recovered.records_replayed == 0
        assert recovered.fingerprint == final_fp

    def test_needs_compaction_thresholds(self, tmp_path, deltas,
                                         tiny_graph_small_image):
        graph = tiny_graph_small_image
        _, log = _open_log(tmp_path, graph, compact_records=2,
                           compact_bytes=1 << 30)
        assert not log.needs_compaction()
        _append_chain(log, graph, deltas[:2])
        assert log.needs_compaction()


class TestDurabilityLogRoot:
    def test_stream_names_roundtrip_quoting(self, tmp_path,
                                            tiny_graph_small_image):
        wal = DurabilityLog(tmp_path, metrics=MetricsRegistry())
        awkward = "north side/phase 2"
        _open_log(tmp_path, tiny_graph_small_image, name=awkward,
                  metrics=wal.metrics)
        assert awkward in wal.stream_names()
        assert "/" not in [p.name for p in tmp_path.iterdir()
                           if p.is_dir()][0]

    def test_status_reports_files_and_checkpoint_age(
            self, tmp_path, deltas, tiny_graph_small_image):
        graph = tiny_graph_small_image
        wal, log = _open_log(tmp_path, graph)
        _append_chain(log, graph, deltas[:2])
        status = wal.status()
        assert status["wal_enabled"] is True
        assert status["streams"] == 1
        assert status["segments"] == 1 and status["snapshots"] == 1
        assert status["log_bytes"] > 0
        assert status["last_checkpoint_age_seconds"] >= 0.0

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            DurabilityLog(tmp_path, fsync="sometimes",
                          metrics=MetricsRegistry())


class TestCheckpointer:
    def test_background_runs_and_status_file(self, tmp_path):
        ran = threading.Event()
        calls = []

        def run_once():
            calls.append(1)
            ran.set()
            return {"compacted": len(calls)}

        status_path = tmp_path / "checkpointer.json"
        with Checkpointer(run_once, interval_s=0.02,
                          status_path=status_path) as checkpointer:
            assert ran.wait(timeout=5.0)
            status = checkpointer.status()
        assert status["runs"] >= 1
        assert status["last_error"] is None
        assert status_path.exists()

    def test_errors_are_captured_not_raised(self, tmp_path):
        def run_once():
            raise RuntimeError("disk gremlins")

        checkpointer = Checkpointer(run_once, interval_s=3600.0)
        checkpointer.run_now()
        assert "disk gremlins" in checkpointer.status()["last_error"]

    def test_stop_is_prompt(self):
        checkpointer = Checkpointer(lambda: None, interval_s=3600.0)
        checkpointer.start()
        started = time.monotonic()
        checkpointer.stop()
        assert time.monotonic() - started < 5.0
        assert not checkpointer.status()["running"]
