"""Shared fixtures for the test suite.

The heavyweight fixtures (synthetic city, URG) are session-scoped: they are
deterministic for a fixed seed, read-only for the tests that use them, and
expensive enough (a few hundred milliseconds) that rebuilding them per test
would dominate the suite's runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CMSFConfig, CMSFDetector
from repro.synth import generate_city, tiny_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig

#: reduced configuration shared by the serving/streaming test packages —
#: training even this takes seconds, so one fitted detector is shared
#: session-wide and treated as read-only
FAST_CONFIG = CMSFConfig(
    hidden_dim=16, image_reduce_dim=16, classifier_hidden=8, maga_layers=1,
    maga_heads=2, num_clusters=6, context_dim=8, master_epochs=12, slave_epochs=5,
    patience=None, dropout=0.0, seed=0,
)


@pytest.fixture(scope="session")
def tiny_city_data():
    """A small deterministic synthetic city (16x16 regions)."""
    return generate_city(tiny_city(seed=7))


@pytest.fixture(scope="session")
def tiny_graph(tiny_city_data):
    """The URG built from the tiny city with default settings."""
    return build_urg(tiny_city_data)


@pytest.fixture(scope="session")
def tiny_graph_small_image(tiny_city_data):
    """URG variant with aggressively reduced image features (fast training)."""
    config = UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=32))
    return build_urg(tiny_city_data, config)


@pytest.fixture(scope="session")
def fast_config():
    return FAST_CONFIG


@pytest.fixture(scope="session")
def fitted_detector(tiny_graph_small_image):
    graph = tiny_graph_small_image
    return CMSFDetector(FAST_CONFIG).fit(graph, graph.labeled_indices())


@pytest.fixture(scope="session")
def reference_scores(fitted_detector, tiny_graph_small_image):
    return fitted_detector.predict_proba(tiny_graph_small_image)


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(123)
