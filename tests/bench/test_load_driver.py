"""The open-loop concurrent load driver (:mod:`repro.bench.load`).

The driver's contract has three legs:

* **determinism** — workers own disjoint city partitions and issue each
  city's ops in trace order, so every per-city digest sequence matches a
  serial single-shard replay bit-for-bit;
* **open-loop semantics** — with an arrival rate set, latency is charged
  from the *scheduled* send time (coordinated-omission aware) and
  warm-up ops never reach the statistics;
* **containment** — one worker's failure aborts only that worker's
  remaining ops and surfaces in the result, never in an exception.
"""

from __future__ import annotations

import pytest

from repro.bench import (LoadConfig, format_load_report,
                         load_matches_serial_oracle, replay_trace, run_load)
from repro.obs import MetricsRegistry, parse_prometheus_text


class TestLoadConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            LoadConfig(workers=0)
        with pytest.raises(ValueError):
            LoadConfig(arrival_rate=-1.0)
        with pytest.raises(ValueError):
            LoadConfig(warmup_ops=-1)

    def test_saturation_mode_is_the_default(self):
        assert LoadConfig().saturation
        assert LoadConfig(arrival_rate=0).saturation
        assert not LoadConfig(arrival_rate=50.0).saturation
        assert LoadConfig(arrival_rate=50.0).to_dict()["mode"] == "open-loop"


class TestDeterminism:
    def test_saturation_run_matches_serial_oracle(self, load_trace_40,
                                                  load_shard_factory):
        shard = load_shard_factory("load-sat")
        result = run_load(load_trace_40, shard,
                          LoadConfig(workers=3))
        assert not result.errors
        assert len(result.records) == len(load_trace_40.ops)

        oracle = replay_trace(load_trace_40, load_shard_factory("oracle"),
                              collect_stats=False, keep_scores=False)
        identical, mismatches = load_matches_serial_oracle(
            load_trace_40, result, oracle)
        assert identical, mismatches

    def test_city_partitions_are_disjoint_and_cover(self, load_trace_40,
                                                    load_shard_factory):
        result = run_load(load_trace_40, load_shard_factory("load-part"),
                          LoadConfig(workers=3))
        owned = [city for cities in result.assignment.values()
                 for city in cities]
        assert sorted(owned) == sorted(load_trace_40.cities)
        assert len(set(owned)) == len(owned)

    def test_workers_clamped_to_city_count(self, load_trace_40,
                                           load_shard_factory):
        result = run_load(load_trace_40, load_shard_factory("load-clamp"),
                          LoadConfig(workers=64))
        assert result.workers == len(load_trace_40.cities)
        assert all(cities for cities in result.assignment.values())


class TestOpenLoop:
    def test_schedule_spacing_and_warmup_exclusion(self, load_trace_40,
                                                   load_shard_factory):
        config = LoadConfig(workers=2, arrival_rate=200.0, warmup_ops=2)
        result = run_load(load_trace_40, load_shard_factory("load-ol"),
                          config)
        assert not result.errors
        measured = result.measured()
        warm = [r for r in result.records if r.warmup]
        # each of the 2 workers holds back its first 2 ops
        assert len(warm) == 4
        assert len(measured) == len(result.records) - 4
        interval = config.workers / config.arrival_rate
        per_worker = {}
        for record in result.records:
            per_worker.setdefault(record.worker, []).append(record)
        for records in per_worker.values():
            schedules = [r.scheduled_s for r in records]
            assert schedules == sorted(schedules)
            for position, record in enumerate(records):
                assert record.scheduled_s == pytest.approx(
                    position * interval)
                # charged from the schedule: never negative even when the
                # worker fell behind and fired late
                assert record.latency_s >= 0.0
                assert record.ended_s >= record.started_s

    def test_saturation_charges_from_send_time(self, load_trace_40,
                                               load_shard_factory):
        result = run_load(load_trace_40, load_shard_factory("load-sat2"),
                          LoadConfig(workers=2))
        for record in result.records:
            assert record.scheduled_s == record.started_s
            assert record.latency_s == record.service_s


class TestObservability:
    def test_metrics_registry_sees_every_op(self, load_trace_40,
                                            load_shard_factory):
        obs = MetricsRegistry()
        result = run_load(load_trace_40, load_shard_factory("load-obs"),
                          LoadConfig(workers=2), metrics=obs)
        parsed = parse_prometheus_text(obs.render())
        assert parsed.base_type("repro_load_op_seconds_count") == "histogram"
        observed = parsed.total("repro_load_op_seconds_count")
        assert observed == len(result.records)
        ok_total = parsed.total("repro_load_ops_total", status="ok")
        assert ok_total == len(result.records)

    def test_report_lines_are_grep_stable(self, load_trace_40,
                                          load_shard_factory):
        result = run_load(load_trace_40, load_shard_factory("load-rep"),
                          LoadConfig(workers=2, warmup_ops=1))
        report = format_load_report(result.summary())
        assert "throughput: overall=" in report
        assert "score=" in report
        assert "latency: p50=" in report
        assert "p95=" in report and "p99=" in report

    def test_stats_snapshot_collected(self, load_trace_40,
                                      load_shard_factory):
        result = run_load(load_trace_40, load_shard_factory("load-stats"),
                          LoadConfig(workers=2))
        assert result.stats is not None
        assert result.stats["shard"] == "load-stats"


class _FailingBackend:
    """Delegates to a real shard, but one city's scores start failing."""

    def __init__(self, inner, poison_city, fail_after=1):
        self._inner = inner
        self._poison = poison_city
        self._remaining = fail_after

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def score_stream(self, name, **kwargs):
        if name == self._poison:
            if self._remaining <= 0:
                raise ConnectionError("injected shard loss")
            self._remaining -= 1
        return self._inner.score_stream(name, **kwargs)


class TestErrorContainment:
    def test_failure_aborts_one_worker_only(self, load_trace_40,
                                            load_shard_factory):
        poison = next(city for city in load_trace_40.cities
                      if any(op.op == "score" and op.city == city
                             for op in load_trace_40.ops))
        backend = _FailingBackend(load_shard_factory("load-fail"), poison)
        # workers == cities: the poisoned city is alone on its worker, so
        # every other city must still complete its full op sequence
        result = run_load(load_trace_40, backend,
                          LoadConfig(workers=len(load_trace_40.cities)))
        assert result.errors and "injected shard loss" in result.errors[0]
        failed = [r for r in result.records if r.error is not None]
        assert len(failed) == 1 and failed[0].city == poison
        per_city = {}
        for op in load_trace_40.ops:
            per_city[op.city] = per_city.get(op.city, 0) + 1
        issued = {}
        for record in result.records:
            issued[record.city] = issued.get(record.city, 0) + 1
        for city, expected in per_city.items():
            if city != poison:
                assert issued.get(city, 0) == expected
        # and the oracle comparison reports the divergence, not a crash
        oracle = replay_trace(load_trace_40, load_shard_factory("oracle-f"),
                              collect_stats=False, keep_scores=False)
        identical, mismatches = load_matches_serial_oracle(
            load_trace_40, result, oracle)
        assert not identical
        assert any("injected shard loss" in line for line in mismatches)
