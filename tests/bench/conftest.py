"""Fixtures for the load-driver tests.

Mirrors the serving suite's bundle-backed shard factory (tests/ is not a
package, so fixtures cannot be imported across sibling conftests): every
shard loads its *own* detector instance from the published bundle —
identical float64 parameters, no shared mutable module state to race on
under the driver's concurrent clients.
"""

from __future__ import annotations

import pytest

from repro.bench import WorkloadConfig, derive_cities, generate_workload
from repro.serve import EngineShard, InferenceEngine, ModelRegistry


@pytest.fixture(scope="session")
def load_model_registry(tmp_path_factory, fitted_detector,
                        tiny_graph_small_image):
    registry = ModelRegistry(tmp_path_factory.mktemp("load-models"))
    registry.publish(fitted_detector, tiny_graph_small_image, "tiny")
    return registry


@pytest.fixture(scope="session")
def load_shard_factory(load_model_registry):
    def make(shard_id, cache_size=8, **stream_defaults):
        engine = InferenceEngine.from_bundle(
            load_model_registry.resolve("tiny"), cache_size=cache_size)
        return EngineShard(engine, shard_id=shard_id, **stream_defaults)
    return make


@pytest.fixture(scope="session")
def load_cities(tiny_graph_small_image):
    """Four structurally distinct city variants (≥ workers in the tests)."""
    return derive_cities(tiny_graph_small_image, 4, seed=11)


@pytest.fixture(scope="session")
def load_trace_40(load_cities):
    """A deterministic mixed trace long enough for per-worker warm-up."""
    return generate_workload(load_cities, WorkloadConfig(ops=40, seed=5))
