"""Digest-mode replay (``replay_trace(keep_scores=False)``).

Long traces used to cost O(ops x N) float64 memory because every score
vector was retained for the eventual bit-identity check.  Digest mode
hashes each vector (sha256 over the float64 bytes) and drops the array;
these tests pin that the mode really retains nothing, that bit-identity
verdicts are unchanged across modes, and that a genuine divergence is
still detected (with ``max_diff = nan`` — hashes carry no magnitude).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (replay_trace, replays_identical,
                         resumed_tail_identical, score_digest)


def test_score_digest_is_bitwise(rng):
    vector = rng.random(32)
    assert score_digest(vector) == score_digest(vector.copy())
    bumped = vector.copy()
    bumped[0] = np.nextafter(bumped[0], 2.0)  # one ULP: still a new hash
    assert score_digest(vector) != score_digest(bumped)


def test_digest_mode_retains_no_arrays(load_trace_40, load_shard_factory):
    result = replay_trace(load_trace_40, load_shard_factory("digest-a"),
                          collect_stats=False, keep_scores=False)
    assert not result.opening_scores
    assert all(score is None for score in result.scores)
    assert result.opening_digests.keys() == load_trace_40.cities.keys()
    scored = [d for d in result.score_digests if d is not None]
    assert scored, "trace has score ops, digests must be captured"
    assert len(result.score_digests) == len(load_trace_40.ops)
    # the summary still knows its city count without the arrays
    assert result.summary()["cities"] == len(load_trace_40.cities)


def test_digest_replay_comparable_to_array_replay(load_trace_40,
                                                  load_shard_factory):
    arrays = replay_trace(load_trace_40, load_shard_factory("digest-b"),
                          collect_stats=False)
    digests = replay_trace(load_trace_40, load_shard_factory("digest-c"),
                           collect_stats=False, keep_scores=False)
    identical, max_diff = replays_identical(arrays, digests)
    assert identical
    assert max_diff == 0.0
    # symmetric: digest side first
    identical, _ = replays_identical(digests, arrays)
    assert identical


def test_digest_mismatch_reports_nan_magnitude(load_trace_40,
                                               load_shard_factory):
    a = replay_trace(load_trace_40, load_shard_factory("digest-d"),
                     collect_stats=False, keep_scores=False)
    b = replay_trace(load_trace_40, load_shard_factory("digest-e"),
                     collect_stats=False, keep_scores=False)
    # corrupt one op digest: a genuine divergence between digest replays
    index = next(i for i, d in enumerate(b.score_digests) if d is not None)
    b.score_digests[index] = "0" * 64
    identical, max_diff = replays_identical(a, b)
    assert not identical
    assert np.isnan(max_diff)


def test_resumed_tail_digest_identity(load_trace_40, load_shard_factory):
    from repro.bench.workload import WorkloadTrace

    full = replay_trace(load_trace_40, load_shard_factory("digest-h"),
                        collect_stats=False, keep_scores=False)
    # a resumable backend: replay a truncated prefix, leave the streams
    # open, then continue with the tail on the same shard
    backend = load_shard_factory("digest-i")
    start = len(load_trace_40.ops) // 2
    prefix = WorkloadTrace(name=load_trace_40.name,
                           cities=load_trace_40.cities,
                           ops=list(load_trace_40.ops[:start]),
                           seed=load_trace_40.seed,
                           meta=load_trace_40.meta)
    replay_trace(prefix, backend, collect_stats=False, keep_scores=False)
    tail = replay_trace(load_trace_40, backend, collect_stats=False,
                        keep_scores=False, start_at=start,
                        open_cities=False)
    identical, max_diff = resumed_tail_identical(full, tail, start)
    assert identical, "resumed digest tail must match the oracle's tail"
    assert max_diff == 0.0


def test_mixed_mode_mismatch_still_detected(load_trace_40,
                                            load_shard_factory):
    arrays = replay_trace(load_trace_40, load_shard_factory("digest-j"),
                          collect_stats=False)
    digests = replay_trace(load_trace_40, load_shard_factory("digest-k"),
                           collect_stats=False, keep_scores=False)
    index = next(i for i, d in enumerate(digests.score_digests)
                 if d is not None)
    digests.score_digests[index] = "f" * 64
    identical, max_diff = replays_identical(arrays, digests)
    assert not identical
    assert np.isnan(max_diff)


def test_incomparable_replays_raise(load_trace_40, load_shard_factory):
    digest = replay_trace(load_trace_40, load_shard_factory("digest-l"),
                          collect_stats=False, keep_scores=False)
    broken = replay_trace(load_trace_40, load_shard_factory("digest-m"),
                          collect_stats=False, keep_scores=False)
    index = next(i for i, d in enumerate(broken.score_digests)
                 if d is not None)
    broken.score_digests[index] = None
    with pytest.raises(ValueError):
        replays_identical(digest, broken)
