"""Fast feature-separability diagnostic for the synthetic cities.

Fits closed-form ridge classifiers (no iterative training) on several feature
views of a city and reports block-split test AUC:

* POI features only / image features only / both (per-region signal);
* per-region + 8-neighbour mean (does spatial context denoise?);
* per-region + road-neighbour mean (does road connectivity carry signal?).

This is the knob-tuning tool for the synthetic generator: the paper's result
shape needs per-region AUC around 0.75-0.85 and visible gains from both kinds
of context.
"""
from __future__ import annotations

import sys

import numpy as np

from repro.eval import block_kfold
from repro.eval.metrics import roc_auc
from repro.experiments.datasets import load_graph, load_graph_variant

CITY = sys.argv[1] if len(sys.argv) > 1 else "fuzhou"


def ridge_auc(features, labels, train_idx, test_idx, alpha=10.0):
    x_train = features[train_idx]
    y_train = labels[train_idx].astype(float)
    mean = x_train.mean(axis=0, keepdims=True)
    std = x_train.std(axis=0, keepdims=True) + 1e-8
    x_train = (x_train - mean) / std
    x_test = (features[test_idx] - mean) / std
    # Balanced targets: +1 for UV, -weight for non-UV.
    pos = max((y_train == 1).sum(), 1)
    neg = max((y_train == 0).sum(), 1)
    weights = np.where(y_train == 1, neg / pos, 1.0)
    sw = np.sqrt(weights)
    a = x_train * sw[:, None]
    b = (2 * y_train - 1) * sw
    coef = np.linalg.solve(a.T @ a + alpha * np.eye(a.shape[1]), a.T @ b)
    scores = x_test @ coef
    return roc_auc(labels[test_idx], scores)


def neighbor_mean(features, edge_index, num_nodes):
    out = np.zeros_like(features)
    counts = np.zeros(num_nodes)
    np.add.at(out, edge_index[1], features[edge_index[0]])
    np.add.at(counts, edge_index[1], 1.0)
    counts = np.maximum(counts, 1.0)
    return out / counts[:, None]


def main():
    graph = load_graph(CITY)
    labels = graph.labels
    print(f"city={CITY} regions={graph.num_nodes} edges={graph.num_edges} "
          f"labeled={len(graph.labeled_indices())} "
          f"labeled_uv={int((labels == 1).sum())} "
          f"true_uv={int(graph.ground_truth.sum())}")

    splits = block_kfold(graph, n_folds=3, seed=0)
    views = {
        "poi": graph.x_poi,
        "img": graph.x_img,
        "both": np.concatenate([graph.x_poi, graph.x_img], axis=1),
    }
    both = views["both"]
    views["both+prox_mean"] = np.concatenate(
        [both, neighbor_mean(both, load_graph_variant(CITY, "noRoad").edge_index,
                             graph.num_nodes)], axis=1)
    views["both+road_mean"] = np.concatenate(
        [both, neighbor_mean(both, load_graph_variant(CITY, "noProx").edge_index,
                             graph.num_nodes)], axis=1)
    views["both+all_mean"] = np.concatenate(
        [both, neighbor_mean(both, graph.edge_index, graph.num_nodes)], axis=1)

    for name, feats in views.items():
        aucs = []
        for split in splits:
            aucs.append(ridge_auc(feats, labels, split.train_indices, split.test_indices))
        print(f"  {name:18s} AUC = {np.nanmean(aucs):.3f} "
              f"(folds: {', '.join(f'{a:.3f}' for a in aucs)})")


if __name__ == "__main__":
    main()
