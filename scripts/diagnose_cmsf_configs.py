"""Compare CMSF hyper-parameter variants on one city (quick scale).

Used while tuning the reproduction: reports test AUC (2 folds) for a handful
of CMSF configurations on the full URG and on the noRoad variant, so the gap
between the two edge sets can be tracked as the model/config evolves.
"""
from __future__ import annotations

import sys
import time

import numpy as np

from repro.baselines import make_detector
from repro.eval import block_kfold, evaluate_detector
from repro.experiments.datasets import load_graph, load_graph_variant
from repro.experiments.settings import city_cmsf_config

CITY = sys.argv[1] if len(sys.argv) > 1 else "fuzhou"


def eval_cmsf(graph, overrides, n_folds=2):
    splits = block_kfold(graph, n_folds=3, seed=0)[:n_folds]
    aucs = []
    for split in splits:
        cfg = city_cmsf_config(CITY, seed=0).with_overrides(**overrides)
        det = make_detector("CMSF", seed=0, cmsf_config=cfg)
        res = evaluate_detector(det, graph, split, seed=0)
        aucs.append(res.metrics["auc"])
    return float(np.nanmean(aucs)), aucs


def main():
    graph = load_graph(CITY)
    graph_noroad = load_graph_variant(CITY, "noRoad")
    configs = {
        "base-150ep": dict(master_epochs=150, slave_epochs=30),
        "300ep": dict(master_epochs=300, slave_epochs=40),
        "300ep-drop0.2": dict(master_epochs=300, slave_epochs=40, dropout=0.2),
        "150ep-heads4": dict(master_epochs=150, slave_epochs=30, maga_heads=4),
        "150ep-1layer": dict(master_epochs=150, slave_epochs=30, maga_layers=1),
        "300ep-1layer": dict(master_epochs=300, slave_epochs=40, maga_layers=1),
    }
    t0 = time.time()
    for name, overrides in configs.items():
        auc_full, folds_full = eval_cmsf(graph, overrides)
        auc_nr, folds_nr = eval_cmsf(graph_noroad, overrides)
        print(f"{name:18s} full={auc_full:.3f} {[f'{a:.3f}' for a in folds_full]}  "
              f"noRoad={auc_nr:.3f} {[f'{a:.3f}' for a in folds_nr]}  "
              f"[{time.time()-t0:.0f}s]", flush=True)


if __name__ == "__main__":
    main()
