"""Diagnostic: compare CMSF against key baselines / ablations on one city.

Run with REPRO_SCALE=quick (default).  Prints AUC / F1@3% for each method so
we can check whether the paper's result shape (CMSF on top, ablations below)
holds on the synthetic data.
"""
from __future__ import annotations

import sys
import time

import numpy as np

from repro.baselines import make_detector
from repro.eval import block_kfold, evaluate_detector
from repro.experiments.datasets import load_graph, load_graph_variant
from repro.experiments.settings import ScaleSettings, city_cmsf_config

CITY = sys.argv[1] if len(sys.argv) > 1 else "fuzhou"


def eval_method(name, graph, detector_fn, n_folds=2, seeds=(0,)):
    splits = block_kfold(graph, n_folds=3, seed=0)[:n_folds]
    aucs, f1s = [], []
    for seed in seeds:
        for split in splits:
            det = detector_fn(seed)
            res = evaluate_detector(det, graph, split, seed=seed)
            aucs.append(res.metrics["auc"])
            f1s.append(res.metrics["f1@3"])
    return float(np.nanmean(aucs)), float(np.nanmean(f1s))


def main():
    scale = ScaleSettings.current()
    graph = load_graph(CITY)
    print(f"city={CITY} regions={graph.num_nodes} edges={graph.num_edges} "
          f"labeled={len(graph.labeled_indices())} "
          f"uvs={int((graph.labels == 1).sum())}")

    rows = []
    t0 = time.time()

    def cmsf_factory(overrides=None):
        def make(seed):
            cfg = city_cmsf_config(CITY, seed=seed)
            if overrides:
                cfg = cfg.with_overrides(**overrides)
            return make_detector("CMSF", seed=seed, cmsf_config=cfg)
        return make

    for name in ("MLP", "GAT", "GCN", "UVLens", "MUVFCN"):
        auc, f1 = eval_method(
            name, graph,
            lambda seed, n=name: make_detector(n, seed=seed, epochs=scale.baseline_epochs))
        rows.append((name, auc, f1))
        print(f"{name:12s} AUC={auc:.3f} F1@3={f1:.3f}  [{time.time()-t0:.0f}s]", flush=True)

    auc, f1 = eval_method("CMSF", graph, cmsf_factory())
    rows.append(("CMSF", auc, f1))
    print(f"{'CMSF':12s} AUC={auc:.3f} F1@3={f1:.3f}  [{time.time()-t0:.0f}s]", flush=True)

    for variant in ("CMSF-M", "CMSF-G", "CMSF-H"):
        auc, f1 = eval_method(
            variant, graph,
            lambda seed, v=variant: make_detector(v, seed=seed,
                                                  cmsf_config=city_cmsf_config(CITY, seed=seed)))
        rows.append((variant, auc, f1))
        print(f"{variant:12s} AUC={auc:.3f} F1@3={f1:.3f}  [{time.time()-t0:.0f}s]", flush=True)

    for ablation in ("noRoad", "noProx", "noImage"):
        g2 = load_graph_variant(CITY, ablation)
        auc, f1 = eval_method("CMSF", g2, cmsf_factory())
        rows.append((ablation, auc, f1))
        print(f"{ablation:12s} AUC={auc:.3f} F1@3={f1:.3f}  [{time.time()-t0:.0f}s]", flush=True)

    print("\nsummary:")
    for name, auc, f1 in rows:
        print(f"  {name:12s} AUC={auc:.3f} F1@3={f1:.3f}")


if __name__ == "__main__":
    main()
