"""Explore the synthetic multi-source urban data and the URG construction.

CMSF's inputs are as important as the model: the paper spends Section IV on
how the Urban Region Graph is built from POIs, satellite imagery and road
networks.  This example inspects those ingredients on a synthetic city:

* POI category mix of urban-village regions vs ordinary residential regions
  (the "under-served" signature the POI features are designed to expose);
* the effect of each region relation (spatial proximity vs road
  connectivity) on the URG's edge set;
* how close labelled UVs are to unlabeled true UVs in the graph — the
  structural fact that lets graph models propagate scarce label information.

Run with::

    python examples/urban_data_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_table
from repro.synth import LandUse, POI_CATEGORIES, generate_city, mini_city
from repro.urg import (UrgBuildConfig, build_poi_features, build_region_grid,
                       build_urg, build_urg_variant)
from repro.urg.image_features import ImageFeatureConfig


def poi_profile_comparison(city) -> None:
    grid = build_region_grid(city)
    features = build_poi_features(grid, city.pois)
    land_use = city.land_use.land_use.reshape(-1)
    uv_rows = features.features[land_use == int(LandUse.URBAN_VILLAGE)]
    residential_rows = features.features[land_use == int(LandUse.RESIDENTIAL)]

    interesting = ["cat:Education", "cat:Medicine", "cat:Sports and Fitness",
                   "cat:Food Service", "radius:Hospital", "radius:School",
                   "basic_facility_index"]
    rows = []
    for name in interesting:
        column = features.feature_names.index(name)
        rows.append([name, float(uv_rows[:, column].mean()),
                     float(residential_rows[:, column].mean())])
    print(format_table(["POI feature", "urban villages", "residential"],
                       rows, title="POI signature: UVs vs residential regions"))
    print("(higher radius value = facility farther away; UVs are under-served)\n")


def edge_set_comparison(city) -> None:
    config = UrgBuildConfig(image=ImageFeatureConfig(enabled=False))
    full = build_urg(city, config)
    only_proximity = build_urg_variant(city, "noRoad", config)
    only_road = build_urg_variant(city, "noProx", config)
    rows = [
        ["spatial proximity only", only_proximity.num_undirected_edges],
        ["road connectivity only", only_road.num_undirected_edges],
        ["full URG (union)", full.num_undirected_edges],
    ]
    print(format_table(["relation", "undirected edges"], rows,
                       title="Region relations of the URG"))
    mean_degree = full.degree().mean()
    print(f"mean in-degree of the full URG: {mean_degree:.1f}\n")


def label_propagation_potential(city) -> None:
    graph = build_urg(city, UrgBuildConfig(image=ImageFeatureConfig(enabled=False)))
    labeled_uv = set(np.flatnonzero((graph.labels == 1) & graph.labeled_mask))
    hidden_uv = [node for node in np.flatnonzero(graph.ground_truth == 1)
                 if node not in labeled_uv]
    if not hidden_uv or not labeled_uv:
        print("No hidden UVs to analyse in this draw.")
        return
    neighbours = {node: set() for node in hidden_uv}
    for src, dst in graph.edge_index.T:
        if int(dst) in neighbours:
            neighbours[int(dst)].add(int(src))
    adjacent_to_labeled = sum(1 for node in hidden_uv
                              if neighbours[node] & labeled_uv)
    print(f"{len(hidden_uv)} true UV regions are NOT in the labelled set;")
    print(f"{adjacent_to_labeled} of them ({adjacent_to_labeled / len(hidden_uv):.0%}) "
          "are directly connected to a labelled UV on the URG —")
    print("this is the structure CMSF's message passing and global clustering exploit.\n")


def main() -> None:
    city = generate_city(mini_city(seed=3))
    print(f"Synthetic city '{city.name}': {city.num_regions} regions, "
          f"{len(city.pois)} POIs, {city.roads.num_segments} road segments, "
          f"{int(city.labels.ground_truth.sum())} true UV regions.\n")
    poi_profile_comparison(city)
    edge_set_comparison(city)
    label_propagation_potential(city)


if __name__ == "__main__":
    main()
