"""Quickstart: detect urban villages in a synthetic city with CMSF.

This example walks through the full pipeline of the paper on a small
synthetic city:

1. generate the multi-source urban data (POIs, road network, satellite-image
   features, crowdsourced labels);
2. build the Urban Region Graph (URG);
3. train the Contextual Master-Slave Framework (CMSF) on the labelled
   regions of a block-level training split;
4. score every region of the city and report AUC / top-p% metrics on the
   held-out labelled regions.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import CMSFConfig, CMSFDetector
from repro.eval import detection_report, format_table, single_holdout
from repro.synth import generate_city, mini_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig


def main() -> None:
    # ------------------------------------------------------------------
    # 1. synthetic multi-source urban data
    # ------------------------------------------------------------------
    city = generate_city(mini_city(seed=1))
    print("Generated synthetic city:")
    for key, value in city.summary().items():
        print(f"  {key}: {value}")

    # ------------------------------------------------------------------
    # 2. urban region graph (Section IV of the paper)
    # ------------------------------------------------------------------
    graph = build_urg(city, UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=64)))
    print("\nUrban region graph:")
    for key, value in graph.summary().items():
        print(f"  {key}: {value}")

    # ------------------------------------------------------------------
    # 3. two-stage CMSF training (Section V)
    # ------------------------------------------------------------------
    split = single_holdout(graph, test_fraction=0.33, seed=0)
    config = CMSFConfig(hidden_dim=32, image_reduce_dim=64, classifier_hidden=16,
                        num_clusters=16, master_epochs=80, slave_epochs=15, seed=0)
    detector = CMSFDetector(config)
    print(f"\nTraining CMSF on {split.train_indices.size} labelled regions "
          f"({int((graph.labels[split.train_indices] == 1).sum())} known UVs) ...")
    detector.fit(graph, split.train_indices, verbose=True)

    # ------------------------------------------------------------------
    # 4. city-wide detection and evaluation (Section VI)
    # ------------------------------------------------------------------
    scores = detector.predict_proba(graph)
    test = split.test_indices
    report = detection_report(graph.labels[test], scores[test])
    rows = [[metric, value] for metric, value in report.items()]
    print()
    print(format_table(["metric", "value"], rows,
                       title="Held-out detection performance"))

    # The model can now rank *unlabeled* regions for field investigation.
    unlabeled = graph.unlabeled_indices()
    ranked = unlabeled[scores[unlabeled].argsort()[::-1]]
    print("\nTop-10 unlabeled regions most likely to be urban villages "
          "(region index, probability, true label kept hidden during training):")
    for node in ranked[:10]:
        print(f"  region {int(graph.region_index[node]):5d}  "
              f"p={scores[node]:.3f}  truly-UV={bool(graph.ground_truth[node])}")


if __name__ == "__main__":
    main()
