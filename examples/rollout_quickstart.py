"""Quickstart for staged model rollouts: canary, shadow drift, rollback.

This example walks the full lifecycle of shipping a new model version to
a serving fleet without taking it down — and yanking it back out when it
misbehaves:

1. train a (reduced) CMSF detector, publish it as ``tiny:1``, then train
   a *drifted* second version (different seed and epoch budget) and
   publish it as ``tiny:2``;
2. spin up a 2-shard fleet serving ``tiny:1`` and open three derived
   city streams;
3. start a staged rollout of ``tiny:2`` behind a
   :class:`~repro.serve.rollout.RolloutController`: a seeded hash of
   each city's structural fingerprint picks the canary cohort, canary
   streams are hot-swapped to v2 while everything else stays on v1;
4. serve traffic — every canary score is shadow-paired against the
   baseline version and folded into a drift report
   (mean |Δp|, worst Spearman rank correlation, decision-boundary
   crossings);
5. let the rollout policy evaluate the evidence: the drifted v2 breaches
   the thresholds, the controller rolls the whole fleet back to v1, and
   the post-rollback scores are bit-identical to a fleet that never
   rolled out at all.

Run with::

    python examples/rollout_quickstart.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.bench import WorkloadConfig, derive_cities, generate_workload
from repro.core import CMSFConfig, CMSFDetector
from repro.serve import (EngineShard, FleetRouter, InferenceEngine,
                         ModelRegistry, RolloutController, RolloutPolicy)
from repro.synth import generate_city, tiny_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig


def main() -> None:
    # ------------------------------------------------------------------
    # 1. publish a baseline and a (drifted) candidate version
    # ------------------------------------------------------------------
    city = generate_city(tiny_city(seed=7))
    graph = build_urg(city, UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=32)))
    config = CMSFConfig(hidden_dim=32, image_reduce_dim=32, num_clusters=8,
                        master_epochs=60, slave_epochs=15)
    print(f"training baseline on '{graph.name}' ({graph.num_nodes} regions) ...")
    baseline = CMSFDetector(config).fit(graph, graph.labeled_indices())
    print("training drifted candidate (different seed, shorter budget) ...")
    candidate = CMSFDetector(
        config.with_overrides(seed=3, master_epochs=25)).fit(
            graph, graph.labeled_indices())
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-models-"))
    registry.publish(baseline, graph, "tiny", version="1")
    registry.publish(candidate, graph, "tiny", version="2")

    # ------------------------------------------------------------------
    # 2. a 2-shard fleet serving tiny:1, three open city streams
    # ------------------------------------------------------------------
    def engine(version):
        return InferenceEngine.from_bundle(registry.resolve("tiny", version),
                                           cache_size=8)

    fleet = FleetRouter([EngineShard(engine("1"), shard_id="shard-0"),
                         EngineShard(engine("1"), shard_id="shard-1")],
                        replication=2)
    cities = derive_cities(graph, 3, seed=11)
    for name, variant in cities.items():
        fleet.open_stream(name, variant)

    # an oracle fleet that never rolls out — for the rollback invariant
    oracle = FleetRouter([EngineShard(engine("1"), shard_id="oracle-0"),
                          EngineShard(engine("1"), shard_id="oracle-1")],
                         replication=2)
    for name, variant in cities.items():
        oracle.open_stream(name, variant)

    # ------------------------------------------------------------------
    # 3. start the staged canary rollout of tiny:2
    # ------------------------------------------------------------------
    # a wide first stage so this tiny 3-city fleet has a canary; real
    # deployments start at 0.05 (see stages_for_fraction)
    controller = RolloutController(
        fleet, "tiny", "2", resolve_engine=lambda model, version:
        engine(version), policy=RolloutPolicy(min_pairs=3),
        stages=(0.5, 1.0), seed=0, auto=False)
    controller.start(list(cities))
    status = controller.status()
    print(f"\nrollout started: state={status['state']} "
          f"stage={status['stage']} ({status['fraction']:.0%} canary)")
    for name, entry in status["streams"].items():
        which = "tiny:2 (canary)" if entry["canary"] else "tiny:1"
        print(f"  {name}: u={entry['assignment']:.3f} -> {which}")

    # ------------------------------------------------------------------
    # 4. serve traffic; canary scores are shadow-paired against tiny:1
    # ------------------------------------------------------------------
    trace = generate_workload(cities, WorkloadConfig(
        ops=24, seed=5, score_weight=1.0, update_weight=0.0,
        evict_weight=0.0))
    for op in trace.ops:
        controller.score(op.city)
    shadow = controller.status()["shadow"]
    print(f"\nshadow drift after {shadow['pairs']} paired scores:")
    print(f"  mean |dp|        = {shadow['mean_abs_change']:.5f}")
    print(f"  worst rank corr  = {shadow['worst_rank_correlation']:.4f}")
    print(f"  crossing fraction= {shadow['crossing_fraction']:.4f}")

    # ------------------------------------------------------------------
    # 5. the policy decides — drifted v2 gets rolled back, and the fleet
    #    is bit-identical to one that never rolled out
    # ------------------------------------------------------------------
    decision = controller.evaluate(act=True)
    print(f"\npolicy decision: {decision.action}")
    for reason in decision.reasons:
        print(f"  - {reason}")
    status = controller.status()
    print(f"rollout state: {status['state']} "
          f"(rollbacks={status['rollbacks']})")

    max_diff = 0.0
    for name in cities:
        ours = np.asarray(fleet.score_stream(name)["probabilities"],
                          dtype=np.float64)
        never = np.asarray(oracle.score_stream(name)["probabilities"],
                           dtype=np.float64)
        max_diff = max(max_diff, float(np.max(np.abs(ours - never))))
    print(f"post-rollback vs never-rolled-out oracle: "
          f"bit-identical={max_diff == 0.0} (max |diff| {max_diff:.3e})")

    fleet.close()
    oracle.close()


if __name__ == "__main__":
    main()
