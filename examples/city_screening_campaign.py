"""City-wide screening campaign: prioritise field investigations.

The paper motivates UV detection as a screening problem: a city manager can
only send investigators to a small fraction of regions (top-p% of the model's
ranking), so what matters is how many true urban villages that short list
catches.  This example:

1. builds a mid-sized synthetic city and its URG;
2. trains CMSF and the strongest image-only baseline (UVLens) on the same
   labelled data;
3. simulates screening campaigns with budgets of 1-10% of the city's regions
   and reports how many true UV regions each method would uncover;
4. prints an ASCII detection map comparing CMSF's top picks with the ground
   truth (the Figure 7 case study in miniature).

Run with::

    python examples/city_screening_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import UVLensDetector
from repro.baselines.base import BaselineTrainingConfig
from repro.core import CMSFConfig, CMSFDetector
from repro.eval import format_table, single_holdout
from repro.experiments import ascii_detection_map
from repro.synth import generate_city, mini_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig


def screening_hits(scores: np.ndarray, graph, budget_percent: float) -> tuple:
    """How many true UV regions a top-``budget_percent``% campaign would visit."""
    budget = max(int(np.ceil(graph.num_nodes * budget_percent / 100.0)), 1)
    visited = np.argsort(-scores)[:budget]
    hits = int(graph.ground_truth[visited].sum())
    total = int(graph.ground_truth.sum())
    return budget, hits, total


def main() -> None:
    city = generate_city(mini_city(seed=5))
    graph = build_urg(city, UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=64)))
    split = single_holdout(graph, test_fraction=0.33, seed=0)
    print(f"City '{graph.name}': {graph.num_nodes} regions, "
          f"{int(graph.ground_truth.sum())} true UV regions, "
          f"{split.train_indices.size} labelled regions available for training.\n")

    print("Training CMSF ...")
    cmsf = CMSFDetector(CMSFConfig(hidden_dim=32, image_reduce_dim=64,
                                   classifier_hidden=16, num_clusters=16,
                                   master_epochs=80, slave_epochs=15, seed=0))
    cmsf.fit(graph, split.train_indices)

    print("Training UVLens (image-only baseline) ...")
    uvlens = UVLensDetector(training=BaselineTrainingConfig(epochs=80, seed=0),
                            head_widths=(256, 128, 64))
    uvlens.fit(graph, split.train_indices)

    cmsf_scores = cmsf.predict_proba(graph)
    uvlens_scores = uvlens.predict_proba(graph)

    rows = []
    for budget_percent in (1.0, 3.0, 5.0, 10.0):
        budget, cmsf_hits, total = screening_hits(cmsf_scores, graph, budget_percent)
        _, uvlens_hits, _ = screening_hits(uvlens_scores, graph, budget_percent)
        rows.append([f"{budget_percent:g}%", budget,
                     f"{cmsf_hits}/{total}", f"{uvlens_hits}/{total}"])
    print()
    print(format_table(["budget", "#regions visited", "CMSF hits", "UVLens hits"],
                       rows, title="Screening campaign: true UVs found per budget"))

    top = np.argsort(-cmsf_scores)[:max(int(0.03 * graph.num_nodes), 1)]
    print("\nCMSF top-3% detections ('#' = true UV found, 'o' = false alarm, "
          "'.' = missed UV):")
    print(ascii_detection_map(graph, top))


if __name__ == "__main__":
    main()
