"""Quickstart for overload protection: shed, degrade, break, revive.

A fleet that queues without bound turns a brief overload into minutes of
multi-second latencies for everyone.  This example tours the resilience
layer (:mod:`repro.serve.resilience`) on an in-process fleet:

1. train a (reduced) CMSF detector and publish it to a local registry;
2. build a 3-shard fleet with admission control, degraded mode, and a
   circuit breaker per shard;
3. saturate the single admission slot and watch overflow *shed*
   immediately (``ShedError`` with a retry-after hint) while a warm
   stream answers *degraded* from the stale-score cache instead;
4. propagate an end-to-end deadline and watch expired work shed with
   ``DeadlineExceeded`` before wasting a slot;
5. inject gray failure (a shard answering correctly but 50 ms slow)
   with :class:`ChaosShard`, watch the latency breaker trip and routing
   fail over, then clear the fault and watch the background prober
   auto-revive the shard — no health-check call anywhere.

Run with::

    python examples/resilience_quickstart.py
"""

from __future__ import annotations

import tempfile
import time

from repro.bench import WorkloadConfig, derive_cities, generate_workload
from repro.core import CMSFConfig, CMSFDetector
from repro.serve import (AdmissionConfig, BreakerConfig, ChaosShard,
                         Deadline, DeadlineExceeded, EngineShard, FleetRouter,
                         InferenceEngine, ModelRegistry, ResilienceConfig,
                         ShedError, deadline_scope)
from repro.synth import generate_city, tiny_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig


def main() -> None:
    # ------------------------------------------------------------------
    # 1. train once, publish once
    # ------------------------------------------------------------------
    city = generate_city(tiny_city(seed=7))
    graph = build_urg(city, UrgBuildConfig(
        image=ImageFeatureConfig(reduce_dim=32)))
    config = CMSFConfig(hidden_dim=32, image_reduce_dim=32, num_clusters=8,
                        master_epochs=60, slave_epochs=15)
    print(f"training CMSF on '{graph.name}' ({graph.num_nodes} regions) ...")
    detector = CMSFDetector(config).fit(graph, graph.labeled_indices())
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-models-"))
    registry.publish(detector, graph, "tiny")

    # ------------------------------------------------------------------
    # 2. a resilient 3-shard fleet — shard-0 wrapped for fault injection
    # ------------------------------------------------------------------
    def make_shard(i):
        engine = InferenceEngine.from_bundle(registry.resolve("tiny"),
                                             cache_size=8)
        return EngineShard(engine, shard_id=f"shard-{i}")

    chaos = ChaosShard(make_shard(0), seed=3)
    resilience = ResilienceConfig(
        # one slot, no queue: a single held slot is saturation, so the
        # shed/degrade behaviour below is deterministic
        admission=AdmissionConfig(max_concurrency=1, max_queue=0,
                                  queue_timeout_s=0.05, retry_after_s=0.1),
        degraded=True,
        # explicit latency threshold: 50 ms injected delay trips it fast
        breaker=BreakerConfig(latency_threshold_s=0.02, latency_violations=3,
                              backoff_initial_s=0.1, backoff_max_s=0.5),
        probe_interval_s=0.05)
    fleet = FleetRouter([chaos, make_shard(1), make_shard(2)],
                        replication=2, resilience=resilience)

    cities = derive_cities(graph, 3, seed=11)   # name -> graph
    trace = generate_workload(cities, WorkloadConfig(ops=24, seed=5))
    for name, variant in cities.items():
        fleet.open_stream(name, variant)
    first, second = list(cities)[:2]
    fresh = fleet.score_stream(first)
    print(f"\nopened {len(cities)} streams; fresh score of "
          f"'{first}' has {len(fresh['probabilities'])} regions")

    # ------------------------------------------------------------------
    # 3. saturate the admission slot: cold streams shed, warm degrade
    # ------------------------------------------------------------------
    # 'first' was scored above so its answer sits in the stale cache;
    # 'second' was opened but never scored, so it has no stale fallback
    with fleet._admission.admit():            # hold the only admission slot
        try:
            fleet.score_stream(second)        # cold cache: a real shed
        except ShedError as err:
            print(f"saturated cold score shed: {err} "
                  f"(retry after {err.retry_after_s:g}s)")
        degraded = fleet.score_stream(first)
    print(f"saturated score answered degraded={degraded['degraded']} "
          f"(staleness {degraded['staleness']} versions) — identical "
          f"probabilities, served from the stale cache")

    # ------------------------------------------------------------------
    # 4. deadlines: expired work sheds before wasting a slot
    # ------------------------------------------------------------------
    with deadline_scope(Deadline.after_ms(0.001)):
        time.sleep(0.01)
        try:
            fleet.score_stream(first)
        except DeadlineExceeded as err:
            print(f"expired deadline shed: {err}")
    with deadline_scope(Deadline.after_ms(60_000)):
        fleet.score_stream(first)            # generous deadline: invisible
    print("generous deadline: request served normally")

    # ------------------------------------------------------------------
    # 5. gray failure -> breaker trip -> failover -> auto-revival
    # ------------------------------------------------------------------
    chaos.set_latency(0.05)                  # correct answers, 50 ms late
    for op in trace.ops:
        if op.op == "score":
            fleet.score_stream(op.city)
    print(f"\ninjected 50ms latency on shard-0: slow_calls="
          f"{chaos.slow_calls}, breaker transitions so far: "
          f"{fleet.breaker_transitions('shard-0')}")
    print(f"down shards while tripped: {fleet.down_shards()}")

    chaos.clear_chaos()                      # fault gone; say nothing
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline and fleet.down_shards():
        time.sleep(0.02)                     # background prober at work
    print(f"after clear_chaos, with NO health call: down="
          f"{fleet.down_shards()}, transitions: "
          f"{fleet.breaker_transitions('shard-0')}")

    # ------------------------------------------------------------------
    # the whole story in one status block (also on /healthz and /stats)
    # ------------------------------------------------------------------
    status = fleet.resilience_status()
    breaker = status["breakers"]["shard-0"]
    print(f"\nresilience status: shard-0 {breaker['state']} after "
          f"{breaker['trips']} trip(s); retry budget "
          f"{status['retry_budget']['balance']:.1f}/"
          f"{status['retry_budget']['capacity']:.0f}; admission "
          f"{status['admission']['shed_total']} shed / "
          f"{status['admission']['attempts']} attempts; degraded served="
          f"{status['stale_cache']['served']}")
    fleet.close()


if __name__ == "__main__":
    main()
