"""Quickstart for durable streams: write-ahead log, crash, restore.

This example makes the durability guarantee concrete:

1. train a (reduced) CMSF detector on a small synthetic city, publish it,
   and record a seeded workload trace over two city variants;
2. replay the first half of the trace against a fleet whose router
   carries a :class:`~repro.durable.DurabilityLog` — every accepted
   delta hits an append-only checksummed log *before* the in-memory
   version advances, and each stream opens with a compacted snapshot;
3. "crash": throw the fleet away, keeping nothing but the WAL directory;
4. build a brand-new fleet over the same directory, ``restore()`` every
   stream (snapshot + replayed log tail, fingerprint chain re-verified),
   and resume the trace exactly where the durable history ends;
5. verify the resumed float64 score tail is bit-identical to a
   single-engine oracle that replayed the whole trace uninterrupted,
   then compact the log with a checkpoint.

Run with::

    python examples/durability_quickstart.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path

from repro.bench import (WorkloadConfig, derive_cities, generate_workload,
                         replay_trace, resume_point, resumed_tail_identical)
from repro.core import CMSFConfig, CMSFDetector
from repro.durable import DurabilityLog
from repro.serve import EngineShard, FleetRouter, InferenceEngine, ModelRegistry
from repro.synth import generate_city, tiny_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig


def main() -> None:
    # ------------------------------------------------------------------
    # 1. train once, publish once, record a trace
    # ------------------------------------------------------------------
    city = generate_city(tiny_city(seed=7))
    graph = build_urg(city, UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=32)))
    config = CMSFConfig(hidden_dim=32, image_reduce_dim=32, num_clusters=8,
                        master_epochs=60, slave_epochs=15)
    print(f"training CMSF on '{graph.name}' ({graph.num_nodes} regions) ...")
    detector = CMSFDetector(config).fit(graph, graph.labeled_indices())
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-models-"))
    registry.publish(detector, graph, "tiny")

    cities = derive_cities(graph, 2, seed=11)
    trace = generate_workload(cities, WorkloadConfig(ops=24, seed=5))
    print(f"recorded trace: {trace.summary()}")

    def make_shard(shard_id):
        engine = InferenceEngine.from_bundle(registry.resolve("tiny"),
                                             cache_size=8)
        return EngineShard(engine, shard_id=shard_id)

    # ------------------------------------------------------------------
    # 2. a durable fleet: every accepted delta is logged before the
    #    version swap, every stream opens with a snapshot
    # ------------------------------------------------------------------
    wal_root = Path(tempfile.mkdtemp(prefix="repro-wal-"))
    fleet = FleetRouter([make_shard("shard-0"), make_shard("shard-1")],
                        replication=2,
                        wal=DurabilityLog(wal_root, fsync="always"))
    kill_at = len(trace) // 2
    replay_trace(replace(trace, ops=trace.ops[:kill_at]), fleet,
                 collect_stats=False)
    print(f"\nreplayed {kill_at}/{len(trace)} ops durably, then ... crash.")
    status = fleet.durability_status()
    print(f"WAL at {wal_root}: {status['segments']} segment(s), "
          f"{status['snapshots']} snapshot(s), {status['log_bytes']} bytes")

    # ------------------------------------------------------------------
    # 3. the crash: nothing survives but the WAL directory
    # ------------------------------------------------------------------
    del fleet

    # ------------------------------------------------------------------
    # 4. restore into a brand-new fleet and resume the trace
    # ------------------------------------------------------------------
    restored = FleetRouter([make_shard("shard-0"), make_shard("shard-1")],
                           replication=2, wal=DurabilityLog(wal_root))
    report = restored.restore()
    for name, entry in sorted(report.items()):
        print(f"  restored '{name}' on {entry['shard']}: "
              f"version {entry['version']} (snapshot seq "
              f"{entry['snapshot_seq']} + {entry['records_replayed']} "
              f"replayed record(s))")
    versions = {name: entry["version"] for name, entry in report.items()}
    start = resume_point(trace, versions)
    print(f"resuming at op {start}/{len(trace)}")
    resumed = replay_trace(trace, restored, collect_stats=False,
                           start_at=start, open_cities=False)

    # ------------------------------------------------------------------
    # 5. recovery must be numerically invisible
    # ------------------------------------------------------------------
    oracle = replay_trace(trace, make_shard("oracle"), collect_stats=False)
    identical, max_diff = resumed_tail_identical(oracle, resumed, start)
    print(f"resumed tail vs uninterrupted oracle: "
          f"bit_identical={identical} max_diff={max_diff:.3e}")

    checkpoints = restored.checkpoint(force=True)
    print("checkpointed: " + ", ".join(
        f"{name}@seq{entry['seq']}" for name, entry
        in sorted(checkpoints.items())))
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
