"""Error analysis of an urban-village screening run.

Beyond aggregate AUC numbers, a screening campaign needs to know *where* a
detector fails: which kinds of regions trigger false alarms, which kinds of
villages are missed, and whether the predicted probabilities can be read as
risk levels.  Because the synthetic cities expose their latent state, this
example can answer those questions exactly:

1. train CMSF on one fold of a synthetic city;
2. visualise detections against ground truth (the paper's Figure 7 view);
3. break errors down by latent land use and village kind;
4. check probability calibration and the screening-budget trade-off;
5. inspect the spatial structure of predictions (Moran's I).

Run with::

    python examples/detection_error_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (calibration_report, cluster_quality, error_breakdown,
                            morans_i, screening_report)
from repro.core import CMSFConfig, CMSFDetector
from repro.eval import block_kfold, detection_report, rank_regions
from repro.synth import generate_city, mini_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig
from repro.viz import bar_chart, render_detection_map, sparkline


def main() -> None:
    # ------------------------------------------------------------------
    # 1. data and model
    # ------------------------------------------------------------------
    city = generate_city(mini_city(seed=3))
    graph = build_urg(city, UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=64),
                                           block_size=5))
    split = block_kfold(graph, n_folds=3, seed=0)[0]

    detector = CMSFDetector(CMSFConfig(hidden_dim=32, image_reduce_dim=64,
                                       classifier_hidden=16, num_clusters=16,
                                       master_epochs=150, slave_epochs=30,
                                       dropout=0.2, seed=0))
    print(f"training CMSF on {split.train_indices.size} labelled regions ...")
    detector.fit(graph, split.train_indices)
    scores = detector.predict_proba(graph)

    history = detector.training_history()
    print(f"master loss curve: {sparkline(history['master'])}")

    metrics = detection_report(graph.labels[split.test_indices],
                               scores[split.test_indices])
    print(f"held-out AUC: {metrics['auc']:.3f}, "
          f"recall@5%: {metrics['recall@5']:.3f}")

    # ------------------------------------------------------------------
    # 2. Figure 7 style detection map
    # ------------------------------------------------------------------
    detected = rank_regions(detector, graph, top_percent=5.0)
    print()
    print(render_detection_map(graph, detected,
                               title="top-5% detections vs ground truth"))

    # ------------------------------------------------------------------
    # 3. error breakdown against the simulator's hidden state
    # ------------------------------------------------------------------
    breakdown = error_breakdown(graph, city, scores, top_percent=5.0)
    print()
    print(bar_chart(list(breakdown["detected_by_land_use"]),
                    list(breakdown["detected_by_land_use"].values()),
                    title="detections by latent land use", value_format="{:.0f}"))
    if breakdown["miss_rate_by_village_kind"]:
        print()
        print(bar_chart(list(breakdown["miss_rate_by_village_kind"]),
                        list(breakdown["miss_rate_by_village_kind"].values()),
                        title="miss rate by village kind"))

    # ------------------------------------------------------------------
    # 4. calibration and screening budgets
    # ------------------------------------------------------------------
    labeled = graph.labeled_indices()
    report = calibration_report(graph.labels[labeled], scores[labeled])
    print(f"\ncalibration on labelled regions: ECE={report.expected_calibration_error:.3f}, "
          f"Brier={report.brier_score:.3f}")
    print()
    print(screening_report(graph.ground_truth, scores))

    # ------------------------------------------------------------------
    # 5. spatial and cluster structure
    # ------------------------------------------------------------------
    print(f"\nMoran's I of predicted probabilities: "
          f"{morans_i(graph, scores):.3f} (positive = spatially coherent)")
    assignment = detector.cluster_assignment(graph)
    quality = cluster_quality(assignment, graph.ground_truth,
                              num_clusters=int(assignment.max()) + 1)
    print(f"GSCM cluster purity: {quality.purity:.3f}, "
          f"UV concentration in top clusters: {quality.uv_concentration:.3f}")


if __name__ == "__main__":
    main()
