"""Quickstart for the serving stack: train → package → serve → score.

This example turns a trained CMSF detector into a deployed scoring
service, entirely in one process:

1. train a (reduced) CMSF detector on a small synthetic city;
2. publish it as a versioned model bundle in a local model registry;
3. start the HTTP scoring service on an ephemeral port;
4. score the city through the HTTP client and show that repeated requests
   are answered from the engine's fingerprint cache.

Run with::

    python examples/serving_quickstart.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.core import CMSFConfig, CMSFDetector
from repro.serve import ModelRegistry, ScoringClient, ScoringServer
from repro.synth import generate_city, tiny_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig


def main() -> None:
    # ------------------------------------------------------------------
    # 1. train once
    # ------------------------------------------------------------------
    city = generate_city(tiny_city(seed=7))
    graph = build_urg(city, UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=32)))
    config = CMSFConfig(hidden_dim=32, image_reduce_dim=32, num_clusters=8,
                        master_epochs=60, slave_epochs=15)
    print(f"training CMSF on '{graph.name}' ({graph.num_nodes} regions) ...")
    detector = CMSFDetector(config).fit(graph, graph.labeled_indices())

    # ------------------------------------------------------------------
    # 2. package into a model registry
    # ------------------------------------------------------------------
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-models-"))
    bundle_dir = registry.publish(detector, graph, name=graph.name)
    print(f"published bundle -> {bundle_dir}")
    print(registry.describe())

    # ------------------------------------------------------------------
    # 3. serve over HTTP (background thread, ephemeral port)
    # ------------------------------------------------------------------
    with ScoringServer(registry) as server:
        print(f"scoring service listening at {server.url}")
        client = ScoringClient(server.url)
        print("health:", client.wait_until_ready())

        # --------------------------------------------------------------
        # 4. score through the service — cold, then cached
        # --------------------------------------------------------------
        cold = client.score(graph, graph.name, top_percent=5.0)
        print(f"cold request:   {cold['elapsed_ms']:8.2f} ms  "
              f"(cache_hit={cold['cache_hit']})")
        warm = client.score(graph, graph.name, top_percent=5.0)
        print(f"cached request: {warm['elapsed_ms']:8.2f} ms  "
              f"(cache_hit={warm['cache_hit']})")

        served = np.asarray(warm["probabilities"])
        direct = detector.predict_proba(graph)
        print("served == direct predict_proba:", bool(np.array_equal(served, direct)))
        print(f"top-5% screening shortlist: {len(warm['selected'])} regions, "
              f"engine cache hit rate {warm['cache']['hit_rate']:.2f}")


if __name__ == "__main__":
    main()
