"""Quickstart for the streaming stack: open a stream, push deltas, rescore.

This example deploys a trained CMSF detector and then *evolves* the city
instead of re-uploading it:

1. train a (reduced) CMSF detector on a small synthetic city and publish
   it to a local model registry;
2. start the HTTP scoring service and open an update stream (the only
   time the full graph crosses the wire);
3. generate a seeded evolution — POI churn, imagery refreshes, road
   rewiring — and push each step as an incremental delta to ``/update``;
4. show the delta-localised rescoring at work: the stream opens with
   ``incremental="auto"`` (the default), each update reports whether it
   rescored incrementally and how many regions its receptive field
   covered, feature-only deltas reuse the cached edge plan while
   topology deltas rebuild it, every streamed score matches a full local
   rebuild bit-for-bit, and a drift report summarises how the scores
   moved.

Run with::

    python examples/streaming_quickstart.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.analysis import score_drift_report
from repro.core import CMSFConfig, CMSFDetector
from repro.serve import ModelRegistry, ScoringClient, ScoringServer
from repro.synth import EvolutionConfig, generate_city, generate_evolution, tiny_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig


def main() -> None:
    # ------------------------------------------------------------------
    # 1. train once, publish once
    # ------------------------------------------------------------------
    city = generate_city(tiny_city(seed=7))
    graph = build_urg(city, UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=32)))
    config = CMSFConfig(hidden_dim=32, image_reduce_dim=32, num_clusters=8,
                        master_epochs=60, slave_epochs=15)
    print(f"training CMSF on '{graph.name}' ({graph.num_nodes} regions) ...")
    detector = CMSFDetector(config).fit(graph, graph.labeled_indices())

    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-models-"))
    registry.publish(detector, graph, name=graph.name)

    # ------------------------------------------------------------------
    # 2. serve, then open an update stream with the full graph
    # ------------------------------------------------------------------
    with ScoringServer(registry) as server:
        client = ScoringClient(server.url)
        client.wait_until_ready()
        print(f"scoring service at {server.url}")

        opened = client.open_stream("live-city", graph, graph.name,
                                    incremental="auto")
        trajectories = [np.asarray(opened["score"]["probabilities"])]
        print(f"stream 'live-city' opened at version {opened['version']} "
              f"({opened['regions']} regions, incremental rescoring: "
              f"{opened['incremental']})")

        # --------------------------------------------------------------
        # 3. evolve the city and push each step as a delta
        # --------------------------------------------------------------
        deltas = generate_evolution(graph, EvolutionConfig(
            steps=6, seed=42,
            scenarios=("poi_churn", "imagery_refresh", "road_rewiring")))
        current = graph
        for delta in deltas:
            response = client.update_stream("live-city", delta)
            current = delta.apply(current)      # local mirror for checking
            streamed = np.asarray(response["score"]["probabilities"])
            rebuilt = detector.predict_proba(current)
            bitwise = "bit-identical" if np.array_equal(streamed, rebuilt) \
                else "MISMATCH"
            plan = ("plan reused" if response["plan_reused"]
                    else "plan rebuilt")
            rescored = response["mode"]
            if rescored == "incremental":
                rescored += (f" ({response['affected_regions']}/"
                             f"{response['num_regions']} regions recomputed)")
            print(f"  v{response['version']} {delta.kind:<16} "
                  f"{plan:<12} rescore: {rescored:<40} "
                  f"vs full rebuild: {bitwise}")
            trajectories.append(streamed)

        stats = response["stats"]
        print(f"stream stats: {stats['feature_updates']} feature updates "
              f"(plan reused {stats['plan_reuses']}x), "
              f"{stats['topology_updates']} topology updates "
              f"(plan rebuilt {stats['plan_rebuilds']}x); "
              f"{stats['incremental_rescores']}/{stats['rescores']} rescores "
              f"ran incrementally")

        # --------------------------------------------------------------
        # 4. drift report over the score trajectory
        # --------------------------------------------------------------
        report = score_drift_report(
            trajectories,
            kinds=[delta.kind for delta in deltas],
            topology=[delta.touches_topology for delta in deltas])
        print()
        print(report.format())


if __name__ == "__main__":
    main()
