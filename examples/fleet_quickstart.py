"""Quickstart for fleet-scale serving: shards, failover, replayed traffic.

This example scales the serving layer past one engine:

1. train a (reduced) CMSF detector on a small synthetic city and publish
   it to a local model registry;
2. derive three structurally distinct city variants and record a seeded
   workload trace over them (mixed score / update / evict ops with
   concrete deltas);
3. spin up a 2-shard in-process fleet — each shard wraps its own
   :class:`~repro.serve.engine.InferenceEngine` loaded from the bundle —
   behind a consistent-hash :class:`~repro.serve.fleet.FleetRouter` with
   replication, and replay the trace against it;
4. verify the fleet's float64 scores are bit-identical to a single-engine
   oracle replay of the same trace, then kill a shard mid-trace with the
   fault-injection wrapper and show the router failing over without
   dropping a request or changing a score;
5. print the fleet-wide aggregated ``/stats`` (cache totals, incremental
   counters, routing/failover counters).

Run with::

    python examples/fleet_quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.bench import (WorkloadConfig, derive_cities, generate_workload,
                         load_trace, replay_trace, replays_identical,
                         save_trace)
from repro.core import CMSFConfig, CMSFDetector
from repro.serve import (ChaosShard, EngineShard, FleetRouter,
                         InferenceEngine, ModelRegistry)
from repro.synth import generate_city, tiny_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig


def main() -> None:
    # ------------------------------------------------------------------
    # 1. train once, publish once
    # ------------------------------------------------------------------
    city = generate_city(tiny_city(seed=7))
    graph = build_urg(city, UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=32)))
    config = CMSFConfig(hidden_dim=32, image_reduce_dim=32, num_clusters=8,
                        master_epochs=60, slave_epochs=15)
    print(f"training CMSF on '{graph.name}' ({graph.num_nodes} regions) ...")
    detector = CMSFDetector(config).fit(graph, graph.labeled_indices())
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-models-"))
    registry.publish(detector, graph, "tiny")

    # ------------------------------------------------------------------
    # 2. record a deterministic workload trace over three cities
    # ------------------------------------------------------------------
    cities = derive_cities(graph, 3, seed=11)
    trace = generate_workload(cities, WorkloadConfig(ops=24, seed=5))
    trace_path = Path(tempfile.mkdtemp(prefix="repro-traces-")) / "trace.npz"
    save_trace(trace, trace_path)
    trace = load_trace(trace_path)  # replay exactly what was recorded
    print(f"recorded trace: {trace.summary()}")
    for name, variant in cities.items():
        print(f"  {name}: routing key "
              f"{variant.structural_fingerprint()[:12]}")

    # ------------------------------------------------------------------
    # 3. a 2-shard fleet, each shard with its own engine
    # ------------------------------------------------------------------
    def make_shard(shard_id):
        engine = InferenceEngine.from_bundle(registry.resolve("tiny"),
                                             cache_size=8)
        return EngineShard(engine, shard_id=shard_id)

    fleet = FleetRouter([make_shard("shard-0"), make_shard("shard-1")],
                        replication=2)
    fleet_replay = replay_trace(trace, fleet)
    print(f"\nfleet replay: {fleet_replay.summary()}")
    for name, state in fleet.cities().items():
        print(f"  {name} -> {state['active']} "
              f"(replicas {state['replicas']}, version {state['version']})")

    # ------------------------------------------------------------------
    # 4a. the fleet is numerically invisible: 1-shard oracle comparison
    # ------------------------------------------------------------------
    oracle_replay = replay_trace(trace, make_shard("oracle"))
    identical, max_diff = replays_identical(oracle_replay, fleet_replay)
    print(f"\nfleet vs single-engine oracle: bit-identical={identical} "
          f"(max |diff| {max_diff:.3e})")

    # ------------------------------------------------------------------
    # 4b. chaos: kill a shard mid-trace, nothing is lost
    # ------------------------------------------------------------------
    victim = make_shard("doomed")
    chaos = ChaosShard(victim, fail_after=4)  # dies after 4 delegated calls
    chaos_fleet = FleetRouter([chaos, make_shard("survivor")], replication=2)
    chaos_replay = replay_trace(trace, chaos_fleet)
    identical, max_diff = replays_identical(oracle_replay, chaos_replay)
    counters = chaos_fleet.fleet_stats
    print(f"chaos replay with shard 'doomed' killed mid-trace: "
          f"completed {chaos_replay.completed_ops}/{len(trace)} ops, "
          f"failovers={counters.failovers}, "
          f"shard_failures={counters.shard_failures}, "
          f"bit-identical={identical}")

    # ------------------------------------------------------------------
    # 5. fleet-wide aggregated stats
    # ------------------------------------------------------------------
    stats = fleet.stats()
    totals = stats["totals"]
    print("\naggregated fleet /stats:")
    print(f"  cache: {totals['cache']}")
    print(f"  cold_computes={totals['cold_computes']} "
          f"stampedes_avoided={totals['stampedes_avoided']} "
          f"streams_open={totals['streams_open']}")
    incr = totals["stream_counters"]
    print(f"  stream counters: updates={incr.get('updates', 0)}, "
          f"incremental_rescores={incr.get('incremental_rescores', 0)}, "
          f"plan_reuses={incr.get('plan_reuses', 0)}")
    print(f"  routing: {stats['fleet']}")


if __name__ == "__main__":
    main()
