"""Quickstart for open-loop load testing: concurrent clients, SLO tails.

The fleet quickstart replays its trace serially, so it can only measure
routing overhead.  This example drives the same deterministic traffic
through the concurrent open-loop driver (:mod:`repro.bench.load`) and
shows where sharding actually pays:

1. train a (reduced) CMSF detector on a small synthetic city and publish
   it to a local model registry;
2. derive six structurally distinct city variants and record a seeded,
   score-heavy workload trace over them;
3. build a digest-mode serial oracle (``replay_trace(keep_scores=False)``
   keeps sha256 hashes, not arrays — O(1) score memory on long traces);
4. run the open-loop driver against a 1-shard and a 3-shard fleet with
   3 worker threads and a deliberately overloading arrival rate: small
   per-engine caches mean the single shard thrashes while the 3-shard
   fleet holds every route's cities resident;
5. verify both runs are digest-identical to the oracle (concurrency and
   sharding never change a score), then print throughput, latency
   percentiles, and the 3-vs-1 scaling ratio.

Run with::

    python examples/load_quickstart.py
"""

from __future__ import annotations

import tempfile

from repro.bench import (LoadConfig, WorkloadConfig, derive_cities,
                         format_load_report, generate_workload,
                         load_matches_serial_oracle, replay_trace, run_load)
from repro.core import CMSFConfig, CMSFDetector
from repro.serve import (EngineShard, FleetRouter, InferenceEngine,
                         ModelRegistry)
from repro.synth import generate_city, tiny_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig


def main() -> None:
    # ------------------------------------------------------------------
    # 1. train once, publish once
    # ------------------------------------------------------------------
    city = generate_city(tiny_city(seed=7))
    graph = build_urg(city, UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=32)))
    config = CMSFConfig(hidden_dim=32, image_reduce_dim=32, num_clusters=8,
                        master_epochs=60, slave_epochs=15)
    print(f"training CMSF on '{graph.name}' ({graph.num_nodes} regions) ...")
    detector = CMSFDetector(config).fit(graph, graph.labeled_indices())
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-models-"))
    registry.publish(detector, graph, "tiny")

    # ------------------------------------------------------------------
    # 2. a score-heavy trace over six cities
    # ------------------------------------------------------------------
    cities = derive_cities(graph, 6, seed=11)
    trace = generate_workload(cities, WorkloadConfig(
        ops=96, seed=5, score_weight=0.96, update_weight=0.02,
        evict_weight=0.02))
    print(f"recorded trace: {trace.summary()}")

    # ------------------------------------------------------------------
    # 3. serial single-shard oracle, digest mode (no arrays retained)
    # ------------------------------------------------------------------
    def make_shard(shard_id, cache_size):
        engine = InferenceEngine.from_bundle(registry.resolve("tiny"),
                                             cache_size=cache_size)
        return EngineShard(engine, shard_id=shard_id)

    oracle = replay_trace(trace, make_shard("oracle", cache_size=8),
                          collect_stats=False, keep_scores=False)

    # ------------------------------------------------------------------
    # 4. open-loop load: 3 workers, overload arrival rate, warm-up cut
    # ------------------------------------------------------------------
    # cache_size=2 per engine: each worker round-robins 3 cities, so a
    # single shard cycles distinct fingerprints through its LRU and
    # recomputes cold, while each of 3 shards keeps its 2 ring-primary
    # cities resident
    load = LoadConfig(workers=3, arrival_rate=500.0, warmup_ops=2)
    score_throughput = {}
    for shards in (1, 3):
        fleet = FleetRouter(
            [make_shard(f"shard-{i}", cache_size=2) for i in range(shards)],
            replication=min(2, shards))
        result = run_load(trace, fleet, load)

        # 5. concurrency must be invisible in the numbers
        identical, mismatches = load_matches_serial_oracle(
            trace, result, oracle)
        summary = result.summary()
        score_throughput[shards] = summary["throughput"]["score_ops_per_s"]
        cache = fleet.stats()["totals"]["cache"]
        fleet.close()

        print(f"\n--- {shards} shard(s) ---")
        print(format_load_report(summary))
        print(f"digest-identical to serial oracle: "
              f"{'yes' if identical else 'NO: ' + mismatches[0]}")
        print(f"aggregate cache: {cache}")

    ratio = score_throughput[3] / score_throughput[1]
    print(f"\nscaling: score throughput x{ratio:.2f} at 3 shards vs 1 "
          f"(aggregate cache capacity, not parallel compute)")


if __name__ == "__main__":
    main()
