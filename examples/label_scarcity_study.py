"""Label-scarcity study: how CMSF degrades as labelled UVs become scarce.

The paper's central claim is that CMSF handles the scarcity of labelled
urban villages better than conventional deep models (Figure 6(c)).  This
example reproduces that study in miniature on a synthetic city:

1. build the URG and a block-level train/test split;
2. train CMSF and an MLP on 25%, 50% and 100% of the training labels;
3. report the AUC of both models per label budget, plus the ablation
   CMSF-H (no hierarchical structure) to show where the robustness comes
   from.

Run with::

    python examples/label_scarcity_study.py
"""

from __future__ import annotations

from repro.baselines import MLPDetector
from repro.baselines.base import BaselineTrainingConfig
from repro.core import CMSFConfig, make_variant
from repro.eval import format_table, mask_train_indices, roc_auc, single_holdout
from repro.synth import generate_city, mini_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig

RATIOS = (0.25, 0.5, 1.0)


def evaluate(detector, graph, train_indices, test_indices) -> float:
    detector.fit(graph, train_indices)
    scores = detector.predict_proba(graph)
    return roc_auc(graph.labels[test_indices], scores[test_indices])


def main() -> None:
    city = generate_city(mini_city(seed=9))
    graph = build_urg(city, UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=64)))
    split = single_holdout(graph, test_fraction=0.33, seed=1)
    print(f"{graph.num_nodes} regions, {split.train_indices.size} labelled for "
          f"training, {split.test_indices.size} held out for evaluation.\n")

    config = CMSFConfig(hidden_dim=32, image_reduce_dim=64, classifier_hidden=16,
                        num_clusters=16, master_epochs=80, slave_epochs=15, seed=0)

    rows = []
    for ratio in RATIOS:
        train = mask_train_indices(split.train_indices, graph.labels, ratio, seed=0)
        n_uv = int((graph.labels[train] == 1).sum())
        print(f"ratio {ratio:.0%}: {train.size} labelled regions ({n_uv} UVs)")

        cmsf_auc = evaluate(make_variant("CMSF", config), graph, train,
                            split.test_indices)
        cmsf_h_auc = evaluate(make_variant("CMSF-H", config), graph, train,
                              split.test_indices)
        mlp_auc = evaluate(MLPDetector(training=BaselineTrainingConfig(epochs=100, seed=0)),
                           graph, train, split.test_indices)
        rows.append([f"{int(ratio * 100)}%", train.size, n_uv,
                     cmsf_auc, cmsf_h_auc, mlp_auc])

    print()
    print(format_table(
        ["labeled ratio", "#train", "#train UVs", "CMSF AUC", "CMSF-H AUC", "MLP AUC"],
        rows, title="Label-scarcity study (Figure 6(c) in miniature)"))
    print("\nExpected shape: all methods degrade with fewer labels, and CMSF's "
          "hierarchical context (vs CMSF-H and the MLP) softens the drop.")


if __name__ == "__main__":
    main()
