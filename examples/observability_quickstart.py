"""Quickstart for the observability layer: /metrics, histograms, sweeps.

This example walks the whole :mod:`repro.obs` surface:

1. train a (reduced) CMSF detector, publish it and start a
   :class:`~repro.serve.server.ScoringServer` with an injected
   :class:`~repro.obs.MetricsRegistry`;
2. drive some traffic (a cold score, a cached repeat, a streamed delta)
   and scrape ``GET /metrics`` — the Prometheus text exposition covers
   every layer at once: HTTP endpoints, engine cache, streaming
   rescores;
3. parse the scrape back with :func:`~repro.obs.parse_prometheus_text`
   and read latency percentiles straight out of the histogram buckets;
4. diff two scrapes with :func:`~repro.obs.metrics_delta` to isolate
   exactly one request's worth of traffic;
5. run a 2-cell ``fleet size x replication`` sweep with
   :func:`repro.bench.run_experiment` and print the comparison table
   (the library face of ``repro-uv experiment``).

Run with::

    python examples/observability_quickstart.py
"""

from __future__ import annotations

import tempfile

from repro.bench import (ExperimentConfig, WorkloadConfig, derive_cities,
                         format_experiment_table, generate_workload,
                         run_experiment)
from repro.core import CMSFConfig, CMSFDetector
from repro.obs import MetricsRegistry, metrics_delta, parse_prometheus_text
from repro.serve import ModelRegistry, ScoringClient, ScoringServer
from repro.synth import EvolutionConfig, generate_city, generate_evolution, tiny_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig


def main() -> None:
    # ------------------------------------------------------------------
    # 1. train, publish, serve — with an injected metrics registry
    # ------------------------------------------------------------------
    city = generate_city(tiny_city(seed=7))
    graph = build_urg(city, UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=32)))
    config = CMSFConfig(hidden_dim=32, image_reduce_dim=32, num_clusters=8,
                        master_epochs=60, slave_epochs=15)
    print(f"training CMSF on '{graph.name}' ({graph.num_nodes} regions) ...")
    detector = CMSFDetector(config).fit(graph, graph.labeled_indices())
    models = ModelRegistry(tempfile.mkdtemp(prefix="repro-models-"))
    models.publish(detector, graph, "tiny")

    metrics = MetricsRegistry()  # fresh, not the process-global default
    with ScoringServer(models, quiet=True, metrics=metrics) as server:
        client = ScoringClient(server.url)
        client.wait_until_ready()

        # --------------------------------------------------------------
        # 2. traffic, then one scrape covering every layer
        # --------------------------------------------------------------
        client.score(graph, "tiny")            # cold: cache miss
        client.score(graph, "tiny")            # warm: cache hit
        client.open_stream("live", graph, "tiny")
        delta = generate_evolution(graph, EvolutionConfig(steps=1, seed=3))[0]
        client.update_stream("live", delta)    # streamed incremental update

        text = client.metrics_text()           # GET /metrics
        families = [line for line in text.splitlines()
                    if line.startswith("# TYPE")]
        print(f"\nscraped /metrics: {len(text.splitlines())} lines, "
              f"{len(families)} families, e.g.")
        for line in families[:6]:
            print(f"  {line}")

        # --------------------------------------------------------------
        # 3. structured read-back: percentiles from histogram buckets
        # --------------------------------------------------------------
        parsed = parse_prometheus_text(text)
        p50 = parsed.quantile("repro_http_request_seconds", 0.50,
                              endpoint="/score")
        p95 = parsed.quantile("repro_http_request_seconds", 0.95,
                              endpoint="/score")
        print(f"\n/score latency: p50~{p50 * 1000:.2f}ms p95~{p95 * 1000:.2f}ms "
              f"over {parsed.value('repro_http_request_seconds_count', endpoint='/score'):.0f} requests")
        print(f"engine cache: hits={parsed.total('repro_engine_cache_hits_total'):.0f} "
              f"misses={parsed.total('repro_engine_cache_misses_total'):.0f}")
        print("stream update modes: " + ", ".join(
            f"{mode}={parsed.value('repro_stream_update_seconds_count', mode=mode):.0f}"
            for mode in parsed.labels_of("repro_stream_update_seconds_count", "mode")))

        # --------------------------------------------------------------
        # 4. metrics_delta isolates a slice of traffic: the stream update
        #    above evicted the superseded version from the result cache,
        #    so scoring twice more is exactly one miss + one hit
        # --------------------------------------------------------------
        before = parsed
        client.score(graph, "tiny")
        client.score(graph, "tiny")
        after = parse_prometheus_text(client.metrics_text())
        moved = metrics_delta(before, after)
        print(f"\ntwo more /score moved: requests(+"
              f"{moved.value('repro_http_requests_total', endpoint='/score', method='POST', status='200'):.0f}), "
              f"cache misses(+{moved.total('repro_engine_cache_misses_total'):.0f}), "
              f"cache hits(+{moved.total('repro_engine_cache_hits_total'):.0f})")

    # ------------------------------------------------------------------
    # 5. a tiny config sweep: 1-shard vs 2-shard fleet on one trace
    # ------------------------------------------------------------------
    cities = derive_cities(graph, 2, seed=11)
    trace = generate_workload(cities, WorkloadConfig(ops=16, seed=5))
    report = run_experiment(models.resolve("tiny"), [trace],
                            ExperimentConfig(fleet_sizes=(1, 2),
                                             replications=(2,)),
                            model="tiny")
    print()
    print(format_experiment_table(report))


if __name__ == "__main__":
    main()
