"""Cross-city transfer of the contextual master-slave framework.

The paper trains and evaluates CMSF within each city.  A natural follow-up
question for a city planner is whether a model pre-trained on a city with
many confirmed urban villages can help screening a *new* city where only a
handful of labels exist yet.  This example:

1. generates two synthetic cities that share the same feature configuration
   (a well-labelled "source" and a sparsely labelled "target");
2. pre-trains the CMSF master model on the source city;
3. adapts it to the target city with two strategies — plain fine-tuning
   (the meta-optimisation style transfer discussed in the related work) and
   the full master-slave adaptation (fine-tuning plus the MS-Gate stage);
4. compares both against training from scratch on the target labels only.

Run with::

    python examples/cross_city_transfer.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CMSFConfig
from repro.eval import block_kfold
from repro.extensions import CrossCityTransfer, TransferConfig
from repro.eval.reporting import format_table
from repro.synth import generate_city, mini_city
from repro.urg import UrgBuildConfig, build_urg
from repro.urg.image_features import ImageFeatureConfig


def build_city_graph(seed: int):
    city = generate_city(mini_city(seed=seed))
    graph = build_urg(city, UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=64),
                                           block_size=5))
    return city, graph


def main() -> None:
    # ------------------------------------------------------------------
    # 1. two cities sharing the feature space
    # ------------------------------------------------------------------
    _, source_graph = build_city_graph(seed=1)
    _, target_graph = build_city_graph(seed=6)
    print(f"source city: {len(source_graph.labeled_indices())} labelled regions")
    print(f"target city: {len(target_graph.labeled_indices())} labelled regions")

    # The target city is label-scarce: keep only one training fold of its
    # labels for adaptation and evaluate on the rest.
    split = block_kfold(target_graph, n_folds=3, seed=0)[0]
    train, test = split.test_indices, split.train_indices  # small train, big test
    print(f"target adaptation set: {train.size} labelled regions, "
          f"evaluation set: {test.size} labelled regions")

    # ------------------------------------------------------------------
    # 2. pre-train on the source city
    # ------------------------------------------------------------------
    config = TransferConfig(
        cmsf=CMSFConfig(hidden_dim=32, image_reduce_dim=64, classifier_hidden=16,
                        num_clusters=16, master_epochs=120, slave_epochs=25,
                        dropout=0.2, seed=0),
        target_epochs=60,
    )
    transfer = CrossCityTransfer(config)
    print("\npre-training the master model on the source city ...")
    transfer.pretrain(source_graph)

    # ------------------------------------------------------------------
    # 3. adapt to the target city with three strategies
    # ------------------------------------------------------------------
    print("adapting to the target city ...")
    results = transfer.transfer(target_graph, train, test,
                                strategies=("scratch", "finetune", "master_slave"))

    rows = []
    for name, result in results.items():
        rows.append([name, result.metrics["auc"], result.metrics["recall@5"],
                     result.metrics["precision@5"], result.metrics["f1@5"]])
    print()
    print(format_table(["strategy", "AUC", "Recall@5", "Precision@5", "F1@5"], rows,
                       title="Cross-city transfer on the target city"))

    best = max(results, key=lambda name: results[name].metrics["auc"])
    print(f"\nbest strategy on this draw: {best}")
    print("Pre-training on a labelled source city typically helps when the "
          "target city has few confirmed urban villages; the master-slave "
          "adaptation additionally tailors the predictor to each target region.")


if __name__ == "__main__":
    main()
