"""Export regions, POIs and predictions to GeoJSON / CSV.

Real urban-village screening campaigns hand their candidate lists to city
planners through GIS tools and spreadsheets; these helpers produce the same
artefacts from the synthetic pipeline so the examples and the CLI can show
an end-to-end workflow.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..synth.city import SyntheticCity
from ..synth.config import LAND_USE_NAMES, LandUse
from ..urg.graph import UrbanRegionGraph

PathLike = Union[str, Path]


def _region_polygon(row: int, col: int, size: float) -> List[List[List[float]]]:
    """GeoJSON polygon (one linear ring) of a region grid cell in metres."""
    x0, y0 = col * size, row * size
    x1, y1 = x0 + size, y0 + size
    return [[[x0, y0], [x1, y0], [x1, y1], [x0, y1], [x0, y0]]]


def regions_to_geojson(graph: UrbanRegionGraph,
                       scores: Optional[np.ndarray] = None,
                       city: Optional[SyntheticCity] = None,
                       region_size_m: float = 128.0) -> Dict:
    """Build a GeoJSON ``FeatureCollection`` with one polygon per region.

    Parameters
    ----------
    graph:
        The URG whose (active) regions are exported.
    scores:
        Optional per-node predicted UV probability added as a property.
    city:
        Optional source city; when given, the latent land use of each region
        is included (useful for inspecting the simulator, never available to
        the detectors).
    region_size_m:
        Side length of one region cell in metres.
    """
    if scores is not None and len(scores) != graph.num_nodes:
        raise ValueError("scores must have one entry per node")
    width = graph.grid_shape[1]
    land_use = city.land_use.land_use.reshape(-1) if city is not None else None
    features = []
    for node in range(graph.num_nodes):
        flat = int(graph.region_index[node])
        row, col = divmod(flat, width)
        properties = {
            "node": node,
            "region_index": flat,
            "row": row,
            "col": col,
            "label": int(graph.labels[node]),
            "labeled": bool(graph.labeled_mask[node]),
            "ground_truth_uv": int(graph.ground_truth[node]),
        }
        if scores is not None:
            properties["uv_probability"] = float(scores[node])
        if land_use is not None:
            properties["land_use"] = LAND_USE_NAMES[LandUse(int(land_use[flat]))]
        features.append({
            "type": "Feature",
            "geometry": {"type": "Polygon",
                         "coordinates": _region_polygon(row, col, region_size_m)},
            "properties": properties,
        })
    return {"type": "FeatureCollection", "features": features}


def save_geojson(collection: Dict, path: PathLike) -> Path:
    """Write a GeoJSON dictionary to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(collection, handle)
    return path


def export_pois_csv(city: SyntheticCity, path: PathLike) -> Path:
    """Write the city's POI table to a CSV file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x", "y", "category", "poi_type", "region_index",
                         "facility_group"])
        for poi in city.pois:
            writer.writerow([f"{poi.x:.3f}", f"{poi.y:.3f}", poi.category,
                             poi.poi_type, poi.region_index, poi.facility_group])
    return path


def export_predictions_csv(graph: UrbanRegionGraph, scores: Sequence[float],
                           path: PathLike, top_k: Optional[int] = None) -> Path:
    """Write ranked per-region predictions to CSV.

    The output is sorted by descending UV probability, which is the candidate
    list a screening campaign would hand to investigators; ``top_k`` truncates
    it to the screening budget.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape[0] != graph.num_nodes:
        raise ValueError("scores must have one entry per node")
    order = np.argsort(-scores, kind="stable")
    if top_k is not None:
        order = order[:top_k]
    width = graph.grid_shape[1]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["rank", "node", "row", "col", "uv_probability",
                         "label", "ground_truth_uv"])
        for rank, node in enumerate(order, start=1):
            flat = int(graph.region_index[int(node)])
            row, col = divmod(flat, width)
            writer.writerow([rank, int(node), row, col, f"{scores[int(node)]:.6f}",
                             int(graph.labels[int(node)]),
                             int(graph.ground_truth[int(node)])])
    return path
