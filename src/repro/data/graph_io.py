"""Persist built urban region graphs as ``.npz`` archives.

Building the URG for a large preset takes seconds (feature construction and
road reachability dominate); persisting the result lets the benchmark
harness, the CLI and downstream applications reload it instantly.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Union

import numpy as np

from ..urg.graph import UrbanRegionGraph

PathLike = Union[str, Path]

#: Format marker stored inside every archive so future layout changes can be
#: detected when loading.
FORMAT_VERSION = 1


def _write_graph_npz(graph: UrbanRegionGraph, target) -> None:
    """Write the archive to ``target`` (a path or a binary file object)."""
    meta = {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "grid_shape": list(graph.grid_shape),
        "stats": graph.stats,
        "poi_feature_names": graph.poi_feature_names or [],
    }
    np.savez_compressed(
        target,
        edge_index=graph.edge_index,
        x_poi=graph.x_poi,
        x_img=graph.x_img,
        labels=graph.labels,
        labeled_mask=graph.labeled_mask,
        ground_truth=graph.ground_truth,
        region_index=graph.region_index,
        block_ids=graph.block_ids,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def _read_graph_npz(source) -> UrbanRegionGraph:
    """Rebuild a graph from ``source`` (a path or a binary file object)."""
    archive = np.load(source)
    meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
    if meta.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            "unsupported graph archive version %r (expected %d)"
            % (meta.get("format_version"), FORMAT_VERSION))
    return UrbanRegionGraph(
        name=meta["name"],
        edge_index=archive["edge_index"],
        x_poi=archive["x_poi"],
        x_img=archive["x_img"],
        labels=archive["labels"],
        labeled_mask=archive["labeled_mask"].astype(bool),
        ground_truth=archive["ground_truth"],
        region_index=archive["region_index"],
        block_ids=archive["block_ids"],
        grid_shape=tuple(meta["grid_shape"]),
        stats=meta["stats"],
        poi_feature_names=meta["poi_feature_names"] or None,
    )


def save_graph_npz(graph: UrbanRegionGraph, path: PathLike) -> Path:
    """Write ``graph`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    _write_graph_npz(graph, path)
    return path


def load_graph_npz(path: PathLike) -> UrbanRegionGraph:
    """Load a graph previously written by :func:`save_graph_npz`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"graph archive {path} does not exist")
    return _read_graph_npz(path)


def graph_to_bytes(graph: UrbanRegionGraph) -> bytes:
    """Serialise ``graph`` to the ``.npz`` archive format in memory.

    Same byte layout as :func:`save_graph_npz`; used by the serving wire
    protocol (:mod:`repro.serve.wire`) to ship graphs over HTTP without
    touching the filesystem.
    """
    buffer = io.BytesIO()
    _write_graph_npz(graph, buffer)
    return buffer.getvalue()


def graph_from_bytes(data: bytes) -> UrbanRegionGraph:
    """Rebuild a graph from bytes produced by :func:`graph_to_bytes`."""
    return _read_graph_npz(io.BytesIO(data))
