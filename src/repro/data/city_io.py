"""Save and load complete synthetic cities.

A city is written as a small directory so every raw data source stays a
separate, inspectable artefact — mirroring how the paper's real data would be
organised on disk:

``config.json``
    the :class:`~repro.synth.config.CityConfig` used to generate the city;
``land_use.npz``
    land-use codes, appearance fields, village membership and old-town mask;
``pois.csv``
    one row per POI (x, y, category, type, region index);
``roads.npz``
    intersection table (node id, x, y, region) and segment list;
``imagery.npz``
    latent appearance vectors and simulated VGG features;
``labels.npz``
    ground truth, labelled mask and observed labels.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Set, Tuple, Union

import networkx as nx
import numpy as np

from ..synth.city import SyntheticCity
from ..synth.config import (CityConfig, ImageryConfig, LabelingConfig, PoiConfig,
                            RoadConfig, UrbanVillageConfig)
from ..synth.imagery import ImageFeatureBank
from ..synth.labels import LabelSet
from ..synth.landuse import LandUseMap
from ..synth.poi import Poi
from ..synth.roads import RoadNetwork

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# config (de)serialisation
# ----------------------------------------------------------------------
def config_to_dict(config: CityConfig) -> Dict:
    """Convert a :class:`CityConfig` (nested dataclasses) to plain JSON types."""
    raw = dataclasses.asdict(config)
    # JSON keys are strings; the POI intensity map is keyed by int land use.
    raw["pois"]["base_intensity"] = {str(k): v
                                     for k, v in raw["pois"]["base_intensity"].items()}
    return raw


def config_from_dict(raw: Dict) -> CityConfig:
    """Rebuild a :class:`CityConfig` from :func:`config_to_dict` output."""
    pois = dict(raw["pois"])
    pois["base_intensity"] = {int(k): float(v)
                              for k, v in pois["base_intensity"].items()}
    villages = dict(raw["villages"])
    villages["size_range"] = tuple(villages["size_range"])
    return CityConfig(
        name=raw["name"],
        grid_height=raw["grid_height"],
        grid_width=raw["grid_width"],
        region_size_m=raw["region_size_m"],
        seed=raw["seed"],
        downtown_centers=raw["downtown_centers"],
        downtown_radius=raw["downtown_radius"],
        water_green_fraction=raw["water_green_fraction"],
        industrial_fraction=raw["industrial_fraction"],
        villages=UrbanVillageConfig(**villages),
        labeling=LabelingConfig(**raw["labeling"]),
        roads=RoadConfig(**raw["roads"]),
        pois=PoiConfig(**pois),
        imagery=ImageryConfig(**raw["imagery"]),
    )


# ----------------------------------------------------------------------
# component writers
# ----------------------------------------------------------------------
def _village_arrays(land_use: LandUseMap) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten village membership into parallel (village_id, row, col) arrays."""
    village_ids, rows, cols = [], [], []
    for village_id, village in enumerate(land_use.villages):
        for (row, col) in sorted(village):
            village_ids.append(village_id)
            rows.append(row)
            cols.append(col)
    return (np.asarray(village_ids, dtype=np.int64),
            np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64))


def _save_land_use(path: Path, land_use: LandUseMap) -> None:
    village_ids, village_rows, village_cols = _village_arrays(land_use)
    old_town = np.asarray(sorted(land_use.old_town), dtype=np.int64).reshape(-1, 2)
    np.savez_compressed(
        path,
        land_use=land_use.land_use,
        building_density=land_use.building_density,
        irregularity=land_use.irregularity,
        greenery=land_use.greenery,
        downtown_centers=np.asarray(land_use.downtown_centers, dtype=np.int64),
        village_ids=village_ids,
        village_rows=village_rows,
        village_cols=village_cols,
        village_kinds=np.asarray(land_use.village_kinds, dtype=np.int64),
        old_town=old_town,
    )


def _load_land_use(path: Path) -> LandUseMap:
    archive = np.load(path)
    villages: List[Set[Tuple[int, int]]] = []
    kinds = archive["village_kinds"].tolist()
    for village_id in range(len(kinds)):
        members = archive["village_ids"] == village_id
        cells = set(zip(archive["village_rows"][members].tolist(),
                        archive["village_cols"][members].tolist()))
        villages.append(cells)
    old_town = {tuple(cell) for cell in archive["old_town"].tolist()}
    centers = [tuple(center) for center in archive["downtown_centers"].tolist()]
    return LandUseMap(
        land_use=archive["land_use"],
        building_density=archive["building_density"],
        irregularity=archive["irregularity"],
        greenery=archive["greenery"],
        villages=villages,
        downtown_centers=centers,
        village_kinds=kinds,
        old_town=old_town,
    )


def _save_pois(path: Path, pois: List[Poi]) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x", "y", "category", "poi_type", "region_index"])
        for poi in pois:
            writer.writerow([f"{poi.x:.3f}", f"{poi.y:.3f}", poi.category,
                             poi.poi_type, poi.region_index])


def _load_pois(path: Path) -> List[Poi]:
    pois: List[Poi] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            pois.append(Poi(x=float(row["x"]), y=float(row["y"]),
                            category=row["category"], poi_type=row["poi_type"],
                            region_index=int(row["region_index"])))
    return pois


def _save_roads(path: Path, roads: RoadNetwork) -> None:
    nodes = sorted(roads.graph.nodes)
    node_attrs = np.array([[node,
                            roads.graph.nodes[node]["x"],
                            roads.graph.nodes[node]["y"],
                            roads.graph.nodes[node]["region"]] for node in nodes],
                          dtype=np.float64) if nodes else np.zeros((0, 4))
    edges = np.array([[u, v, data.get("length", 0.0)]
                      for u, v, data in roads.graph.edges(data=True)],
                     dtype=np.float64) if roads.graph.number_of_edges() else np.zeros((0, 3))
    np.savez_compressed(path, nodes=node_attrs, edges=edges)


def _load_roads(path: Path) -> RoadNetwork:
    archive = np.load(path)
    graph = nx.Graph()
    for node_id, x, y, region in archive["nodes"]:
        graph.add_node(int(node_id), x=float(x), y=float(y), region=int(region))
    for u, v, length in archive["edges"]:
        graph.add_edge(int(u), int(v), length=float(length))
    intersections_by_region: Dict[int, List[int]] = {}
    for node, data in graph.nodes(data=True):
        intersections_by_region.setdefault(data["region"], []).append(node)
    return RoadNetwork(graph=graph, intersections_by_region=intersections_by_region)


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def save_city_dir(city: SyntheticCity, directory: PathLike) -> Path:
    """Write ``city`` to ``directory`` (created if missing); returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / "config.json", "w") as handle:
        json.dump(config_to_dict(city.config), handle, indent=2)
    _save_land_use(directory / "land_use.npz", city.land_use)
    _save_pois(directory / "pois.csv", city.pois)
    _save_roads(directory / "roads.npz", city.roads)
    np.savez_compressed(directory / "imagery.npz",
                        latent=city.imagery.latent, features=city.imagery.features)
    np.savez_compressed(directory / "labels.npz",
                        ground_truth=city.labels.ground_truth,
                        labeled_mask=city.labels.labeled_mask,
                        labels=city.labels.labels)
    return directory


def load_city_dir(directory: PathLike) -> SyntheticCity:
    """Load a city previously written by :func:`save_city_dir`."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"city directory {directory} does not exist")
    with open(directory / "config.json") as handle:
        config = config_from_dict(json.load(handle))
    imagery_archive = np.load(directory / "imagery.npz")
    labels_archive = np.load(directory / "labels.npz")
    return SyntheticCity(
        config=config,
        land_use=_load_land_use(directory / "land_use.npz"),
        pois=_load_pois(directory / "pois.csv"),
        roads=_load_roads(directory / "roads.npz"),
        imagery=ImageFeatureBank(latent=imagery_archive["latent"],
                                 features=imagery_archive["features"]),
        labels=LabelSet(ground_truth=labels_archive["ground_truth"],
                        labeled_mask=labels_archive["labeled_mask"],
                        labels=labels_archive["labels"]),
    )
