"""Dataset persistence, export and registry utilities.

The paper's pipeline starts from multi-source urban data files (POI dumps,
imagery tiles, road network shapefiles, label lists).  This subpackage gives
the reproduction the same "data lives on disk" workflow:

* :mod:`repro.data.city_io` — save / load a complete synthetic city
  (config, land use, POIs, roads, imagery, labels) to a directory;
* :mod:`repro.data.graph_io` — save / load a built
  :class:`~repro.urg.graph.UrbanRegionGraph` as a single ``.npz`` archive;
* :mod:`repro.data.export` — export regions, POIs and predictions to
  GeoJSON / CSV for inspection in external GIS or spreadsheet tools;
* :mod:`repro.data.registry` — a small on-disk dataset registry that
  materialises city presets once and reuses them across runs.
"""

from .city_io import load_city_dir, save_city_dir
from .export import (export_pois_csv, export_predictions_csv, regions_to_geojson,
                     save_geojson)
from .graph_io import (graph_from_bytes, graph_to_bytes, load_graph_npz,
                       save_graph_npz)
from .registry import DatasetRegistry, tree_size_bytes

__all__ = [
    "save_city_dir",
    "load_city_dir",
    "save_graph_npz",
    "load_graph_npz",
    "graph_to_bytes",
    "graph_from_bytes",
    "tree_size_bytes",
    "regions_to_geojson",
    "save_geojson",
    "export_pois_csv",
    "export_predictions_csv",
    "DatasetRegistry",
]
