"""On-disk dataset registry for city presets.

The registry materialises synthetic cities and their URGs under a root
directory so repeated runs (CLI invocations, benchmark sessions, notebooks)
do not regenerate them.  Entries are keyed by preset name and seed; the
stored city config is compared on load so a stale entry generated with
different parameters is rebuilt instead of silently reused.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..synth import generate_city, get_preset
from ..synth.city import SyntheticCity
from ..urg import UrgBuildConfig, build_urg
from ..urg.graph import UrbanRegionGraph
from .city_io import config_to_dict, load_city_dir, save_city_dir
from .graph_io import load_graph_npz, save_graph_npz

PathLike = Union[str, Path]


def tree_size_bytes(path: PathLike) -> int:
    """Total size of every regular file under ``path`` (0 if missing).

    Shared by the dataset registry and the model registry
    (:mod:`repro.serve.registry`) for their on-disk footprint reports.
    """
    root = Path(path)
    if not root.exists():
        return 0
    if root.is_file():
        return int(root.stat().st_size)
    return int(sum(p.stat().st_size for p in root.rglob("*") if p.is_file()))


class DatasetRegistry:
    """Materialise and cache city presets under a root directory."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def entry_dir(self, name: str, seed: Optional[int] = None) -> Path:
        suffix = f"-seed{seed}" if seed is not None else ""
        return self.root / f"{name.lower()}{suffix}"

    def city_dir(self, name: str, seed: Optional[int] = None) -> Path:
        return self.entry_dir(name, seed) / "city"

    def graph_path(self, name: str, seed: Optional[int] = None) -> Path:
        return self.entry_dir(name, seed) / "graph.npz"

    # ------------------------------------------------------------------
    # cities
    # ------------------------------------------------------------------
    def materialize_city(self, name: str, seed: Optional[int] = None,
                         force: bool = False) -> SyntheticCity:
        """Generate (or reload) the city for preset ``name``.

        ``force=True`` regenerates even if a compatible entry exists.
        """
        config = get_preset(name)
        if seed is not None:
            config = replace(config, seed=seed)
        directory = self.city_dir(name, seed)
        if not force and directory.is_dir():
            city = load_city_dir(directory)
            if config_to_dict(city.config) == config_to_dict(config):
                return city
        city = generate_city(config)
        save_city_dir(city, directory)
        return city

    # ------------------------------------------------------------------
    # graphs
    # ------------------------------------------------------------------
    def materialize_graph(self, name: str, seed: Optional[int] = None,
                          build_config: Optional[UrgBuildConfig] = None,
                          force: bool = False) -> UrbanRegionGraph:
        """Build (or reload) the URG of preset ``name``.

        The cached archive is reused only when no custom ``build_config`` is
        requested; custom builds are always constructed fresh because the
        archive does not record the build switches.
        """
        path = self.graph_path(name, seed)
        if build_config is None and not force and path.exists():
            return load_graph_npz(path)
        city = self.materialize_city(name, seed, force=False)
        graph = build_urg(city, build_config)
        if build_config is None:
            save_graph_npz(graph, path)
        return graph

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def entries(self) -> List[Dict[str, object]]:
        """List materialised entries with their on-disk footprint."""
        found = []
        for entry in sorted(self.root.iterdir()):
            if not entry.is_dir():
                continue
            size = tree_size_bytes(entry)
            found.append({
                "name": entry.name,
                "has_city": (entry / "city").is_dir(),
                "has_graph": (entry / "graph.npz").exists(),
                "size_bytes": int(size),
            })
        return found

    def describe(self) -> str:
        """Human-readable summary of the registry contents."""
        entries = self.entries()
        if not entries:
            return f"registry at {self.root}: empty"
        lines = [f"registry at {self.root}:"]
        for entry in entries:
            lines.append(
                "  %-20s city=%-5s graph=%-5s %.1f MB"
                % (entry["name"], entry["has_city"], entry["has_graph"],
                   entry["size_bytes"] / 1e6))
        return "\n".join(lines)

    def save_manifest(self) -> Path:
        """Write a JSON manifest of the registry contents."""
        path = self.root / "manifest.json"
        with open(path, "w") as handle:
            json.dump(self.entries(), handle, indent=2)
        return path
