"""Semi-lazy learning baseline.

The paper's related work discusses semi-lazy learning ([17]-[19]): instead of
one global model, build a small model per query instance from its nearest
labelled neighbours at prediction time.  The paper argues the approach does
not scale to deep models; this baseline implements the classic (shallow)
version so the comparison can be reproduced:

* the labelled training regions are indexed in standardised feature space;
* for every query region the ``k`` nearest labelled regions are retrieved;
* the prediction is a distance-weighted vote over their labels (a local
  kernel estimator — the simplest per-instance model).

Because all work happens at query time, training is almost free and
inference is comparatively slow, which is exactly the trade-off the paper
attributes to semi-lazy methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from ..base import DetectorBase, validate_train_indices
from ..urg.graph import UrbanRegionGraph


@dataclass
class SemiLazyConfig:
    """Hyper-parameters of the semi-lazy baseline."""

    #: number of labelled neighbours retrieved per query region
    k_neighbors: int = 15
    #: kernel bandwidth multiplier (relative to the mean neighbour distance)
    bandwidth_scale: float = 1.0
    #: optional PCA-style truncation of the feature space (0 keeps all)
    max_features: int = 0

    def __post_init__(self) -> None:
        if self.k_neighbors < 1:
            raise ValueError("k_neighbors must be positive")
        if self.bandwidth_scale <= 0:
            raise ValueError("bandwidth_scale must be positive")


class SemiLazyDetector(DetectorBase):
    """Per-instance distance-weighted vote over the nearest labelled regions."""

    name = "SemiLazy"

    def __init__(self, config: Optional[SemiLazyConfig] = None) -> None:
        self.config = config or SemiLazyConfig()
        self._tree: Optional[cKDTree] = None
        self._train_labels: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._fitted = False

    def _prepare_features(self, graph: UrbanRegionGraph) -> np.ndarray:
        features = graph.features()
        if self.config.max_features and features.shape[1] > self.config.max_features:
            features = features[:, :self.config.max_features]
        return features

    def fit(self, graph: UrbanRegionGraph, train_indices: np.ndarray,
            verbose: bool = False) -> "SemiLazyDetector":
        train_indices = validate_train_indices(graph, train_indices)
        features = self._prepare_features(graph)
        train_features = features[train_indices]
        self._mean = train_features.mean(axis=0, keepdims=True)
        self._std = train_features.std(axis=0, keepdims=True) + 1e-8
        normalized = (train_features - self._mean) / self._std
        self._tree = cKDTree(normalized)
        self._train_labels = graph.labels[train_indices].astype(np.float64)
        self._mark_fitted()
        return self

    def predict_proba(self, graph: UrbanRegionGraph) -> np.ndarray:
        self.check_fitted()
        features = (self._prepare_features(graph) - self._mean) / self._std
        k = min(self.config.k_neighbors, self._train_labels.size)
        distances, neighbors = self._tree.query(features, k=k)
        distances = np.atleast_2d(distances)
        neighbors = np.atleast_2d(neighbors)
        # Gaussian kernel weights with a per-query adaptive bandwidth.
        bandwidth = self.config.bandwidth_scale * np.maximum(
            distances.mean(axis=1, keepdims=True), 1e-8)
        weights = np.exp(-(distances / bandwidth) ** 2)
        weights /= weights.sum(axis=1, keepdims=True)
        return (weights * self._train_labels[neighbors]).sum(axis=1)

    def num_parameters(self) -> int:
        # Lazy learners store the training set instead of parameters.
        return 0 if self._train_labels is None else int(self._train_labels.size)
