"""``repro.baselines`` — every comparison method of Table II and beyond.

MLP, GCN, GAT, MMRE, UVLens, MUVFCN and ImGAGN (the paper's Table II
comparators), plus the classic index-based detector and the semi-lazy
learner discussed qualitatively in the related-work section.  All implement
the common :class:`repro.base.DetectorBase` interface and are instantiable
by name through :func:`make_detector`.
"""

from .base import BaselineTrainingConfig, GraphModuleDetector
from .gat import GATDetector
from .gcn import GCNDetector
from .gnn_layers import GATLayer, GCNLayer
from .imgagn import ImGAGNConfig, ImGAGNDetector
from .index_based import IndexBasedDetector, hand_crafted_indices
from .mlp import MLPDetector
from .mmre import MMREConfig, MMREDetector
from .muvfcn import MUVFCNDetector
from .registry import EXTRA_METHODS, TABLE2_METHODS, available_methods, make_detector
from .semilazy import SemiLazyConfig, SemiLazyDetector
from .uvlens import UVLensDetector, histogram_equalize

__all__ = [
    "BaselineTrainingConfig",
    "GraphModuleDetector",
    "GCNLayer",
    "GATLayer",
    "MLPDetector",
    "GCNDetector",
    "GATDetector",
    "MMREDetector",
    "MMREConfig",
    "UVLensDetector",
    "histogram_equalize",
    "MUVFCNDetector",
    "ImGAGNDetector",
    "ImGAGNConfig",
    "IndexBasedDetector",
    "hand_crafted_indices",
    "SemiLazyDetector",
    "SemiLazyConfig",
    "TABLE2_METHODS",
    "EXTRA_METHODS",
    "make_detector",
    "available_methods",
]
