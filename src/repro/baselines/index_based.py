"""Index-based classic machine-learning baseline.

The earliest urban-village detectors ([2], [3] in the paper) compute a small
set of hand-crafted indices per region from high-resolution imagery (mean
spectral values, texture/morphological indices such as MBI) and feed them to
a classic classifier.  This baseline reproduces that recipe on the simulated
data:

* image indices — summary statistics of the region's simulated VGG feature
  vector (mean, standard deviation, quartiles, energy), standing in for the
  spectral / morphological indices computed from raw pixels;
* POI indices — the aggregate POI statistics already contained in the URG
  features (total count, facility index, mean radius bucket);
* classifier — an L2-regularised logistic regression trained with Adam.

It deliberately ignores both the graph structure and the raw feature vectors,
which is what makes it the weakest (but fastest) reference point.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..nn.module import Module
from ..nn.tensor import Tensor
from ..urg.graph import UrbanRegionGraph
from .base import BaselineTrainingConfig, GraphModuleDetector


def hand_crafted_indices(graph: UrbanRegionGraph) -> np.ndarray:
    """Compute the per-region hand-crafted index matrix.

    Returns an ``(N, d)`` matrix of summary indices; ``d`` depends on which
    modalities the graph carries but is always small (< 20).
    """
    blocks: List[np.ndarray] = []
    if graph.image_dim > 0:
        image = graph.x_img
        blocks.append(np.stack([
            image.mean(axis=1),
            image.std(axis=1),
            np.percentile(image, 25, axis=1),
            np.percentile(image, 50, axis=1),
            np.percentile(image, 75, axis=1),
            np.abs(image).max(axis=1),
            (image ** 2).mean(axis=1),
        ], axis=1))
    if graph.poi_dim > 0:
        poi = graph.x_poi
        blocks.append(np.stack([
            poi.mean(axis=1),
            poi.std(axis=1),
            poi.max(axis=1),
            poi.min(axis=1),
        ], axis=1))
    if not blocks:
        raise ValueError("the graph carries no features to build indices from")
    indices = np.concatenate(blocks, axis=1)
    mean = indices.mean(axis=0, keepdims=True)
    std = indices.std(axis=0, keepdims=True) + 1e-8
    return (indices - mean) / std


class _IndexModule(Module):
    """Logistic regression over the hand-crafted indices."""

    def __init__(self, num_indices: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.classifier = nn.LogisticRegression(num_indices, rng)

    def forward(self, graph: UrbanRegionGraph) -> Tensor:
        return self.classifier(Tensor(hand_crafted_indices(graph)))


class IndexBasedDetector(GraphModuleDetector):
    """Hand-crafted-index + logistic-regression baseline."""

    name = "IndexML"

    def __init__(self, training: Optional[BaselineTrainingConfig] = None) -> None:
        super().__init__(training)

    def build_module(self, graph: UrbanRegionGraph, rng: np.random.Generator) -> Module:
        num_indices = hand_crafted_indices(graph).shape[1]
        return _IndexModule(num_indices, rng)
