"""MUVFCN baseline — "Mapping urban villages using fully convolutional
neural networks" [8] (paper Appendix I-A).

The original method trains an FCN-8s with a VGG19 backbone over raw satellite
tiles and average-pools the output maps to a 32-dimensional vector for the
final prediction.  Raw pixels are unavailable in this reproduction (the
simulator outputs frozen VGG-style feature vectors directly), so the
substitute keeps the two properties that drive its behaviour in the paper's
comparison:

* it is **image-only** — POI features and the URG structure are ignored;
* it has a **deep, high-capacity head** over the image representation, with
  an average-pooling-style bottleneck down to 32 dimensions before the
  classifier.

Like the original, it neither models region correlations nor addresses label
scarcity, which is what CMSF improves on.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.module import Module
from ..nn.tensor import Tensor
from ..urg.graph import UrbanRegionGraph
from .base import BaselineTrainingConfig, GraphModuleDetector


class _MUVFCNModule(Module):
    """Deep image-only head with a 32-d pooled bottleneck."""

    def __init__(self, img_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        if img_dim <= 0:
            raise ValueError("MUVFCN requires image features")
        self.backbone = nn.MLP(img_dim, [256, 128], 32, rng, activation="relu",
                               out_activation="relu", dropout=0.1)
        self.classifier = nn.LogisticRegression(32, rng)

    def forward(self, graph: UrbanRegionGraph) -> Tensor:
        pooled = self.backbone(Tensor(graph.x_img))
        return self.classifier(pooled)


class MUVFCNDetector(GraphModuleDetector):
    """Fully-convolutional-network surrogate for urban village mapping."""

    name = "MUVFCN"

    def __init__(self, training: BaselineTrainingConfig = None) -> None:
        super().__init__(training)

    def build_module(self, graph: UrbanRegionGraph, rng: np.random.Generator) -> Module:
        if graph.image_dim == 0:
            raise ValueError("MUVFCN cannot run on a graph without image features "
                             "(the noImage ablation only applies to CMSF)")
        return _MUVFCNModule(graph.image_dim, rng)
