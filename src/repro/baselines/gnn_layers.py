"""Graph neural network layers shared by the baselines.

* :class:`GCNLayer` — the graph convolution of Kipf & Welling [21] with
  symmetric degree normalisation and self-loops, computed over the edge list.
* :class:`GATLayer` — a single-modality graph attention layer [22], thin
  wrapper around the edge attention used inside MAGA.

Both layers accept an optional precomputed
:class:`~repro.nn.graphops.EdgePlan` (self-loop augmented).  The plan hoists
the per-call self-loop augmentation, degree counting and scatter-operator
construction out of the forward pass; results are bit-identical to the
legacy per-call path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.graphops import EdgePlan
from ..nn.module import Module
from ..nn.sparse import gather_rows, segment_sum
from ..nn.tensor import Tensor, get_default_dtype
from ..core.maga import EdgeAttention
from ..urg.relations import add_self_loops


class GCNLayer(Module):
    """Graph convolution ``H' = sigma(D^-1/2 (A + I) D^-1/2 H W)``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 activation: str = "relu") -> None:
        super().__init__()
        self.linear = nn.Linear(in_dim, out_dim, rng)
        self.activation = F.get_activation(activation)

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int,
                plan: Optional[EdgePlan] = None) -> Tensor:
        if plan is not None:
            src, dst = plan.src_plan, plan.dst_plan
            norm = plan.gcn_norm(get_default_dtype())
        else:
            edges = add_self_loops(edge_index, num_nodes)
            src, dst = edges[0], edges[1]
            degree = np.bincount(dst, minlength=num_nodes).astype(np.float64)
            degree = np.maximum(degree, 1.0)
            norm = 1.0 / np.sqrt(degree[src] * degree[dst])
        transformed = self.linear(x)
        messages = gather_rows(transformed, src) * Tensor(norm.reshape(-1, 1))
        aggregated = segment_sum(messages, dst, num_nodes)
        return self.activation(aggregated)


class GATLayer(Module):
    """Single-modality graph attention layer (multi-head, ELU activation)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 heads: int = 1, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.attention = EdgeAttention(in_dim, in_dim, out_dim, heads, rng,
                                       negative_slope, share_transform=True)

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int,
                plan: Optional[EdgePlan] = None) -> Tensor:
        if plan is not None:
            return self.attention(x, x, plan, num_nodes)
        edges = add_self_loops(edge_index, num_nodes)
        return self.attention(x, x, edges, num_nodes)
