"""ImGAGN baseline — Imbalanced Network Embedding via Generative Adversarial
Graph Networks [42] (paper Appendix I-A).

ImGAGN tackles class imbalance by generating synthetic minority (UV) nodes
and links and training a GCN discriminator on the augmented graph with an
adversarial objective.  Following the paper's implementation notes, the
generator is a 3-layer MLP; the predefined parameters are the minority-node
ratio ``lambda_1 = 1.0`` (one synthetic node per real labelled UV) and the
number of discriminator steps per generator step ``lambda_2``.

Reproduction notes
------------------
* The generator maps a noise vector to (a) a feature vector for each
  synthetic UV node and (b) a soft edge distribution over the real labelled
  UV nodes; synthetic nodes are attached to their top-k most likely real UV
  neighbours, mirroring the "numerous links between the synthetic and
  minority nodes" the paper blames for ImGAGN's large model size.
* The discriminator is a 2-layer GCN over the augmented graph with two
  outputs per node: the UV probability and a real-vs-fake probability.
* As observed in the paper, the augmentation perturbs the original region
  structure, which is why ImGAGN's AUC can be decent while its top-p%
  precision/recall stays low.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.losses import binary_cross_entropy, class_balanced_weights
from ..nn.module import Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor, concatenate, no_grad
from ..base import DetectorBase, validate_train_indices
from ..urg.graph import UrbanRegionGraph
from .gnn_layers import GCNLayer


@dataclass
class ImGAGNConfig:
    """Hyper-parameters of the ImGAGN baseline."""

    hidden_dim: int = 64
    noise_dim: int = 32
    #: ratio of synthetic minority nodes to real labelled UV nodes (lambda_1)
    minority_ratio: float = 1.0
    #: discriminator updates per generator update (lambda_2, scaled down from
    #: the original 100 to keep full-batch numpy training tractable)
    discriminator_steps: int = 5
    #: number of real UV nodes each synthetic node connects to
    links_per_fake: int = 3
    generator_epochs: int = 20
    learning_rate: float = 1e-3
    class_balance: bool = True
    seed: int = 0


class _Generator(Module):
    """3-layer MLP generating synthetic minority node features and links."""

    def __init__(self, noise_dim: int, feature_dim: int, num_real_uv: int,
                 hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.feature_head = nn.MLP(noise_dim, [hidden_dim, hidden_dim], feature_dim, rng,
                                   activation="relu")
        self.link_head = nn.MLP(noise_dim, [hidden_dim, hidden_dim], num_real_uv, rng,
                                activation="relu")

    def forward(self, noise: Tensor):
        features = self.feature_head(noise)
        link_logits = self.link_head(noise)
        link_weights = F.softmax(link_logits, axis=-1)
        return features, link_weights


class _Discriminator(Module):
    """2-layer GCN with a UV head and a real-vs-fake head."""

    def __init__(self, feature_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.gcn1 = GCNLayer(feature_dim, hidden_dim, rng)
        self.gcn2 = GCNLayer(hidden_dim, hidden_dim, rng)
        self.uv_head = nn.LogisticRegression(hidden_dim, rng)
        self.fake_head = nn.LogisticRegression(hidden_dim, rng)

    def forward(self, features: Tensor, edge_index: np.ndarray, num_nodes: int):
        hidden = self.gcn1(features, edge_index, num_nodes)
        hidden = self.gcn2(hidden, edge_index, num_nodes)
        return self.uv_head(hidden), self.fake_head(hidden)


class ImGAGNDetector(DetectorBase):
    """Imbalanced network embedding baseline with adversarial augmentation."""

    name = "ImGAGN"

    def __init__(self, config: Optional[ImGAGNConfig] = None) -> None:
        self.config = config or ImGAGNConfig()
        self.generator: Optional[_Generator] = None
        self.discriminator: Optional[_Discriminator] = None
        self.history: List[float] = []
        self._fitted = False

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _augmented_graph(self, graph: UrbanRegionGraph, fake_features: np.ndarray,
                         link_weights: np.ndarray, real_uv: np.ndarray):
        """Append synthetic nodes/edges to the feature matrix and edge index."""
        num_fake = fake_features.shape[0]
        features = np.concatenate([graph.features(), fake_features], axis=0)
        fake_ids = graph.num_nodes + np.arange(num_fake)
        k = min(self.config.links_per_fake, real_uv.size)
        top_neighbours = np.argsort(-link_weights, axis=1)[:, :k]
        src, dst = [], []
        for fake_local, fake_id in enumerate(fake_ids):
            for neighbour_rank in range(k):
                real_node = real_uv[top_neighbours[fake_local, neighbour_rank]]
                src.extend([fake_id, real_node])
                dst.extend([real_node, fake_id])
        extra = np.array([src, dst], dtype=np.int64) if src else np.zeros((2, 0), dtype=np.int64)
        edge_index = np.concatenate([graph.edge_index, extra], axis=1)
        return features, edge_index, fake_ids

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, graph: UrbanRegionGraph, train_indices: np.ndarray,
            verbose: bool = False) -> "ImGAGNDetector":
        cfg = self.config
        train_indices = validate_train_indices(graph, train_indices)
        rng = np.random.default_rng(cfg.seed)

        labels = graph.labels
        real_uv = train_indices[labels[train_indices] == 1]
        if real_uv.size == 0:
            # No minority nodes to mimic: fall back to a plain discriminator.
            real_uv = train_indices[:1]
        num_fake = max(int(round(cfg.minority_ratio * real_uv.size)), 1)
        feature_dim = graph.feature_dim

        self.generator = _Generator(cfg.noise_dim, feature_dim, real_uv.size,
                                    cfg.hidden_dim, rng)
        self.discriminator = _Discriminator(feature_dim, cfg.hidden_dim, rng)
        gen_optimizer = Adam(self.generator.parameters(), lr=cfg.learning_rate)
        disc_optimizer = Adam(self.discriminator.parameters(), lr=cfg.learning_rate)

        targets = labels[train_indices].astype(np.float64)
        weights = class_balanced_weights(targets) if cfg.class_balance else None
        self.history = []

        for epoch in range(cfg.generator_epochs):
            # -------------------- generator step --------------------------
            noise = Tensor(rng.normal(size=(num_fake, cfg.noise_dim)))
            fake_features_t, link_weights_t = self.generator(noise)
            features_np, edge_index, fake_ids = self._augmented_graph(
                graph, fake_features_t.data, link_weights_t.data, real_uv)

            # Generator wants fakes classified as real UV regions.
            gen_optimizer.zero_grad()
            real_part = Tensor(graph.features())
            all_features = concatenate([real_part, fake_features_t], axis=0)
            uv_probs, fake_probs = self.discriminator(all_features, edge_index,
                                                      features_np.shape[0])
            gen_loss = binary_cross_entropy(fake_probs[fake_ids],
                                            np.zeros(num_fake)) \
                + binary_cross_entropy(uv_probs[fake_ids], np.ones(num_fake))
            gen_loss.backward()
            gen_optimizer.step()

            # ------------------- discriminator steps ----------------------
            disc_loss_value = 0.0
            for _ in range(cfg.discriminator_steps):
                disc_optimizer.zero_grad()
                uv_probs, fake_probs = self.discriminator(
                    Tensor(features_np), edge_index, features_np.shape[0])
                detection_loss = binary_cross_entropy(uv_probs[train_indices],
                                                      targets, weights)
                real_fake_targets = np.concatenate([
                    np.zeros(train_indices.size), np.ones(num_fake)])
                real_fake_nodes = np.concatenate([train_indices, fake_ids])
                adversarial_loss = binary_cross_entropy(fake_probs[real_fake_nodes],
                                                        real_fake_targets)
                disc_loss = detection_loss + adversarial_loss
                disc_loss.backward()
                disc_optimizer.step()
                disc_loss_value = float(disc_loss.item())
            self.history.append(disc_loss_value)
            if verbose and epoch % 5 == 0:
                print(f"[ImGAGN] epoch {epoch:3d} discriminator loss {disc_loss_value:.4f}")

        self._mark_fitted()
        return self

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict_proba(self, graph: UrbanRegionGraph) -> np.ndarray:
        self.check_fitted()
        self.discriminator.eval()
        with no_grad():
            uv_probs, _ = self.discriminator(Tensor(graph.features()),
                                             graph.edge_index, graph.num_nodes)
        self.discriminator.train()
        return uv_probs.data.copy()

    def num_parameters(self) -> int:
        total = 0
        if self.generator is not None:
            total += self.generator.num_parameters()
        if self.discriminator is not None:
            total += self.discriminator.num_parameters()
        return total
