"""UVLens baseline — "Urban village boundary identification and population
estimation leveraging open government data" [10] (paper Appendix I-A).

The original UVLens segments the city-wide satellite image with taxi
trajectories, integrates bike-sharing drop-off data and detects urban
villages with a Mask-RCNN.  The paper itself already simplifies it (no
bike-sharing data, fixed-size grid cells as positive candidate boxes, no RPN
or ROIPooling) down to: histogram equalisation of the imagery, a CNN
backbone, then stacked fully connected layers of 4096-4096-128-64 hidden
units for the final prediction.

This reproduction follows the paper's own simplification with the simulated
VGG features standing in for the CNN backbone's output:

* a per-region contrast normalisation plays the role of histogram
  equalisation;
* a wide stacked fully connected head produces the prediction.  The paper
  uses 4096-4096-128-64 on 4096-d VGG features; because the simulated
  feature banks are narrower (1024-d in the city presets), the default head
  widths are scaled proportionally to 1024-1024-128-64.  Passing
  ``head_widths=(4096, 4096, 128, 64)`` restores the original widths.

The wide head is what makes UVLens by far the largest model in Table III;
keeping the proportional widths preserves the efficiency comparison's shape.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.module import Module
from ..nn.tensor import Tensor
from ..urg.graph import UrbanRegionGraph
from .base import BaselineTrainingConfig, GraphModuleDetector


def histogram_equalize(features: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Per-region contrast normalisation standing in for histogram equalisation.

    Each region's feature vector is rescaled to zero mean / unit variance so
    that global brightness differences between tiles do not dominate, which is
    the effect histogram equalisation has on raw imagery.
    """
    mean = features.mean(axis=1, keepdims=True)
    std = features.std(axis=1, keepdims=True)
    return (features - mean) / (std + eps)


class _UVLensModule(Module):
    """Wide stacked-FC head over the image features.

    ``equalize`` applies the per-region contrast normalisation; it should be
    enabled when the module receives raw (un-standardised) imagery features
    and disabled when the URG builder has already standardised them — the
    benchmark graphs fall in the second case, where re-normalising each PCA
    row would only destroy information.
    """

    def __init__(self, img_dim: int, rng: np.random.Generator,
                 head_widths=(1024, 1024, 128, 64), equalize: bool = False) -> None:
        super().__init__()
        if img_dim <= 0:
            raise ValueError("UVLens requires image features")
        widths = list(head_widths)
        self.equalize = equalize
        self.head = nn.MLP(img_dim, widths[:-1], widths[-1], rng,
                           activation="relu", out_activation="relu")
        self.classifier = nn.LogisticRegression(widths[-1], rng)

    def forward(self, graph: UrbanRegionGraph) -> Tensor:
        image = histogram_equalize(graph.x_img) if self.equalize else graph.x_img
        hidden = self.head(Tensor(image))
        return self.classifier(hidden)


class UVLensDetector(GraphModuleDetector):
    """UVLens surrogate (image branch with the paper's stacked-FC head)."""

    name = "UVLens"

    def __init__(self, training: BaselineTrainingConfig = None,
                 head_widths=(1024, 1024, 128, 64), equalize: bool = False) -> None:
        super().__init__(training)
        self.head_widths = tuple(head_widths)
        self.equalize = equalize

    def build_module(self, graph: UrbanRegionGraph, rng: np.random.Generator) -> Module:
        if graph.image_dim == 0:
            raise ValueError("UVLens cannot run on a graph without image features")
        return _UVLensModule(graph.image_dim, rng, self.head_widths, self.equalize)
