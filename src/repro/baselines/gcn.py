"""GCN baseline (paper Appendix I-A).

Following the paper's implementation notes: the image features are first
linearly reduced, then two independent 2-layer graph convolution stacks learn
modality-wise representations over the URG; a linear fusion layer combines
them before the final predictor.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.graphops import EdgePlan
from ..nn.module import Module
from ..nn.tensor import Tensor, concatenate
from ..urg.graph import UrbanRegionGraph
from .base import BaselineTrainingConfig, GraphModuleDetector
from .gnn_layers import GCNLayer


class _GCNModule(Module):
    """Two-branch 2-layer GCN with linear multi-modal fusion."""

    def __init__(self, poi_dim: int, img_dim: int, hidden_dim: int,
                 image_reduce_dim: int, rng: np.random.Generator,
                 dropout: float = 0.3) -> None:
        super().__init__()
        self.has_poi = poi_dim > 0
        self.has_img = img_dim > 0
        self.dropout = nn.Dropout(dropout, rng)
        fused_dim = 0
        if self.has_poi:
            self.poi_gcn1 = GCNLayer(poi_dim, hidden_dim, rng)
            self.poi_gcn2 = GCNLayer(hidden_dim, hidden_dim, rng)
            fused_dim += hidden_dim
        if self.has_img:
            reduce_dim = min(image_reduce_dim, img_dim)
            self.image_reduce = nn.Linear(img_dim, reduce_dim, rng)
            self.img_gcn1 = GCNLayer(reduce_dim, hidden_dim, rng)
            self.img_gcn2 = GCNLayer(hidden_dim, hidden_dim, rng)
            fused_dim += hidden_dim
        self.fuse = nn.Linear(fused_dim, hidden_dim, rng)
        self.classifier = nn.LogisticRegression(hidden_dim, rng)

    def forward(self, graph: UrbanRegionGraph) -> Tensor:
        num_nodes = graph.num_nodes
        # One self-loop-augmented plan shared by every layer and (via the
        # content-keyed cache) every epoch of the training loop.
        plan = EdgePlan.for_graph(graph)
        parts = []
        if self.has_poi:
            h = self.poi_gcn1(Tensor(graph.x_poi), graph.edge_index, num_nodes,
                              plan=plan)
            h = self.poi_gcn2(self.dropout(h), graph.edge_index, num_nodes,
                              plan=plan)
            parts.append(h)
        if self.has_img:
            reduced = self.image_reduce(Tensor(graph.x_img))
            h = self.img_gcn1(reduced, graph.edge_index, num_nodes, plan=plan)
            h = self.img_gcn2(self.dropout(h), graph.edge_index, num_nodes,
                              plan=plan)
            parts.append(h)
        fused = parts[0] if len(parts) == 1 else concatenate(parts, axis=-1)
        return self.classifier(F.relu(self.fuse(self.dropout(fused))))


class GCNDetector(GraphModuleDetector):
    """Graph convolutional network baseline."""

    name = "GCN"

    def __init__(self, hidden_dim: int = 64, image_reduce_dim: int = 128,
                 training: BaselineTrainingConfig = None) -> None:
        super().__init__(training)
        self.hidden_dim = hidden_dim
        self.image_reduce_dim = image_reduce_dim

    def build_module(self, graph: UrbanRegionGraph, rng: np.random.Generator) -> Module:
        return _GCNModule(graph.poi_dim, graph.image_dim, self.hidden_dim,
                          self.image_reduce_dim, rng)
