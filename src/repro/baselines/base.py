"""Shared infrastructure for the baseline detectors.

Every baseline in Table II is a small neural model trained full-batch with
Adam on the binary cross entropy over the labelled training regions.
:class:`GraphModuleDetector` factors that training loop out so each baseline
only has to provide a :class:`repro.nn.Module` mapping an
:class:`~repro.urg.graph.UrbanRegionGraph` to per-node probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..base import DetectorBase, validate_train_indices
from ..nn.losses import binary_cross_entropy, class_balanced_weights
from ..nn.module import Module
from ..nn.optim import Adam, ExponentialDecay
from ..nn.tensor import no_grad
from ..nn.training import EarlyStopping, binary_auc, validation_split
from ..urg.graph import UrbanRegionGraph


@dataclass
class BaselineTrainingConfig:
    """Optimisation settings shared by the baseline detectors.

    The labelled sets of the synthetic cities are small (a few hundred
    regions), so the loop holds out a stratified validation subset of the
    training labels and early-stops on the validation loss, restoring the
    best snapshot — the standard recipe against full-batch memorisation.
    """

    epochs: int = 200
    learning_rate: float = 1e-3
    weight_decay: float = 5e-4
    lr_decay: float = 0.001
    class_balance: bool = True
    max_grad_norm: Optional[float] = 5.0
    patience: Optional[int] = 25
    #: fraction of the labelled training regions held out for validation-AUC
    #: model selection.  The labelled sets of the evaluation cities are small
    #: enough that sacrificing training labels usually costs more than the
    #: selection gains, so this is off by default and available as an option.
    validation_fraction: float = 0.0
    seed: int = 0


class GraphModuleDetector(DetectorBase):
    """A detector backed by a single :class:`Module` trained with BCE.

    Subclasses implement :meth:`build_module` returning a module whose
    ``forward(graph)`` yields a probability tensor of shape ``(num_nodes,)``.
    """

    def __init__(self, training: Optional[BaselineTrainingConfig] = None) -> None:
        self.training_config = training or BaselineTrainingConfig()
        self.module: Optional[Module] = None
        self.history: List[float] = []
        self.validation_history: List[float] = []
        self._fitted = False

    # ------------------------------------------------------------------
    # to be provided by subclasses
    # ------------------------------------------------------------------
    def build_module(self, graph: UrbanRegionGraph, rng: np.random.Generator) -> Module:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # generic training loop
    # ------------------------------------------------------------------
    def fit(self, graph: UrbanRegionGraph, train_indices: np.ndarray,
            verbose: bool = False) -> "GraphModuleDetector":
        cfg = self.training_config
        train_indices = validate_train_indices(graph, train_indices)
        rng = np.random.default_rng(cfg.seed)
        self.module = self.build_module(graph, rng)

        fit_indices, val_indices = validation_split(
            train_indices, graph.labels, cfg.validation_fraction, rng)
        fit_targets = graph.labels[fit_indices].astype(np.float64)
        fit_weights = class_balanced_weights(fit_targets) if cfg.class_balance else None
        val_targets = graph.labels[val_indices].astype(np.float64)

        optimizer = Adam(self.module.parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay, max_grad_norm=cfg.max_grad_norm)
        scheduler = ExponentialDecay(optimizer, decay_rate=cfg.lr_decay)
        # Model selection maximises the validation AUC (the reported metric);
        # when the labelled set is too small to spare a validation subset the
        # loop falls back to minimising the training loss.
        stopper = EarlyStopping(self.module, patience=cfg.patience,
                                mode="max" if val_indices.size else "min")

        self.history = []
        self.validation_history = []
        for epoch in range(cfg.epochs):
            optimizer.zero_grad()
            probs = self.module(graph)
            loss = binary_cross_entropy(probs[fit_indices], fit_targets, fit_weights)
            loss.backward()
            optimizer.step()
            scheduler.step()
            value = float(loss.item())
            self.history.append(value)

            if val_indices.size:
                self.module.eval()
                with no_grad():
                    val_probs = self.module(graph)
                self.module.train()
                monitored = binary_auc(val_targets, val_probs.data[val_indices])
            else:
                monitored = -value
            self.validation_history.append(monitored)
            if verbose and epoch % 20 == 0:
                print(f"[{self.name}] epoch {epoch:3d} loss {value:.4f} "
                      f"val {monitored:.4f}")
            if stopper.update(monitored if val_indices.size else value, epoch):
                break
        stopper.restore_best()
        self._mark_fitted()
        return self

    def predict_proba(self, graph: UrbanRegionGraph) -> np.ndarray:
        self.check_fitted()
        self.module.eval()
        with no_grad():
            probs = self.module(graph)
        self.module.train()
        return probs.data.copy()

    def num_parameters(self) -> int:
        return self.module.num_parameters() if self.module is not None else 0
