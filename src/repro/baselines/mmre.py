"""MMRE baseline — Multi-Modal Region Encoder [23] (paper Appendix I-A).

MMRE learns unsupervised multi-modal region embeddings and only then trains a
classifier on top.  Following the paper's implementation notes:

* a denoising autoencoder (encoder 120-84-64 with a symmetric decoder) learns
  the image representation through a reconstruction loss;
* a 2-layer GCN (128, 64 hidden units) learns the POI representation over the
  URG;
* a SkipGram-style objective with positive samples drawn from each region's
  graph context and negative samples drawn uniformly teaches the joint
  embedding to distinguish true contextual regions (4 positives and 10
  negatives per anchor);
* the taxi-transition reconstruction term of the original model is dropped,
  exactly as the paper does, because no mobility data is used.

After the unsupervised phase, a logistic-regression classifier is trained on
the frozen embeddings of the labelled regions.  The expensive per-node
negative sampling is what makes MMRE by far the slowest method to train in
Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.losses import binary_cross_entropy, class_balanced_weights, mse_loss
from ..nn.module import Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor, concatenate, no_grad
from ..base import DetectorBase, validate_train_indices
from ..urg.graph import UrbanRegionGraph
from .gnn_layers import GCNLayer


@dataclass
class MMREConfig:
    """Hyper-parameters of the MMRE baseline."""

    embedding_dim: int = 64
    autoencoder_hidden: tuple = (120, 84)
    gcn_hidden: int = 128
    noise_std: float = 0.1
    positive_samples: int = 4
    negative_samples: int = 10
    #: trade-off weights of the reconstruction / SkipGram losses
    lambda_image: float = 0.5
    lambda_skipgram: float = 0.1
    embedding_epochs: int = 60
    classifier_epochs: int = 150
    learning_rate: float = 1e-3
    class_balance: bool = True
    seed: int = 0


class _MMREEncoder(Module):
    """Denoising image autoencoder + POI GCN producing the joint embedding."""

    def __init__(self, poi_dim: int, img_dim: int, config: MMREConfig,
                 rng: np.random.Generator) -> None:
        super().__init__()
        hidden1, hidden2 = config.autoencoder_hidden
        self.has_img = img_dim > 0
        if self.has_img:
            self.image_encoder = nn.MLP(img_dim, [hidden1, hidden2],
                                        config.embedding_dim, rng, activation="relu")
            self.image_decoder = nn.MLP(config.embedding_dim, [hidden2, hidden1],
                                        img_dim, rng, activation="relu")
        self.poi_gcn1 = GCNLayer(poi_dim, config.gcn_hidden, rng)
        self.poi_gcn2 = GCNLayer(config.gcn_hidden, config.embedding_dim, rng)

    def encode(self, graph: UrbanRegionGraph, noisy_image: Optional[np.ndarray] = None):
        """Return ``(joint_embedding, image_reconstruction)``."""
        poi = self.poi_gcn1(Tensor(graph.x_poi), graph.edge_index, graph.num_nodes)
        poi = self.poi_gcn2(poi, graph.edge_index, graph.num_nodes)
        if not self.has_img:
            return poi, None
        image_input = Tensor(noisy_image if noisy_image is not None else graph.x_img)
        image_embedding = self.image_encoder(image_input)
        reconstruction = self.image_decoder(image_embedding)
        joint = concatenate([poi, image_embedding], axis=-1)
        return joint, reconstruction

    @property
    def embedding_dim(self) -> int:
        base = self.poi_gcn2.linear.out_features
        return base * 2 if self.has_img else base


def _sample_context_pairs(graph: UrbanRegionGraph, num_positive: int,
                          num_negative: int, rng: np.random.Generator):
    """Sample (anchor, positive) pairs from graph neighbourhoods and negatives."""
    src, dst = graph.edge_index[0], graph.edge_index[1]
    neighbours: List[List[int]] = [[] for _ in range(graph.num_nodes)]
    for s, d in zip(src, dst):
        neighbours[int(d)].append(int(s))
    anchors, positives = [], []
    for node in range(graph.num_nodes):
        if not neighbours[node]:
            continue
        chosen = rng.choice(neighbours[node],
                            size=min(num_positive, len(neighbours[node])),
                            replace=False)
        for context in np.atleast_1d(chosen):
            anchors.append(node)
            positives.append(int(context))
    anchors = np.asarray(anchors, dtype=np.int64)
    positives = np.asarray(positives, dtype=np.int64)
    negatives = rng.integers(0, graph.num_nodes,
                             size=anchors.size * num_negative // max(num_positive, 1))
    # Repeat anchors to pair with the negative samples.
    negative_anchors = rng.choice(anchors, size=negatives.size, replace=True) \
        if anchors.size else negatives
    return anchors, positives, negative_anchors, negatives


class MMREDetector(DetectorBase):
    """Multi-modal region embedding baseline."""

    name = "MMRE"

    def __init__(self, config: Optional[MMREConfig] = None) -> None:
        self.config = config or MMREConfig()
        self.encoder: Optional[_MMREEncoder] = None
        self.classifier: Optional[nn.LogisticRegression] = None
        self.embedding_history: List[float] = []
        self.classifier_history: List[float] = []
        self._fitted = False

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, graph: UrbanRegionGraph, train_indices: np.ndarray,
            verbose: bool = False) -> "MMREDetector":
        cfg = self.config
        train_indices = validate_train_indices(graph, train_indices)
        rng = np.random.default_rng(cfg.seed)
        self.encoder = _MMREEncoder(graph.poi_dim, graph.image_dim, cfg, rng)

        # ---------------- unsupervised embedding phase -------------------
        optimizer = Adam(self.encoder.parameters(), lr=cfg.learning_rate)
        self.embedding_history = []
        for epoch in range(cfg.embedding_epochs):
            optimizer.zero_grad()
            noisy = None
            if graph.image_dim > 0:
                noisy = graph.x_img + rng.normal(0.0, cfg.noise_std, size=graph.x_img.shape)
            embedding, reconstruction = self.encoder.encode(graph, noisy)
            anchors, positives, neg_anchors, negatives = _sample_context_pairs(
                graph, cfg.positive_samples, cfg.negative_samples, rng)
            loss = Tensor(0.0)
            if reconstruction is not None:
                loss = loss + Tensor(cfg.lambda_image) * mse_loss(reconstruction, graph.x_img)
            if anchors.size:
                anchor_pairs = np.concatenate([anchors, neg_anchors])
                context_pairs = np.concatenate([positives, negatives])
                signs = np.concatenate([np.ones(anchors.size), np.zeros(negatives.size)])
                skipgram = _pairwise_nce(embedding, anchor_pairs, context_pairs, signs)
                loss = loss + Tensor(cfg.lambda_skipgram) * skipgram
            loss.backward()
            optimizer.step()
            self.embedding_history.append(float(loss.item()))
            if verbose and epoch % 20 == 0:
                print(f"[MMRE] embedding epoch {epoch:3d} loss {self.embedding_history[-1]:.4f}")

        # ---------------- supervised classifier phase --------------------
        self.encoder.eval()
        with no_grad():
            embedding, _ = self.encoder.encode(graph)
        frozen = embedding.data.copy()
        self.classifier = nn.LogisticRegression(frozen.shape[1], rng)
        targets = graph.labels[train_indices].astype(np.float64)
        weights = class_balanced_weights(targets) if cfg.class_balance else None
        clf_optimizer = Adam(self.classifier.parameters(), lr=cfg.learning_rate)
        self.classifier_history = []
        for epoch in range(cfg.classifier_epochs):
            clf_optimizer.zero_grad()
            probs = self.classifier(Tensor(frozen[train_indices]))
            loss = binary_cross_entropy(probs, targets, weights)
            loss.backward()
            clf_optimizer.step()
            self.classifier_history.append(float(loss.item()))
        self._mark_fitted()
        return self

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict_proba(self, graph: UrbanRegionGraph) -> np.ndarray:
        self.check_fitted()
        self.encoder.eval()
        with no_grad():
            embedding, _ = self.encoder.encode(graph)
            probs = self.classifier(embedding)
        self.encoder.train()
        return probs.data.copy()

    def num_parameters(self) -> int:
        total = 0
        if self.encoder is not None:
            total += self.encoder.num_parameters()
        if self.classifier is not None:
            total += self.classifier.num_parameters()
        return total


def _pairwise_nce(embedding: Tensor, anchors: np.ndarray, contexts: np.ndarray,
                  signs: np.ndarray) -> Tensor:
    """Noise-contrastive loss over (anchor, context, is_positive) triples."""
    anchor_vectors = embedding[anchors]
    context_vectors = embedding[contexts]
    scores = (anchor_vectors * context_vectors).sum(axis=-1)
    probs = F.sigmoid(scores).clip(1e-7, 1.0 - 1e-7)
    positive_term = Tensor(signs) * probs.log()
    negative_term = Tensor(1.0 - signs) * (Tensor(1.0) - probs).log()
    return -(positive_term + negative_term).mean()
