"""MLP baseline (paper Appendix I-A).

Two fully-connected branches learn POI and image representations
independently; the two vectors are concatenated and fed to a logistic-
regression classifier.  The model ignores the URG structure entirely, which
is exactly what makes it a useful lower bound on the value of modelling
region correlations.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.module import Module
from ..nn.tensor import Tensor, concatenate
from ..urg.graph import UrbanRegionGraph
from .base import BaselineTrainingConfig, GraphModuleDetector


class _MLPModule(Module):
    """Two-branch MLP over the multi-modal region features."""

    def __init__(self, poi_dim: int, img_dim: int, hidden_dim: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.has_poi = poi_dim > 0
        self.has_img = img_dim > 0
        fused_dim = 0
        if self.has_poi:
            self.poi_branch = nn.MLP(poi_dim, [hidden_dim], hidden_dim, rng,
                                     activation="relu")
            fused_dim += hidden_dim
        if self.has_img:
            self.img_branch = nn.MLP(img_dim, [hidden_dim], hidden_dim, rng,
                                     activation="relu")
            fused_dim += hidden_dim
        self.classifier = nn.LogisticRegression(fused_dim, rng)

    def forward(self, graph: UrbanRegionGraph) -> Tensor:
        parts = []
        if self.has_poi:
            parts.append(F.relu(self.poi_branch(Tensor(graph.x_poi))))
        if self.has_img:
            parts.append(F.relu(self.img_branch(Tensor(graph.x_img))))
        fused = parts[0] if len(parts) == 1 else concatenate(parts, axis=-1)
        return self.classifier(fused)


class MLPDetector(GraphModuleDetector):
    """Multi-layer perceptron baseline."""

    name = "MLP"

    def __init__(self, hidden_dim: int = 64,
                 training: BaselineTrainingConfig = None) -> None:
        super().__init__(training)
        self.hidden_dim = hidden_dim

    def build_module(self, graph: UrbanRegionGraph, rng: np.random.Generator) -> Module:
        return _MLPModule(graph.poi_dim, graph.image_dim, self.hidden_dim, rng)
