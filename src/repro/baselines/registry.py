"""Registry of all detectors compared in Table II.

The registry maps display names (as they appear in the paper's tables) to
factory callables so the benchmark harness can instantiate a fresh detector
per fold/seed.  Factories accept keyword overrides (epochs, seed, ...) that
are forwarded to the detector's training configuration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..base import DetectorBase
from ..core.cmsf import CMSFDetector
from ..core.config import CMSFConfig
from .base import BaselineTrainingConfig
from .gat import GATDetector
from .gcn import GCNDetector
from .imgagn import ImGAGNConfig, ImGAGNDetector
from .index_based import IndexBasedDetector
from .mlp import MLPDetector
from .mmre import MMREConfig, MMREDetector
from .muvfcn import MUVFCNDetector
from .semilazy import SemiLazyConfig, SemiLazyDetector
from .uvlens import UVLensDetector

#: Order in which methods appear in the paper's tables.
TABLE2_METHODS: List[str] = [
    "MLP", "GCN", "GAT", "MMRE", "UVLens", "MUVFCN", "ImGAGN", "CMSF",
]

#: Additional comparators implemented beyond Table II: the classic
#: index-based detectors and the semi-lazy learner the related-work section
#: discusses qualitatively.
EXTRA_METHODS: List[str] = ["IndexML", "SemiLazy"]


def _training_config(epochs: Optional[int], seed: int,
                     learning_rate: float) -> BaselineTrainingConfig:
    config = BaselineTrainingConfig(seed=seed, learning_rate=learning_rate)
    if epochs is not None:
        config.epochs = epochs
    return config


def make_detector(name: str, seed: int = 0, epochs: Optional[int] = None,
                  learning_rate: float = 1e-3,
                  cmsf_config: Optional[CMSFConfig] = None) -> DetectorBase:
    """Instantiate a detector by its Table II name.

    Parameters
    ----------
    name:
        One of :data:`TABLE2_METHODS` (case insensitive).
    seed:
        Random seed for parameter initialisation (varied across the paper's
        five runs).
    epochs:
        Optional override of the number of training epochs (the benchmark
        harness uses reduced budgets).
    cmsf_config:
        Full CMSF configuration; only used when ``name`` is ``CMSF`` or one of
        its variants (``CMSF-M`` / ``CMSF-G`` / ``CMSF-H``).
    """
    key = name.upper()
    if key == "INDEXML":
        return IndexBasedDetector(training=_training_config(epochs, seed, learning_rate))
    if key == "SEMILAZY":
        return SemiLazyDetector(SemiLazyConfig())
    if key == "MLP":
        return MLPDetector(training=_training_config(epochs, seed, learning_rate))
    if key == "GCN":
        return GCNDetector(training=_training_config(epochs, seed, learning_rate))
    if key == "GAT":
        return GATDetector(training=_training_config(epochs, seed, learning_rate))
    if key == "MMRE":
        config = MMREConfig(seed=seed, learning_rate=learning_rate)
        if epochs is not None:
            config.classifier_epochs = epochs
            config.embedding_epochs = max(epochs // 3, 10)
        return MMREDetector(config)
    if key == "UVLENS":
        return UVLensDetector(training=_training_config(epochs, seed, learning_rate))
    if key == "MUVFCN":
        return MUVFCNDetector(training=_training_config(epochs, seed, learning_rate))
    if key == "IMGAGN":
        config = ImGAGNConfig(seed=seed, learning_rate=learning_rate)
        if epochs is not None:
            config.generator_epochs = max(epochs // 5, 5)
        return ImGAGNDetector(config)
    if key.startswith("CMSF"):
        base = cmsf_config or CMSFConfig()
        base = base.with_overrides(seed=seed, learning_rate=learning_rate)
        if epochs is not None:
            base = base.with_overrides(master_epochs=epochs,
                                       slave_epochs=max(epochs // 3, 5))
        from ..core.cmsf import make_variant
        if key == "CMSF":
            detector = CMSFDetector(base)
        else:
            detector = make_variant(key, base)
        return detector
    raise KeyError("unknown detector %r; known methods: %s" % (name, TABLE2_METHODS))


def available_methods() -> List[str]:
    """All method names known to the registry."""
    return list(TABLE2_METHODS) + list(EXTRA_METHODS) + ["CMSF-M", "CMSF-G", "CMSF-H"]
