"""Compacted stream snapshots: one graph version, fully materialised.

A snapshot is the *base* of a durable stream: the current graph
(:func:`repro.data.graph_io.graph_to_bytes`, lossless float64), the
version's chained fingerprint, the stream's open options, and — when the
stream was warmed — the :class:`~repro.core.incremental.ScoreCache` of
cached activations and scores, so a restored scorer resumes the
incremental path without recomputing anything.  Everything rides in one
in-memory ``.npz`` archive: numpy round-trips every float64 bit-exactly,
which is what makes "restore then score" indistinguishable from "never
crashed".

The write-ahead log (:mod:`repro.durable.wal`) frames these bytes with
the same length + sha256 header as its delta records and applies the
logged tail on top during recovery.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.incremental import ScoreCache
from ..data.graph_io import graph_from_bytes, graph_to_bytes
from ..urg.graph import UrbanRegionGraph

__all__ = ["SnapshotState", "snapshot_to_bytes", "snapshot_from_bytes",
           "cache_to_arrays", "cache_from_arrays"]

#: snapshot archive schema marker, checked on decode
SNAPSHOT_FORMAT_VERSION = 1


@dataclass
class SnapshotState:
    """One durable point-in-time of a stream."""

    graph: UrbanRegionGraph
    #: the version fingerprint at this point (chained or content mode)
    fingerprint: str
    #: how many deltas this snapshot already contains (== stream version)
    seq: int
    #: the stream's open options (incremental / fingerprints / ...)
    options: Dict[str, object] = field(default_factory=dict)
    #: whether the stream was opened warm (eager rescore on restore)
    warm: bool = True
    #: cached activations/scores of this version (None when never warmed)
    cache: Optional[ScoreCache] = None


def cache_to_arrays(cache: ScoreCache) -> Dict[str, np.ndarray]:
    """Flatten a :class:`ScoreCache` into named arrays (``cache_`` prefix)."""
    arrays: Dict[str, np.ndarray] = {
        "cache_local_repr": cache.local_repr,
        "cache_scores": cache.scores,
    }
    for i, (poi, img) in enumerate(cache.levels):
        arrays[f"cache_level_{i}_poi"] = poi
        arrays[f"cache_level_{i}_img"] = img
    return arrays


def cache_from_arrays(arrays, num_levels: int) -> ScoreCache:
    """Rebuild a :class:`ScoreCache` from :func:`cache_to_arrays` output."""
    levels = [(np.asarray(arrays[f"cache_level_{i}_poi"]),
               np.asarray(arrays[f"cache_level_{i}_img"]))
              for i in range(num_levels)]
    return ScoreCache(levels=levels,
                      local_repr=np.asarray(arrays["cache_local_repr"]),
                      scores=np.asarray(arrays["cache_scores"]))


def snapshot_to_bytes(state: SnapshotState) -> bytes:
    """Serialise a snapshot to an in-memory ``.npz`` archive."""
    meta = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "seq": int(state.seq),
        "fingerprint": str(state.fingerprint),
        "options": dict(state.options),
        "warm": bool(state.warm),
        "cache_levels": (len(state.cache.levels)
                         if state.cache is not None else None),
    }
    arrays: Dict[str, np.ndarray] = {
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"),
                              dtype=np.uint8),
        "graph": np.frombuffer(graph_to_bytes(state.graph), dtype=np.uint8),
    }
    if state.cache is not None:
        arrays.update(cache_to_arrays(state.cache))
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def snapshot_from_bytes(data: bytes) -> SnapshotState:
    """Rebuild a snapshot; raises ``ValueError`` on any malformed input."""
    try:
        archive = np.load(io.BytesIO(data))
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
    except Exception as error:
        raise ValueError(f"invalid snapshot archive: {error}") from error
    if meta.get("format_version") != SNAPSHOT_FORMAT_VERSION:
        raise ValueError("unsupported snapshot version %r (expected %d)"
                         % (meta.get("format_version"),
                            SNAPSHOT_FORMAT_VERSION))
    try:
        graph = graph_from_bytes(bytes(archive["graph"]))
        cache = None
        if meta.get("cache_levels") is not None:
            cache = cache_from_arrays(archive, int(meta["cache_levels"]))
    except ValueError:
        raise
    except Exception as error:
        raise ValueError(f"malformed snapshot archive: {error}") from error
    return SnapshotState(graph=graph,
                         fingerprint=str(meta.get("fingerprint", "")),
                         seq=int(meta.get("seq", 0)),
                         options=dict(meta.get("options") or {}),
                         warm=bool(meta.get("warm", True)),
                         cache=cache)
