"""Append-only, checksummed write-ahead delta logs.

Layout on disk, one directory per stream under a shared root::

    <root>/<quoted-stream-name>/
        snap-00000000.snap      framed snapshot at seq 0 (stream opened)
        snap-00000040.snap      framed snapshot at seq 40 (checkpoint)
        wal-00000041.seg        deltas 41.. (one segment per rotation)

Every record — delta or snapshot — is framed identically::

    4-byte big-endian payload length | 32-byte sha256(payload) | payload

A delta payload is UTF-8 JSON carrying the stream sequence number, the
post-apply version fingerprint and the :func:`repro.serve.wire.delta_to_payload`
wire form of the delta; a snapshot payload is the
:func:`repro.durable.snapshot.snapshot_to_bytes` archive.

Recovery rules (the contract the chaos tests pin down):

* an *incomplete* frame at the end of the **final** segment is a torn
  tail — the write was interrupted mid-record.  The file is truncated
  back to the last complete record and recovery continues; the delta
  was never acknowledged, so nothing is lost.
* a *complete* frame whose payload fails its checksum is corruption,
  not a crash artefact: :class:`DurabilityError`, anywhere.
* an incomplete frame in a **non-final** segment likewise cannot be
  explained by a crash (later segments exist): :class:`DurabilityError`.
* replayed records must be contiguous from the snapshot's sequence
  number; records at or below it (left over from a crash *during*
  compaction) are skipped.
* in ``chained`` fingerprint mode the recorded fingerprints must
  reproduce the sha256 chain exactly; in ``content`` mode the replayed
  graph's content fingerprint must match the last record's.

Fsync policy decides the durability window: ``always`` fsyncs every
append (no acknowledged delta is ever lost), ``interval`` fsyncs at
most every ``fsync_interval_s`` seconds (bounded loss on power failure,
no loss on process crash), ``never`` only flushes to the OS.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..stream.delta import GraphDelta
from ..urg.graph import UrbanRegionGraph
from .snapshot import SnapshotState, snapshot_from_bytes, snapshot_to_bytes

__all__ = [
    "DurabilityError", "DurabilityLog", "StreamLog", "RecoveredStream",
    "chain_fingerprint", "frame_record", "FSYNC_POLICIES",
]

#: delta-record schema marker, checked on recovery
RECORD_FORMAT_VERSION = 1

FSYNC_POLICIES = ("always", "interval", "never")

_LEN = struct.Struct(">I")
_DIGEST_BYTES = hashlib.sha256().digest_size  # 32
_HEADER_BYTES = _LEN.size + _DIGEST_BYTES

_SEGMENT_PREFIX, _SEGMENT_SUFFIX = "wal-", ".seg"
_SNAP_PREFIX, _SNAP_SUFFIX = "snap-", ".snap"


class DurabilityError(RuntimeError):
    """A write-ahead log could not be written, read or replayed.

    Always carries a human-readable reason and, when one exists, the
    offending path — callers (CLI, HTTP handlers) surface ``str(error)``
    directly instead of a raw ``OSError``/``KeyError`` repr.
    """

    def __init__(self, message: str, path=None) -> None:
        if path is not None:
            message = f"{message} [{path}]"
        super().__init__(message)
        self.path = None if path is None else str(path)


def chain_fingerprint(previous: str, delta: GraphDelta) -> str:
    """The chained version fingerprint after applying ``delta``.

    Mirrors ``StreamingScorer``'s ``fingerprints="chained"`` mode:
    ``sha256(previous ++ delta.digest())`` over the ASCII hex digests.
    """
    return hashlib.sha256(previous.encode("ascii")
                          + delta.digest().encode("ascii")).hexdigest()


def frame_record(payload: bytes) -> bytes:
    """Wrap a payload in the length + sha256 frame used on disk."""
    return _LEN.pack(len(payload)) + hashlib.sha256(payload).digest() + payload


def _parse_frames(data: bytes, path) -> Tuple[List[bytes], int, bool]:
    """Split a segment into payloads.

    Returns ``(payloads, clean_end, torn)`` where ``clean_end`` is the
    byte offset of the last complete record's end and ``torn`` flags an
    incomplete frame after it.  A *complete* frame with a bad checksum
    raises :class:`DurabilityError` — that is corruption, not a crash.
    """
    payloads: List[bytes] = []
    offset, size = 0, len(data)
    while offset < size:
        if offset + _HEADER_BYTES > size:
            return payloads, offset, True
        (length,) = _LEN.unpack_from(data, offset)
        start = offset + _HEADER_BYTES
        end = start + length
        if end > size:
            return payloads, offset, True
        payload = bytes(data[start:end])
        if hashlib.sha256(payload).digest() != bytes(data[offset + _LEN.size:start]):
            raise DurabilityError(
                f"checksum mismatch in record at byte {offset}", path)
        payloads.append(payload)
        offset = end
    return payloads, offset, False


def _decode_delta_record(payload: bytes, path) -> dict:
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise DurabilityError(f"undecodable log record: {error}", path)
    if not isinstance(record, dict):
        raise DurabilityError("log record is not a JSON object", path)
    if record.get("record_version") != RECORD_FORMAT_VERSION:
        raise DurabilityError(
            "unsupported log record version %r (expected %d)"
            % (record.get("record_version"), RECORD_FORMAT_VERSION), path)
    return record


def _seq_of(path: Path, prefix: str, suffix: str) -> Optional[int]:
    name = path.name
    if not (name.startswith(prefix) and name.endswith(suffix)):
        return None
    body = name[len(prefix):-len(suffix)]
    return int(body) if body.isdigit() else None


@dataclass
class RecoveredStream:
    """Everything needed to rebuild a scorer at its pre-crash version."""

    name: str
    graph: UrbanRegionGraph
    #: the exact version fingerprint at `version` (chain verified)
    fingerprint: str
    version: int
    #: open options recorded at snapshot time (incremental / fingerprints / ...)
    options: Dict[str, object] = field(default_factory=dict)
    warm: bool = True
    #: snapshot ScoreCache — only non-None when *zero* tail records were
    #: replayed (a replayed delta invalidates the cached activations)
    cache: Optional[object] = None
    snapshot_seq: int = 0
    records_replayed: int = 0
    #: 1 when a torn tail record was truncated during this recovery
    truncated_tail: int = 0
    recovery_seconds: float = 0.0


class _WalMetrics:
    """Per-stream labelled children of the shared WAL metric families."""

    def __init__(self, registry, stream: str) -> None:
        label = {"stream": stream}
        self.appends = registry.counter(
            "repro_wal_appends_total",
            "Delta records appended to the write-ahead log.",
            labelnames=("stream",)).labels(**label)
        self.fsyncs = registry.counter(
            "repro_wal_fsyncs_total",
            "fsync() calls issued by the write-ahead log.",
            labelnames=("stream",)).labels(**label)
        self.bytes_written = registry.counter(
            "repro_wal_bytes_written_total",
            "Bytes written to write-ahead log segments and snapshots.",
            labelnames=("stream",)).labels(**label)
        self.compactions = registry.counter(
            "repro_wal_compactions_total",
            "Snapshot compactions of the write-ahead log.",
            labelnames=("stream",)).labels(**label)
        self.truncated_tails = registry.counter(
            "repro_wal_truncated_tails_total",
            "Torn tail records truncated during recovery.",
            labelnames=("stream",)).labels(**label)
        self.recovery_seconds = registry.histogram(
            "repro_wal_recovery_seconds",
            "Wall-clock time to recover a stream from snapshot + log.")


class StreamLog:
    """The write-ahead log of one stream: segments + snapshots.

    Not opened implicitly: call :meth:`reset` (fresh stream) or
    :meth:`recover` (existing directory) before appending, so a typo'd
    path can never silently fork a stream's history.
    """

    def __init__(self, directory, name: str, *,
                 fsync: str = "interval", fsync_interval_s: float = 1.0,
                 segment_records: int = 256,
                 compact_records: int = 64,
                 compact_bytes: int = 4 << 20,
                 keep_snapshots: int = 2,
                 metrics=None) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of {FSYNC_POLICIES}, "
                             f"got {fsync!r}")
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        self.directory = Path(directory)
        self.name = name
        self.fsync = fsync
        self.fsync_interval_s = float(fsync_interval_s)
        self.segment_records = int(segment_records)
        self.compact_records = int(compact_records)
        self.compact_bytes = int(compact_bytes)
        self.keep_snapshots = max(1, int(keep_snapshots))
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise DurabilityError(f"cannot create stream log directory: "
                                  f"{error}", directory)
        if metrics is None:
            from ..obs import default_registry
            metrics = default_registry()
        self._metrics = _WalMetrics(metrics, name)
        self._lock = threading.RLock()
        self._handle = None
        self._append_path: Optional[Path] = None
        self._records_in_segment = 0
        #: next expected sequence number; None until reset()/recover()
        self._next_seq: Optional[int] = None
        self._records_since_snapshot = 0
        self._bytes_since_snapshot = 0
        self._last_fsync = 0.0

    # ------------------------------------------------------------------
    # file inventory
    def _segments(self) -> List[Tuple[int, Path]]:
        out = []
        for path in self.directory.iterdir():
            seq = _seq_of(path, _SEGMENT_PREFIX, _SEGMENT_SUFFIX)
            if seq is not None:
                out.append((seq, path))
        return sorted(out)

    def _snapshots(self) -> List[Tuple[int, Path]]:
        out = []
        for path in self.directory.iterdir():
            seq = _seq_of(path, _SNAP_PREFIX, _SNAP_SUFFIX)
            if seq is not None:
                out.append((seq, path))
        return sorted(out)

    def log_bytes(self) -> int:
        """Total on-disk footprint (segments + snapshots)."""
        total = 0
        try:
            for path in self.directory.iterdir():
                if path.is_file():
                    total += path.stat().st_size
        except OSError:
            pass
        return total

    # ------------------------------------------------------------------
    # lifecycle
    def reset(self) -> None:
        """Wipe the directory and start a fresh history at seq 1."""
        with self._lock:
            self._close_handle()
            try:
                for path in list(self.directory.iterdir()):
                    if path.is_file():
                        path.unlink()
            except OSError as error:
                raise DurabilityError(f"cannot reset stream log: {error}",
                                      self.directory)
            self._next_seq = 1
            self._append_path = None
            self._records_in_segment = 0
            self._records_since_snapshot = 0
            self._bytes_since_snapshot = 0

    def close(self) -> None:
        with self._lock:
            self._close_handle()

    def _close_handle(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def __enter__(self) -> "StreamLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # appending
    def _require_open(self) -> int:
        if self._next_seq is None:
            raise DurabilityError(
                "stream log has no established history — call reset() for a "
                "fresh stream or recover() to resume an existing one",
                self.directory)
        return self._next_seq

    def _handle_for_append(self, seq: int):
        if (self._handle is not None
                and self._records_in_segment >= self.segment_records):
            self._close_handle()
            self._append_path = None
        if self._handle is None:
            if (self._append_path is None
                    or self._records_in_segment >= self.segment_records):
                self._append_path = self.directory / (
                    f"{_SEGMENT_PREFIX}{seq:08d}{_SEGMENT_SUFFIX}")
                self._records_in_segment = 0
            try:
                self._handle = open(self._append_path, "ab")
            except OSError as error:
                raise DurabilityError(f"cannot open log segment: {error}",
                                      self._append_path)
        return self._handle

    def _maybe_fsync(self, handle, force: bool = False) -> None:
        handle.flush()
        if not force:
            if self.fsync == "never":
                return
            if (self.fsync == "interval"
                    and time.monotonic() - self._last_fsync
                    < self.fsync_interval_s):
                return
        os.fsync(handle.fileno())
        self._last_fsync = time.monotonic()
        self._metrics.fsyncs.inc()

    def append_delta(self, delta: GraphDelta, version: int,
                     fingerprint: str) -> None:
        """Durably record one accepted delta.

        ``version`` is the stream version *after* this delta (== its
        sequence number) and ``fingerprint`` the post-apply version
        fingerprint.  Appends must be contiguous; any gap means the
        caller lost track of history and is refused.  On any failure the
        exception propagates before the caller swaps state in, so an
        unlogged delta is never acknowledged.
        """
        from ..serve.wire import delta_to_payload  # circular-import guard
        with self._lock:
            expected = self._require_open()
            if version != expected:
                raise DurabilityError(
                    f"non-contiguous append: expected seq {expected}, "
                    f"got {version}", self.directory)
            record = {
                "record_version": RECORD_FORMAT_VERSION,
                "seq": int(version),
                "kind": delta.kind,
                "fingerprint": str(fingerprint),
                "delta": delta_to_payload(delta),
            }
            frame = frame_record(json.dumps(record).encode("utf-8"))
            handle = self._handle_for_append(version)
            try:
                handle.write(frame)
                self._maybe_fsync(handle)
            except OSError as error:
                raise DurabilityError(f"log append failed: {error}",
                                      self._append_path)
            self._next_seq = version + 1
            self._records_in_segment += 1
            self._records_since_snapshot += 1
            self._bytes_since_snapshot += len(frame)
            self._metrics.appends.inc()
            self._metrics.bytes_written.inc(len(frame))

    # ------------------------------------------------------------------
    # snapshots / compaction
    def needs_compaction(self) -> bool:
        with self._lock:
            return (self._records_since_snapshot >= self.compact_records
                    or self._bytes_since_snapshot >= self.compact_bytes)

    def write_snapshot(self, state: SnapshotState) -> Path:
        """Atomically persist a compacted snapshot and prune behind it.

        Write order is crash-safe: tmp file + fsync, ``os.replace`` into
        place, directory fsync, *then* delete fully-covered segments and
        snapshots beyond ``keep_snapshots``.  A crash at any point
        leaves either the old or the new snapshot readable.
        """
        with self._lock:
            if self._next_seq is None:
                self._next_seq = int(state.seq) + 1
            elif state.seq >= self._next_seq:
                raise DurabilityError(
                    f"snapshot seq {state.seq} is ahead of the log "
                    f"(next seq {self._next_seq})", self.directory)
            frame = frame_record(snapshot_to_bytes(state))
            path = self.directory / (
                f"{_SNAP_PREFIX}{state.seq:08d}{_SNAP_SUFFIX}")
            tmp = path.with_suffix(path.suffix + ".tmp")
            try:
                with open(tmp, "wb") as handle:
                    handle.write(frame)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
                self._fsync_directory()
            except OSError as error:
                raise DurabilityError(f"cannot write snapshot: {error}", tmp)
            self._metrics.bytes_written.inc(len(frame))
            self._metrics.compactions.inc()
            # prune: segments fully covered by this snapshot, old snapshots
            self._close_handle()
            self._append_path = None
            self._records_in_segment = 0
            self._prune(int(state.seq))
            self._records_since_snapshot = 0
            self._bytes_since_snapshot = 0
            return path

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _prune(self, snapshot_seq: int) -> None:
        segments = self._segments()
        next_seq = self._next_seq if self._next_seq is not None \
            else snapshot_seq + 1
        for index, (first_seq, path) in enumerate(segments):
            last_seq = (segments[index + 1][0] - 1
                        if index + 1 < len(segments) else next_seq - 1)
            if last_seq <= snapshot_seq:
                try:
                    path.unlink()
                except OSError:
                    pass
        snapshots = self._snapshots()
        for _, path in snapshots[:-self.keep_snapshots]:
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # recovery
    def recover(self) -> RecoveredStream:
        """Rebuild the latest durable state: newest readable snapshot,
        plus the logged tail replayed and chain-verified on top."""
        from ..serve.wire import delta_from_payload  # circular-import guard
        started = time.perf_counter()
        with self._lock:
            self._close_handle()
            base = self._load_base_snapshot()
            records, truncated, tail_info = self._load_tail_records()
            graph, fingerprint = base.graph, base.fingerprint
            version, replayed = int(base.seq), 0
            mode = str(base.options.get("fingerprints", "chained"))
            for record in records:
                seq = int(record.get("seq", -1))
                if seq <= base.seq:
                    continue  # left over from a crash during compaction
                if seq != version + 1:
                    raise DurabilityError(
                        f"gap in delta log: expected seq {version + 1}, "
                        f"found {seq}", self.directory)
                try:
                    delta = delta_from_payload(record["delta"])
                except (KeyError, ValueError, TypeError) as error:
                    raise DurabilityError(
                        f"bad delta in log record seq {seq}: {error}",
                        self.directory)
                recorded = str(record.get("fingerprint", ""))
                if mode == "chained":
                    expected = chain_fingerprint(fingerprint, delta)
                    if recorded != expected:
                        raise DurabilityError(
                            f"fingerprint chain broken at seq {seq}: log "
                            f"says {recorded[:12]}…, replay computes "
                            f"{expected[:12]}…", self.directory)
                try:
                    graph = delta.apply(graph, validate=False)
                except ValueError as error:
                    raise DurabilityError(
                        f"logged delta at seq {seq} no longer applies: "
                        f"{error}", self.directory)
                fingerprint = recorded or fingerprint
                version, replayed = seq, replayed + 1
            if mode == "content" and replayed:
                actual = graph.fingerprint()
                if fingerprint and actual != fingerprint:
                    raise DurabilityError(
                        f"content fingerprint mismatch after replay: log "
                        f"says {fingerprint[:12]}…, graph is "
                        f"{actual[:12]}…", self.directory)
                fingerprint = actual
            # position the log for further appends
            self._next_seq = version + 1
            self._append_path, self._records_in_segment = tail_info
            self._records_since_snapshot = replayed
            self._bytes_since_snapshot = sum(
                path.stat().st_size for _, path in self._segments()
                if path.exists())
            elapsed = time.perf_counter() - started
            self._metrics.recovery_seconds.observe(elapsed)
            if truncated:
                self._metrics.truncated_tails.inc()
            return RecoveredStream(
                name=self.name, graph=graph, fingerprint=fingerprint,
                version=version, options=dict(base.options),
                warm=bool(base.warm),
                cache=base.cache if replayed == 0 else None,
                snapshot_seq=int(base.seq), records_replayed=replayed,
                truncated_tail=int(truncated),
                recovery_seconds=elapsed)

    def _load_base_snapshot(self) -> SnapshotState:
        candidates = self._snapshots()
        if not candidates:
            raise DurabilityError(
                "no snapshot found — the stream was never opened durably, "
                "or its snapshot files were deleted", self.directory)
        problems = []
        for seq, path in reversed(candidates):
            try:
                data = path.read_bytes()
            except OSError as error:
                problems.append(f"{path.name}: {error}")
                continue
            try:
                payloads, clean_end, torn = _parse_frames(data, path)
            except DurabilityError:
                # a corrupt snapshot is not fatal while older ones exist
                problems.append(f"{path.name}: checksum mismatch")
                continue
            if torn or len(payloads) != 1 or clean_end != len(data):
                problems.append(f"{path.name}: malformed snapshot frame")
                continue
            try:
                state = snapshot_from_bytes(payloads[0])
            except ValueError as error:
                problems.append(f"{path.name}: {error}")
                continue
            if int(state.seq) != seq:
                problems.append(f"{path.name}: names seq {seq} but "
                                f"contains seq {state.seq}")
                continue
            return state
        raise DurabilityError("no readable snapshot: "
                              + "; ".join(problems), self.directory)

    def _load_tail_records(self):
        """All decodable delta records in seq order, truncating a torn
        tail in the final segment.  Returns ``(records, truncated,
        (append_path, records_in_final_segment))``."""
        records: List[dict] = []
        truncated = False
        segments = self._segments()
        append_path: Optional[Path] = None
        in_final = 0
        for index, (first_seq, path) in enumerate(segments):
            final = index == len(segments) - 1
            try:
                data = path.read_bytes()
            except OSError as error:
                raise DurabilityError(f"cannot read log segment: {error}",
                                      path)
            payloads, clean_end, torn = _parse_frames(data, path)
            if torn:
                if not final:
                    raise DurabilityError(
                        f"incomplete record mid-log at byte {clean_end} "
                        "(not the final segment, so this is corruption, "
                        "not a torn tail)", path)
                try:
                    os.truncate(path, clean_end)
                except OSError as error:
                    raise DurabilityError(
                        f"cannot truncate torn tail: {error}", path)
                truncated = True
            for payload in payloads:
                records.append(_decode_delta_record(payload, path))
            if final:
                append_path, in_final = path, len(payloads)
        return records, truncated, (append_path, in_final)

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        with self._lock:
            snapshots = self._snapshots()
            return {
                "stream": self.name,
                "directory": str(self.directory),
                "next_seq": self._next_seq,
                "log_bytes": self.log_bytes(),
                "segments": len(self._segments()),
                "snapshots": len(snapshots),
                "last_snapshot_seq": snapshots[-1][0] if snapshots else None,
                "records_since_snapshot": self._records_since_snapshot,
                "fsync": self.fsync,
            }


class DurabilityLog:
    """A directory of per-stream write-ahead logs.

    Stream names are percent-encoded into directory names so any name
    the router accepts (slashes, spaces, unicode) maps to exactly one
    directory and back.
    """

    def __init__(self, root, *,
                 fsync: str = "interval", fsync_interval_s: float = 1.0,
                 segment_records: int = 256,
                 compact_records: int = 64,
                 compact_bytes: int = 4 << 20,
                 keep_snapshots: int = 2,
                 metrics=None) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of {FSYNC_POLICIES}, "
                             f"got {fsync!r}")
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise DurabilityError(f"cannot create durability root: {error}",
                                  root)
        if metrics is None:
            from ..obs import default_registry
            metrics = default_registry()
        self.metrics = metrics
        self.fsync = fsync
        self.fsync_interval_s = float(fsync_interval_s)
        self.segment_records = int(segment_records)
        self.compact_records = int(compact_records)
        self.compact_bytes = int(compact_bytes)
        self.keep_snapshots = int(keep_snapshots)
        self._streams: Dict[str, StreamLog] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def stream(self, name: str, fresh: bool = False) -> StreamLog:
        """The :class:`StreamLog` for ``name`` (created on first use).

        ``fresh=True`` wipes any existing history — for opening a brand
        new stream; restores use :meth:`recover` instead.
        """
        with self._lock:
            log = self._streams.get(name)
            if log is None:
                directory = self.root / urllib.parse.quote(name, safe="")
                log = StreamLog(
                    directory, name,
                    fsync=self.fsync,
                    fsync_interval_s=self.fsync_interval_s,
                    segment_records=self.segment_records,
                    compact_records=self.compact_records,
                    compact_bytes=self.compact_bytes,
                    keep_snapshots=self.keep_snapshots,
                    metrics=self.metrics)
                self._streams[name] = log
        if fresh:
            log.reset()
        return log

    def stream_names(self) -> List[str]:
        """Streams with on-disk history under the root."""
        names = []
        try:
            for path in sorted(self.root.iterdir()):
                if path.is_dir():
                    names.append(urllib.parse.unquote(path.name))
        except OSError as error:
            raise DurabilityError(f"cannot list durability root: {error}",
                                  self.root)
        return names

    def recover(self, name: str) -> RecoveredStream:
        return self.stream(name).recover()

    def recover_all(self) -> Dict[str, RecoveredStream]:
        return {name: self.recover(name) for name in self.stream_names()}

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """Operator-facing durability status, robust to restarts: ages
        and sizes come from the files, not in-memory state."""
        log_bytes = 0
        segments = snapshots = 0
        newest_snapshot: Optional[float] = None
        try:
            for directory in self.root.iterdir():
                if not directory.is_dir():
                    continue
                for path in directory.iterdir():
                    if not path.is_file():
                        continue
                    try:
                        stat = path.stat()
                    except OSError:
                        continue
                    log_bytes += stat.st_size
                    if _seq_of(path, _SEGMENT_PREFIX, _SEGMENT_SUFFIX) is not None:
                        segments += 1
                    elif _seq_of(path, _SNAP_PREFIX, _SNAP_SUFFIX) is not None:
                        snapshots += 1
                        if (newest_snapshot is None
                                or stat.st_mtime > newest_snapshot):
                            newest_snapshot = stat.st_mtime
        except OSError as error:
            raise DurabilityError(f"cannot inspect durability root: {error}",
                                  self.root)
        age = (None if newest_snapshot is None
               else max(0.0, time.time() - newest_snapshot))
        return {
            "wal_enabled": True,
            "root": str(self.root),
            "fsync": self.fsync,
            "streams": len(self.stream_names()),
            "segments": segments,
            "snapshots": snapshots,
            "log_bytes": log_bytes,
            "last_checkpoint_age_seconds": age,
        }

    def close(self) -> None:
        with self._lock:
            for log in self._streams.values():
                log.close()
