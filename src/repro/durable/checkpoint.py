"""Background log compaction: a small periodic-worker thread.

The checkpointer is deliberately generic — it owns *when* to run, not
*what*: callers hand it a ``run_once`` callable (``StreamingScorer.
checkpoint`` or ``FleetRouter.checkpoint``) that compacts whatever logs
have crossed their thresholds and returns a summary.  Progress is
observable two ways: the return value of :meth:`run_now`, and an
optional JSON status file rewritten after every cycle so operators (and
the CI smoke job) can watch a serving process checkpoint without
attaching to it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional

__all__ = ["Checkpointer"]


class Checkpointer:
    """Run ``run_once`` every ``interval_s`` seconds on a daemon thread.

    Exceptions from ``run_once`` are caught and recorded (in
    :attr:`last_error` and the status file) — a failing checkpoint must
    never take the serving path down with it.
    """

    def __init__(self, run_once: Callable[[], object], *,
                 interval_s: float = 30.0,
                 status_path=None) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self._run_once = run_once
        self.interval_s = float(interval_s)
        self.status_path = None if status_path is None else Path(status_path)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self.runs = 0
        self.last_result: object = None
        self.last_error: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Checkpointer":
        with self._lock:
            if self._thread is not None:
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-checkpointer", daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout)

    def __enter__(self) -> "Checkpointer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def run_now(self) -> object:
        """One synchronous cycle (also what the thread calls)."""
        try:
            result = self._run_once()
            error = None
        except Exception as exc:  # noqa: BLE001 — must not kill the thread
            result, error = None, f"{type(exc).__name__}: {exc}"
        with self._lock:
            self.runs += 1
            self.last_result = result
            self.last_error = error
            status = self._status_locked()
        self._write_status(status)
        return result

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.run_now()

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        with self._lock:
            return self._status_locked()

    def _status_locked(self) -> Dict[str, object]:
        return {
            "updated_at": time.time(),
            "interval_s": self.interval_s,
            "running": self.running,
            "runs": self.runs,
            "last_result": self.last_result,
            "last_error": self.last_error,
        }

    def _write_status(self, status: Dict[str, object]) -> None:
        if self.status_path is None:
            return
        try:
            tmp = self.status_path.with_suffix(
                self.status_path.suffix + ".tmp")
            tmp.write_text(json.dumps(status, default=str, indent=2))
            os.replace(tmp, self.status_path)
        except OSError:
            pass  # status is best-effort observability, never load-bearing
