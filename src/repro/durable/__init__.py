"""``repro.durable`` — crash-safe streams: write-ahead log + snapshots.

The streaming stack (``repro.stream``, ``repro.serve``) keeps every
city's graph, version fingerprint and score cache in memory only; this
subpackage makes that state survive a crash *bit-identically*:

* :mod:`repro.durable.wal` — :class:`DurabilityLog` /
  :class:`StreamLog`: an append-only, checksummed delta log (length +
  sha256 framing around the ``serve.wire`` delta payloads) with
  ``always`` / ``interval`` / ``never`` fsync policies, and a recovery
  path that truncates a torn tail record, rejects corrupt records, and
  re-verifies the chained version fingerprints while replaying;
* :mod:`repro.durable.snapshot` — compacted snapshots: lossless graph
  bytes + the stream's :class:`~repro.core.incremental.ScoreCache`, so
  a restore skips replay *and* rescoring entirely when the log tail is
  empty;
* :mod:`repro.durable.checkpoint` — :class:`Checkpointer`, the
  background thread that compacts logs past their size/record
  thresholds and reports status to a JSON file.

``StreamingScorer(wal=...)`` appends each accepted delta before its
version swap; ``FleetRouter(wal=...)`` adds ``snapshot()`` /
``restore()`` so a restarted router replays every stream back to the
exact pre-crash fingerprint and float64 scores.
"""

from .checkpoint import Checkpointer
from .snapshot import (SnapshotState, cache_from_arrays, cache_to_arrays,
                       snapshot_from_bytes, snapshot_to_bytes)
from .wal import (FSYNC_POLICIES, DurabilityError, DurabilityLog,
                  RecoveredStream, StreamLog, chain_fingerprint, frame_record)

__all__ = [
    "Checkpointer",
    "DurabilityError",
    "DurabilityLog",
    "StreamLog",
    "RecoveredStream",
    "SnapshotState",
    "FSYNC_POLICIES",
    "chain_fingerprint",
    "frame_record",
    "snapshot_to_bytes",
    "snapshot_from_bytes",
    "cache_to_arrays",
    "cache_from_arrays",
]
