"""Experiment runners — one function per paper table / figure.

Each runner returns plain data structures (dicts / lists) and optionally
prints the rows or series the paper reports.  The benchmark harness under
``benchmarks/`` wraps these functions; they can also be used directly, e.g.::

    from repro.experiments import run_table2
    results = run_table2(cities=("fuzhou",), verbose=True)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import TABLE2_METHODS, make_detector
from ..core.config import COMPONENT_VARIANTS
from ..eval import (EfficiencyReport, LABEL_RATIOS, MethodSummary,
                    aggregate_reports, block_kfold, evaluate_detector,
                    format_series, format_table, mask_train_indices,
                    measure_efficiency, rank_regions, table2_rows, TABLE2_HEADERS)
from ..eval.splits import FoldSplit
from .datasets import load_graph, load_graph_variant, table1_statistics
from .settings import (EFFICIENCY_CITIES, EVALUATION_CITIES, PAPER_CITY_SETTINGS,
                       ScaleSettings, city_cmsf_config, run_scale)

# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------


def _detector_factory(method: str, city: str, scale: ScaleSettings):
    """Factory of fresh detectors for ``method`` tuned for ``city``."""

    def make(seed: int):
        if method.upper().startswith("CMSF"):
            config = city_cmsf_config(city, seed=seed).with_overrides(
                master_epochs=scale.cmsf_master_epochs,
                slave_epochs=scale.cmsf_slave_epochs)
            return make_detector(method, seed=seed, cmsf_config=config)
        return make_detector(method, seed=seed, epochs=scale.baseline_epochs)

    return make


def _splits_for_scale(graph, scale: ScaleSettings, split_seed: int = 0) -> List[FoldSplit]:
    splits = block_kfold(graph, n_folds=scale.n_folds, seed=split_seed)
    if run_scale() == "quick":
        # quick scale evaluates a single outer fold to bound the runtime
        return splits[:1]
    return splits


def _summarise_method(method: str, city: str, graph, scale: ScaleSettings,
                      train_ratio: Optional[float] = None) -> MethodSummary:
    """Cross-validate one method on one city under the current scale."""
    splits = _splits_for_scale(graph, scale)
    factory = _detector_factory(method, city, scale)
    runs = []
    for seed in scale.seeds:
        for split in splits:
            train = split.train_indices
            if train_ratio is not None and train_ratio < 1.0:
                train = mask_train_indices(train, graph.labels, train_ratio, seed=seed)
            detector = factory(seed)
            effective = FoldSplit(fold=split.fold, train_indices=train,
                                  test_indices=split.test_indices)
            runs.append(evaluate_detector(detector, graph, effective, seed=seed))
    return MethodSummary(method=method,
                         summary=aggregate_reports([r.metrics for r in runs]),
                         runs=runs)


# ----------------------------------------------------------------------
# Table I — dataset statistics
# ----------------------------------------------------------------------


def run_table1(cities: Sequence[str] = EVALUATION_CITIES,
               verbose: bool = True) -> Dict[str, Dict[str, int]]:
    """Regenerate the dataset-statistics table (Table I analogue)."""
    stats = table1_statistics(tuple(cities))
    if verbose:
        rows = [[city, s["regions"], s["edges"], s["uvs"], s["non_uvs"]]
                for city, s in stats.items()]
        print(format_table(["City", "#Regions", "#Edges", "#UVs", "#Non-UVs"], rows,
                           title="Table I — synthetic dataset statistics"))
    return stats


# ----------------------------------------------------------------------
# Table II — detection performance comparison
# ----------------------------------------------------------------------


def run_table2(cities: Sequence[str] = EVALUATION_CITIES,
               methods: Sequence[str] = tuple(TABLE2_METHODS),
               verbose: bool = True) -> Dict[str, Dict[str, MethodSummary]]:
    """Regenerate the Table II comparison (AUC / Recall / Precision / F1)."""
    scale = ScaleSettings.current()
    results: Dict[str, Dict[str, MethodSummary]] = {}
    for city in cities:
        graph = load_graph(city)
        results[city] = {}
        for method in methods:
            if verbose:
                print(f"[table2] {city}: evaluating {method} ...", flush=True)
            results[city][method] = _summarise_method(method, city, graph, scale)
    if verbose:
        rows = []
        for city in cities:
            rows.extend(table2_rows(city, results[city], list(methods)))
        print(format_table(TABLE2_HEADERS, rows,
                           title="Table II — detection performance comparison"))
    return results


# ----------------------------------------------------------------------
# Table III — efficiency comparison
# ----------------------------------------------------------------------


def run_table3(cities: Sequence[str] = EFFICIENCY_CITIES,
               methods: Sequence[str] = tuple(TABLE2_METHODS),
               verbose: bool = True) -> Dict[str, Dict[str, EfficiencyReport]]:
    """Regenerate the Table III efficiency comparison.

    Per-epoch training time, inference time and model size do not depend on
    how many epochs a model is trained for, so the measurement uses a
    shortened epoch budget regardless of the run scale.
    """
    scale = ScaleSettings.current()
    timing_scale = ScaleSettings(n_folds=scale.n_folds, seeds=scale.seeds,
                                 baseline_epochs=25, cmsf_master_epochs=25,
                                 cmsf_slave_epochs=8, mmre_embedding_epochs=8)
    results: Dict[str, Dict[str, EfficiencyReport]] = {}
    for city in cities:
        graph = load_graph(city)
        split = _splits_for_scale(graph, scale)[0]
        results[city] = {}
        for method in methods:
            if verbose:
                print(f"[table3] {city}: measuring {method} ...", flush=True)
            factory = _detector_factory(method, city, timing_scale)
            results[city][method] = measure_efficiency(lambda: factory(0), graph,
                                                       split.train_indices)
    if verbose:
        rows = []
        for method in methods:
            row = [method]
            for city in cities:
                report = results[city][method]
                row.extend([report.train_seconds_per_epoch, report.inference_seconds])
            row.append(results[cities[0]][method].model_size_mb)
            rows.append(row)
        headers = ["Method"]
        for city in cities:
            headers.extend([f"train s/epoch ({city})", f"inference s ({city})"])
        headers.append("size (MB)")
        print(format_table(headers, rows, title="Table III — efficiency comparison"))
    return results


# ----------------------------------------------------------------------
# Figure 5(a) — component ablation
# ----------------------------------------------------------------------


def run_fig5a(cities: Sequence[str] = EVALUATION_CITIES,
              variants: Sequence[str] = COMPONENT_VARIANTS,
              verbose: bool = True) -> Dict[str, Dict[str, float]]:
    """CMSF vs CMSF-M / CMSF-G / CMSF-H (AUC per city)."""
    scale = ScaleSettings.current()
    results: Dict[str, Dict[str, float]] = {}
    for city in cities:
        graph = load_graph(city)
        results[city] = {}
        for variant in variants:
            if verbose:
                print(f"[fig5a] {city}: evaluating {variant} ...", flush=True)
            summary = _summarise_method(variant, city, graph, scale)
            results[city][variant] = summary.mean("auc")
    if verbose:
        for city in cities:
            print(format_series(f"Figure 5(a) {city}", list(results[city]),
                                list(results[city].values()), "variant", "AUC"))
    return results


# ----------------------------------------------------------------------
# Figure 5(b) — multi-modal urban data ablation
# ----------------------------------------------------------------------


def run_fig5b(cities: Sequence[str] = EVALUATION_CITIES,
              ablations: Sequence[str] = ("noImage", "noIndex", "noRad", "noCate",
                                          "noProx", "noRoad", "full"),
              verbose: bool = True) -> Dict[str, Dict[str, float]]:
    """CMSF on URGs with one data source removed (AUC per city)."""
    scale = ScaleSettings.current()
    results: Dict[str, Dict[str, float]] = {}
    for city in cities:
        results[city] = {}
        for ablation in ablations:
            if verbose:
                print(f"[fig5b] {city}: evaluating {ablation} ...", flush=True)
            graph = load_graph_variant(city, ablation)
            label = "CMSF" if ablation == "full" else ablation
            summary = _summarise_method("CMSF", city, graph, scale)
            results[city][label] = summary.mean("auc")
    if verbose:
        for city in cities:
            print(format_series(f"Figure 5(b) {city}", list(results[city]),
                                list(results[city].values()), "data ablation", "AUC"))
    return results


# ----------------------------------------------------------------------
# Figure 6(a) — sensitivity to the number of latent clusters K
# ----------------------------------------------------------------------


def run_fig6a(city: str = "fuzhou",
              cluster_counts: Sequence[int] = (5, 10, 20, 30, 50, 80),
              verbose: bool = True) -> Dict[int, float]:
    """AUC as a function of the number of latent clusters."""
    scale = ScaleSettings.current()
    graph = load_graph(city)
    splits = _splits_for_scale(graph, scale)
    results: Dict[int, float] = {}
    for k in cluster_counts:
        if verbose:
            print(f"[fig6a] {city}: K={k} ...", flush=True)
        aucs = []
        for split in splits:
            config = city_cmsf_config(city, seed=0).with_overrides(num_clusters=k)
            detector = make_detector("CMSF", seed=0, cmsf_config=config)
            result = evaluate_detector(detector, graph, split)
            aucs.append(result.metrics["auc"])
        results[k] = float(np.nanmean(aucs))
    if verbose:
        print(format_series(f"Figure 6(a) {city}", list(results), list(results.values()),
                            "K", "AUC"))
    return results


# ----------------------------------------------------------------------
# Figure 6(b) — sensitivity to the balancing weight lambda
# ----------------------------------------------------------------------


def run_fig6b(city: str = "fuzhou",
              lambdas: Sequence[float] = (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0),
              verbose: bool = True) -> Dict[float, float]:
    """AUC as a function of the balancing weight of the PU rank loss."""
    scale = ScaleSettings.current()
    graph = load_graph(city)
    splits = _splits_for_scale(graph, scale)
    results: Dict[float, float] = {}
    for lam in lambdas:
        if verbose:
            print(f"[fig6b] {city}: lambda={lam} ...", flush=True)
        aucs = []
        for split in splits:
            config = city_cmsf_config(city, seed=0).with_overrides(lambda_weight=lam)
            detector = make_detector("CMSF", seed=0, cmsf_config=config)
            result = evaluate_detector(detector, graph, split)
            aucs.append(result.metrics["auc"])
        results[lam] = float(np.nanmean(aucs))
    if verbose:
        print(format_series(f"Figure 6(b) {city}", list(results), list(results.values()),
                            "lambda", "AUC"))
    return results


# ----------------------------------------------------------------------
# Figure 6(c) — ratio of labelled data (CMSF vs UVLens)
# ----------------------------------------------------------------------


def run_fig6c(city: str = "fuzhou",
              ratios: Sequence[float] = LABEL_RATIOS,
              methods: Sequence[str] = ("CMSF", "UVLens"),
              verbose: bool = True) -> Dict[str, Dict[float, float]]:
    """AUC of CMSF and UVLens under shrinking labelled-data budgets."""
    scale = ScaleSettings.current()
    graph = load_graph(city)
    results: Dict[str, Dict[float, float]] = {method: {} for method in methods}
    for ratio in ratios:
        for method in methods:
            if verbose:
                print(f"[fig6c] {city}: {method} at ratio {ratio:.2f} ...", flush=True)
            summary = _summarise_method(method, city, graph, scale, train_ratio=ratio)
            results[method][ratio] = summary.mean("auc")
    if verbose:
        for method in methods:
            print(format_series(f"Figure 6(c) {city} {method}",
                                [f"{int(100 * r)}%" for r in results[method]],
                                list(results[method].values()), "labeled ratio", "AUC"))
    return results


# ----------------------------------------------------------------------
# Figure 7 — case study
# ----------------------------------------------------------------------


def run_fig7(cities: Sequence[str] = ("fuzhou", "shenzhen"), top_percent: float = 3.0,
             methods: Sequence[str] = ("CMSF", "UVLens"),
             verbose: bool = True) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Case study: overlap between detected top-p% regions and ground truth.

    The paper shows maps (Figure 7); the quantitative equivalent reported
    here is, for each method, which regions land in the top 3% of the
    labelled pool and how many of them hit true UVs — plus an ASCII map of
    the detections for visual inspection.
    """
    scale = ScaleSettings.current()
    results: Dict[str, Dict[str, Dict[str, object]]] = {}
    for city in cities:
        graph = load_graph(city)
        split = _splits_for_scale(graph, scale)[0]
        pool = graph.labeled_indices()
        results[city] = {}
        for method in methods:
            if verbose:
                print(f"[fig7] {city}: {method} ...", flush=True)
            detector = _detector_factory(method, city, scale)(0)
            detector.fit(graph, split.train_indices)
            top = rank_regions(detector, graph, pool=pool, top_percent=top_percent)
            hits = int(graph.ground_truth[top].sum())
            results[city][method] = {
                "detected": top,
                "hits": hits,
                "detected_count": int(top.size),
                "hit_rate": hits / max(top.size, 1),
                "ascii_map": ascii_detection_map(graph, top),
            }
        if verbose:
            for method in methods:
                entry = results[city][method]
                print(f"Figure 7 {city} {method}: {entry['hits']}/{entry['detected_count']} "
                      f"top-{top_percent:g}% detections overlap ground-truth UVs")
    return results


def ascii_detection_map(graph, detected: np.ndarray) -> str:
    """Small ASCII map: '#' true UV detected, 'o' detection miss, '.' missed UV."""
    height, width = graph.grid_shape
    canvas = np.full((height, width), " ", dtype="<U1")
    for node in range(graph.num_nodes):
        row, col = divmod(int(graph.region_index[node]), width)
        if graph.ground_truth[node] == 1:
            canvas[row, col] = "."
    for node in detected:
        row, col = divmod(int(graph.region_index[int(node)]), width)
        canvas[row, col] = "#" if graph.ground_truth[int(node)] == 1 else "o"
    return "\n".join("".join(line) for line in canvas)
