"""Experiment settings: per-city hyper-parameters and run scale.

The paper tunes a handful of hyper-parameters per city (Section VI-A):
number of latent clusters ``K``, assignment temperature ``tau``, the
local/global aggregation function, the number of attention heads and the
balancing weight ``lambda``.  ``city_cmsf_config`` mirrors those choices,
scaled to the synthetic city sizes.

Because the reproduction runs on a pure-numpy training stack, the benchmark
harness supports two scales selected with the ``REPRO_SCALE`` environment
variable:

* ``quick`` (default) — one outer fold, one seed, reduced epochs and a
  reduced method set where noted.  Finishes in minutes and is what the
  checked-in ``bench_output.txt`` was produced with.
* ``full``  — three folds, more seeds and the full epoch budget; closer to
  the paper's protocol but takes hours.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..core.config import CMSFConfig

#: Hyper-parameters reported by the paper per city (Section VI-A), kept for
#: reference.  K and tau are rescaled below because the synthetic cities are
#: orders of magnitude smaller than the real datasets.
PAPER_CITY_SETTINGS = {
    "shenzhen": {"clusters": 50, "temperature": 0.1, "heads": 2,
                 "cluster_aggregation": "sum", "lambda": 0.01},
    "fuzhou": {"clusters": 500, "temperature": 0.01, "heads": 2,
               "cluster_aggregation": "sum", "lambda": 1.0},
    "beijing": {"clusters": 500, "temperature": 0.1, "heads": 1,
                "cluster_aggregation": "concat", "lambda": 0.001},
}


def run_scale() -> str:
    """Current benchmark scale (``quick`` or ``full``)."""
    scale = os.environ.get("REPRO_SCALE", "quick").lower()
    if scale not in ("quick", "full"):
        raise ValueError("REPRO_SCALE must be 'quick' or 'full', got %r" % scale)
    return scale


@dataclass
class ScaleSettings:
    """Protocol knobs that depend on the benchmark scale."""

    n_folds: int
    seeds: Tuple[int, ...]
    baseline_epochs: int
    cmsf_master_epochs: int
    cmsf_slave_epochs: int
    mmre_embedding_epochs: int

    @classmethod
    def current(cls) -> "ScaleSettings":
        if run_scale() == "full":
            return cls(n_folds=3, seeds=(0, 1, 2), baseline_epochs=300,
                       cmsf_master_epochs=300, cmsf_slave_epochs=60,
                       mmre_embedding_epochs=60)
        return cls(n_folds=3, seeds=(0,), baseline_epochs=150,
                   cmsf_master_epochs=200, cmsf_slave_epochs=30,
                   mmre_embedding_epochs=15)


#: grid-shrink factor applied to the city presets under the quick scale so
#: one full benchmark pass stays within minutes on a laptop
QUICK_GRID_FACTOR = 0.7


def scaled_city_config(name: str):
    """City preset for ``name`` scaled according to the current run scale.

    Under the ``full`` scale the preset is returned unchanged; under the
    ``quick`` scale the grid is shrunk by :data:`QUICK_GRID_FACTOR` per axis
    and the number of planted villages / negative labels is reduced
    proportionally, preserving the relative structure between cities.
    """
    from dataclasses import replace

    from ..synth import get_preset

    config = get_preset(name)
    if run_scale() == "full" or name in ("tiny", "mini"):
        return config
    factor = QUICK_GRID_FACTOR
    villages = replace(config.villages,
                       count=max(int(round(config.villages.count * factor)), 3))
    labeling = replace(config.labeling,
                       negative_samples=max(int(config.labeling.negative_samples * factor), 50))
    return replace(
        config,
        grid_height=max(int(round(config.grid_height * factor)), 16),
        grid_width=max(int(round(config.grid_width * factor)), 16),
        villages=villages,
        labeling=labeling,
    )


def city_cmsf_config(city: str, seed: int = 0) -> CMSFConfig:
    """CMSF hyper-parameters for one of the synthetic evaluation cities.

    The per-city choices follow the paper's Section VI-A with K and tau
    rescaled to the synthetic city sizes (the synthetic cities have ~1-3k
    regions instead of 60-350k, so the cluster counts shrink accordingly
    while preserving the relative ordering between cities).
    """
    scale = ScaleSettings.current()
    common = dict(
        hidden_dim=32,
        image_reduce_dim=64,
        classifier_hidden=16,
        maga_layers=2,
        learning_rate=1e-3,
        lr_decay=0.001,
        dropout=0.2,
        master_epochs=scale.cmsf_master_epochs,
        slave_epochs=scale.cmsf_slave_epochs,
        seed=seed,
    )
    key = city.lower()
    if key == "shenzhen":
        return CMSFConfig(num_clusters=20, assignment_temperature=0.1, maga_heads=2,
                          cluster_aggregation="sum", lambda_weight=0.01, **common)
    if key == "fuzhou":
        return CMSFConfig(num_clusters=30, assignment_temperature=0.05, maga_heads=2,
                          cluster_aggregation="sum", lambda_weight=0.1, **common)
    if key == "beijing":
        return CMSFConfig(num_clusters=30, assignment_temperature=0.1, maga_heads=1,
                          cluster_aggregation="concat", lambda_weight=0.001, **common)
    # sensible defaults for the small test/example cities
    return CMSFConfig(num_clusters=16, assignment_temperature=0.1, maga_heads=2,
                      cluster_aggregation="sum", lambda_weight=0.1, **common)


#: Cities evaluated in the paper, in the order used by the tables.
EVALUATION_CITIES: Sequence[str] = ("fuzhou", "shenzhen", "beijing")

#: Cities used by the efficiency comparison (Table III reports Shenzhen and
#: Fuzhou only).
EFFICIENCY_CITIES: Sequence[str] = ("shenzhen", "fuzhou")
