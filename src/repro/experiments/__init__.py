"""``repro.experiments`` — per-table / per-figure experiment runners.

One function per experiment of the paper's evaluation section:

* :func:`run_table1` — dataset statistics,
* :func:`run_table2` — detection performance comparison,
* :func:`run_table3` — efficiency comparison,
* :func:`run_fig5a` / :func:`run_fig5b` — component / data ablations,
* :func:`run_fig6a` / :func:`run_fig6b` / :func:`run_fig6c` — parameter and
  label-ratio sensitivity,
* :func:`run_fig7` — case study.

See :mod:`repro.experiments.settings` for the ``REPRO_SCALE`` switch that
controls the protocol size (quick vs full).
"""

from .datasets import (clear_caches, load_city, load_graph, load_graph_variant,
                       table1_statistics)
from .runners import (ascii_detection_map, run_fig5a, run_fig5b, run_fig6a,
                      run_fig6b, run_fig6c, run_fig7, run_table1, run_table2,
                      run_table3)
from .settings import (EFFICIENCY_CITIES, EVALUATION_CITIES, PAPER_CITY_SETTINGS,
                       ScaleSettings, city_cmsf_config, run_scale)

__all__ = [
    "load_city",
    "load_graph",
    "load_graph_variant",
    "table1_statistics",
    "clear_caches",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig5a",
    "run_fig5b",
    "run_fig6a",
    "run_fig6b",
    "run_fig6c",
    "run_fig7",
    "ascii_detection_map",
    "ScaleSettings",
    "city_cmsf_config",
    "run_scale",
    "EVALUATION_CITIES",
    "EFFICIENCY_CITIES",
    "PAPER_CITY_SETTINGS",
]
