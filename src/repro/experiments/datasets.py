"""Dataset construction and caching for the experiment runners.

Every experiment needs the three synthetic evaluation cities and their URGs.
Building a city + URG takes a few seconds, so this module memoises them per
process; benchmarks for different tables/figures then share the same objects.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Dict, Tuple

from ..synth import generate_city
from ..synth.city import SyntheticCity
from ..urg import UrgBuildConfig, build_urg, build_urg_variant
from ..urg.graph import UrbanRegionGraph
from ..urg.image_features import ImageFeatureConfig
from .settings import scaled_city_config


@lru_cache(maxsize=None)
def load_city(name: str, seed: int = None) -> SyntheticCity:
    """Generate (and memoise) the synthetic city for preset ``name``.

    The preset is scaled according to ``REPRO_SCALE`` (see
    :func:`repro.experiments.settings.scaled_city_config`).
    """
    config = scaled_city_config(name)
    if seed is not None:
        config = replace(config, seed=seed)
    return generate_city(config)


#: Block size (in region cells) of the coarse splitting blocks used for the
#: evaluation cities.  The paper uses 10x10 blocks on grids of hundreds of
#: cells per side; the synthetic cities are ~30-50 cells per side, so a 5x5
#: block keeps the number of blocks (and hence the fold granularity)
#: proportionally comparable while still preventing patch-level leakage.
EVALUATION_BLOCK_SIZE = 5


@lru_cache(maxsize=None)
def load_graph(name: str, image_reduce_dim: int = 128) -> UrbanRegionGraph:
    """Build (and memoise) the URG of city preset ``name``.

    The raw simulated VGG features of the city presets are 1024-dimensional;
    for the training stack an unsupervised PCA reduction to
    ``image_reduce_dim`` keeps full-batch training affordable without
    meaningfully changing any comparison (every method sees the same input).
    """
    city = load_city(name)
    config = UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=image_reduce_dim),
                            block_size=EVALUATION_BLOCK_SIZE)
    return build_urg(city, config)


@lru_cache(maxsize=None)
def load_graph_variant(name: str, ablation: str,
                       image_reduce_dim: int = 128) -> UrbanRegionGraph:
    """URG of city ``name`` with one of the Figure 5(b) data ablations."""
    city = load_city(name)
    base = UrgBuildConfig(image=ImageFeatureConfig(reduce_dim=image_reduce_dim),
                          block_size=EVALUATION_BLOCK_SIZE)
    return build_urg_variant(city, ablation, base)


def table1_statistics(cities: Tuple[str, ...] = ("shenzhen", "fuzhou", "beijing")
                      ) -> Dict[str, Dict[str, int]]:
    """Dataset statistics of the synthetic cities (Table I analogue)."""
    stats: Dict[str, Dict[str, int]] = {}
    for name in cities:
        graph = load_graph(name)
        summary = graph.summary()
        stats[name] = {
            "regions": int(summary["regions"]),
            "edges": int(summary["edges"]),
            "uvs": int(summary["uvs"]),
            "non_uvs": int(summary["non_uvs"]),
        }
    return stats


def clear_caches() -> None:
    """Drop every memoised city/graph (useful in tests)."""
    load_city.cache_clear()
    load_graph.cache_clear()
    load_graph_variant.cache_clear()
