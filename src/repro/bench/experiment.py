"""Config-sweep experiment runner over the fleet serving stack.

``repro-uv fleet`` replays one trace against one topology;
:func:`run_experiment` sweeps a grid — fleet size × replication ×
workload trace — and measures every cell the same way:

1. build a **fresh** :class:`~repro.obs.MetricsRegistry` for the cell
   (nothing leaks between cells, and the sweep doubles as a test of the
   registry's injectability);
2. build the fleet — one :class:`~repro.serve.InferenceEngine` per shard
   from the same bundle, all reporting into the cell registry — behind a
   :class:`~repro.serve.FleetRouter`;
3. snapshot the rendered ``/metrics`` text before and after replaying
   the trace with :func:`repro.bench.workload.replay_trace`, and keep
   only the delta (:func:`repro.obs.metrics_delta`), so each cell's
   numbers describe exactly its own traffic;
4. condense the scrape with :func:`summarize_metrics` — request
   latency percentiles read back out of the histogram buckets, cache
   hit rates, failover counts, stream rescore-mode mix.

The report is a plain JSON-serialisable dict (``schema_version`` pinned
by tests) written to ``EXPERIMENT.json`` by the CLI, plus a
human-readable comparison table via :func:`format_experiment_table`.
Scores are also checked bit-identical across cells that replayed the
same trace — the fleet acceptance invariant, now enforced per sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..eval.reporting import format_table
from ..obs import (MetricsRegistry, ParsedMetrics, metrics_delta,
                   parse_prometheus_text)
from .workload import WorkloadTrace, replay_trace, replays_identical

EXPERIMENT_SCHEMA_VERSION = 1

# quantiles reported per cell, in report-key order
_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99))


@dataclass(frozen=True)
class ExperimentConfig:
    """The sweep grid plus the per-cell serving knobs."""

    fleet_sizes: Tuple[int, ...] = (1, 2)
    replications: Tuple[int, ...] = (2,)
    cache_size: int = 8
    incremental: str = "auto"
    verify_identical: bool = True

    def __post_init__(self) -> None:
        if not self.fleet_sizes or min(self.fleet_sizes) < 1:
            raise ValueError("fleet_sizes must be positive integers")
        if not self.replications or min(self.replications) < 1:
            raise ValueError("replications must be positive integers")


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1000.0, 4)


def _rate(part: float, whole: float) -> Optional[float]:
    return round(part / whole, 4) if whole else None


def _latency_summary(parsed: ParsedMetrics, name: str,
                     **labels: str) -> Dict[str, object]:
    count = parsed.total(name + "_count", **labels)
    total = parsed.total(name + "_sum", **labels)
    summary: Dict[str, object] = {
        "count": int(count),
        "mean_ms": _ms(total / count) if count else None,
    }
    for key, q in _QUANTILES:
        summary[key] = _ms(parsed.quantile(name, q, **labels))
    return summary


def summarize_metrics(parsed: ParsedMetrics) -> Dict[str, object]:
    """Condense one scrape (or scrape delta) into headline numbers.

    Works on whatever subset of the ``repro_*`` families is present:
    an in-process fleet has no HTTP samples, a bare engine shard has no
    fleet samples — missing families summarise to zero counts and
    ``None`` percentiles rather than failing.  Shared by the experiment
    runner, ``repro-uv fleet --json`` and the fleet benchmark so all
    three emit the same shape.
    """
    hits = parsed.total("repro_engine_cache_hits_total")
    misses = parsed.total("repro_engine_cache_misses_total")
    ops = sorted(parsed.labels_of("repro_fleet_requests_total", "op"))
    stream_modes = sorted(
        parsed.labels_of("repro_stream_update_seconds_count", "mode"))
    return {
        "http": {
            "requests": int(parsed.total("repro_http_requests_total")),
            "errors": int(parsed.total("repro_http_errors_total")),
            "latency": _latency_summary(parsed,
                                        "repro_http_request_seconds"),
        },
        "fleet": {
            "requests": {op: int(parsed.total("repro_fleet_requests_total",
                                              op=op)) for op in ops},
            "failovers": int(parsed.total("repro_fleet_failovers_total")),
            "shard_failures": int(
                parsed.total("repro_fleet_shard_failures_total")),
            "shards_healthy": int(
                parsed.total("repro_fleet_shard_healthy")),
            "latency": _latency_summary(parsed,
                                        "repro_fleet_request_seconds"),
            "latency_by_op": {
                op: _latency_summary(parsed, "repro_fleet_request_seconds",
                                     op=op) for op in ops},
        },
        "cache": {
            "hits": int(hits),
            "misses": int(misses),
            "hit_rate": _rate(hits, hits + misses),
            "evictions": int(
                parsed.total("repro_engine_cache_evictions_total")),
            "stampedes_avoided": int(
                parsed.total("repro_engine_stampedes_avoided_total")),
            "cold_computes": int(
                parsed.total("repro_engine_cold_compute_seconds_count")),
            "cold_compute": _latency_summary(
                parsed, "repro_engine_cold_compute_seconds"),
        },
        "streams": {
            "updates": int(
                parsed.total("repro_stream_update_seconds_count")),
            "updates_by_mode": {
                mode: int(parsed.total("repro_stream_update_seconds_count",
                                       mode=mode))
                for mode in stream_modes},
            "affected_fraction_p50": parsed.quantile(
                "repro_stream_affected_fraction", 0.5),
        },
    }


def _run_cell(bundle, trace: WorkloadTrace, fleet_size: int,
              replication: int, config: ExperimentConfig):
    """One grid cell: fresh registry, fresh fleet, one replay."""
    # imported here, not at module top: repro.bench must stay importable
    # without dragging the serving stack in for trace-only callers
    from ..serve import EngineShard, FleetRouter, InferenceEngine

    registry = MetricsRegistry()
    shards = [
        EngineShard(
            InferenceEngine.from_bundle(bundle,
                                        cache_size=config.cache_size,
                                        metrics=registry),
            shard_id=f"shard-{i}")
        for i in range(fleet_size)]
    router = FleetRouter(shards, replication=replication,
                         name=f"f{fleet_size}r{replication}",
                         metrics=registry)
    before = parse_prometheus_text(registry.render())
    result = replay_trace(trace, router, collect_stats=False,
                          open_options={"incremental": config.incremental})
    after = parse_prometheus_text(registry.render())
    return result, metrics_delta(before, after)


def run_experiment(bundle, traces: Sequence[WorkloadTrace],
                   config: ExperimentConfig = ExperimentConfig(),
                   model: Optional[str] = None) -> Dict[str, object]:
    """Sweep the grid and return the machine-readable report.

    ``bundle`` is anything :meth:`InferenceEngine.from_bundle` accepts
    (a loaded :class:`~repro.serve.ModelBundle` or a bundle directory).
    Cells that collapse to the same effective topology after clamping
    replication to the fleet size (a 1-shard fleet can only replicate
    once) run once, not once per requested replication.
    """
    if not traces:
        raise ValueError("run_experiment needs at least one trace")
    names = [trace.name for trace in traces]
    if len(set(names)) != len(names):
        raise ValueError(f"trace names must be unique, got {names}")

    cells: List[Dict[str, object]] = []
    baselines: Dict[str, object] = {}
    seen = set()
    for trace in traces:
        for fleet_size in config.fleet_sizes:
            for replication in config.replications:
                effective = min(replication, fleet_size)
                key = (trace.name, fleet_size, effective)
                if key in seen:
                    continue
                seen.add(key)
                result, moved = _run_cell(bundle, trace, fleet_size,
                                          effective, config)
                cell: Dict[str, object] = {
                    "cell": f"{trace.name}/f{fleet_size}r{effective}",
                    "trace": trace.name,
                    "fleet_size": fleet_size,
                    "replication": effective,
                    "replay": result.summary(),
                    "metrics": summarize_metrics(moved),
                }
                if config.verify_identical:
                    baseline = baselines.setdefault(trace.name, result)
                    identical, max_diff = replays_identical(baseline, result)
                    cell["bit_identical_to_baseline"] = bool(identical)
                    cell["max_score_diff"] = float(max_diff)
                cells.append(cell)

    return {
        "schema_version": EXPERIMENT_SCHEMA_VERSION,
        "experiment": "fleet_config_sweep",
        "model": model,
        "grid": {
            "fleet_sizes": sorted(set(config.fleet_sizes)),
            "replications": sorted(set(config.replications)),
            "traces": names,
            "cache_size": config.cache_size,
            "incremental": config.incremental,
        },
        "traces": {trace.name: trace.summary() for trace in traces},
        "cells": cells,
    }


def format_experiment_table(report: Dict[str, object]) -> str:
    """The human-readable per-cell comparison the CLI prints."""
    headers = ["cell", "shards", "repl", "ops/s", "p50 ms", "p95 ms",
               "p99 ms", "hit rate", "failovers", "identical"]
    def fmt(value, pattern="{:.2f}"):
        return "-" if value is None else pattern.format(value)

    rows = []
    for cell in report["cells"]:
        metrics = cell["metrics"]
        latency = metrics["fleet"]["latency"]
        rows.append([
            cell["cell"], cell["fleet_size"], cell["replication"],
            fmt(cell["replay"]["ops_per_second"], "{:.1f}"),
            fmt(latency["p50_ms"]), fmt(latency["p95_ms"]),
            fmt(latency["p99_ms"]),
            fmt(metrics["cache"]["hit_rate"]),
            metrics["fleet"]["failovers"],
            {True: "yes", False: "NO"}.get(
                cell.get("bit_identical_to_baseline"), "-"),
        ])
    return format_table(headers, rows,
                        title=f"fleet config sweep ({len(rows)} cells)")
