"""``repro.bench`` — deterministic workload generation and replay.

The fleet serving layer (:mod:`repro.serve.fleet`) is only trustworthy if
the *same* traffic can be thrown at different fleet topologies and the
answers compared bit-for-bit.  This subpackage provides that traffic:

* :mod:`repro.bench.workload` — a seeded generator of mixed
  ``score`` / ``update`` / ``evict`` op sequences over evolving cities
  (:class:`WorkloadTrace`), an npz/json codec so traces can be recorded
  and shipped, and a replayer that drives any
  :class:`~repro.serve.fleet.ShardBackend`-shaped target (a single
  in-process shard, a remote server, or a whole
  :class:`~repro.serve.fleet.FleetRouter`) and collects the float64 score
  trajectory for comparison;
* :mod:`repro.bench.experiment` — a config-sweep runner replaying the
  same traces across a fleet-size × replication grid, measuring each
  cell through a fresh :mod:`repro.obs` metrics registry (latency
  percentiles from histogram buckets, cache hit rates, failovers) and
  emitting a schema-pinned ``EXPERIMENT.json`` report;
* :mod:`repro.bench.load` — an open-loop concurrent load driver
  (Locust-style): N worker threads spread across the trace's cities at a
  configurable arrival rate, warm-up exclusion, p50/p95/p99 latency and
  saturation throughput per fleet size, digest-verified against the
  serial 1-shard oracle and emitted as schema-pinned ``BENCH_load.json``.
"""

from .experiment import (EXPERIMENT_SCHEMA_VERSION, ExperimentConfig,
                         format_experiment_table, run_experiment,
                         summarize_metrics)
from .load import (LOAD_SCHEMA_VERSION, LoadConfig, LoadResult, OpRecord,
                   format_load_report, load_matches_serial_oracle, run_load)
from .workload import (ReplayResult, RolloutReplayResult, WorkloadConfig,
                       WorkloadOp, WorkloadTrace, derive_cities,
                       generate_workload, load_trace, replay_rollout_trace,
                       replay_trace, replays_identical, resume_point,
                       resumed_tail_identical, rollout_replays_identical,
                       save_trace, score_digest, trace_from_bytes,
                       trace_from_payload, trace_to_bytes, trace_to_payload,
                       with_rollout)

__all__ = [
    "WorkloadOp",
    "WorkloadConfig",
    "WorkloadTrace",
    "generate_workload",
    "derive_cities",
    "trace_to_bytes",
    "trace_from_bytes",
    "trace_to_payload",
    "trace_from_payload",
    "save_trace",
    "load_trace",
    "replay_trace",
    "replays_identical",
    "resume_point",
    "resumed_tail_identical",
    "score_digest",
    "ReplayResult",
    "with_rollout",
    "replay_rollout_trace",
    "RolloutReplayResult",
    "rollout_replays_identical",
    "LOAD_SCHEMA_VERSION",
    "LoadConfig",
    "LoadResult",
    "OpRecord",
    "run_load",
    "load_matches_serial_oracle",
    "format_load_report",
    "ExperimentConfig",
    "EXPERIMENT_SCHEMA_VERSION",
    "run_experiment",
    "summarize_metrics",
    "format_experiment_table",
]
