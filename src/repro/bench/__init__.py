"""``repro.bench`` — deterministic workload generation and replay.

The fleet serving layer (:mod:`repro.serve.fleet`) is only trustworthy if
the *same* traffic can be thrown at different fleet topologies and the
answers compared bit-for-bit.  This subpackage provides that traffic:

* :mod:`repro.bench.workload` — a seeded generator of mixed
  ``score`` / ``update`` / ``evict`` op sequences over evolving cities
  (:class:`WorkloadTrace`), an npz/json codec so traces can be recorded
  and shipped, and a replayer that drives any
  :class:`~repro.serve.fleet.ShardBackend`-shaped target (a single
  in-process shard, a remote server, or a whole
  :class:`~repro.serve.fleet.FleetRouter`) and collects the float64 score
  trajectory for comparison;
* :mod:`repro.bench.experiment` — a config-sweep runner replaying the
  same traces across a fleet-size × replication grid, measuring each
  cell through a fresh :mod:`repro.obs` metrics registry (latency
  percentiles from histogram buckets, cache hit rates, failovers) and
  emitting a schema-pinned ``EXPERIMENT.json`` report.
"""

from .experiment import (EXPERIMENT_SCHEMA_VERSION, ExperimentConfig,
                         format_experiment_table, run_experiment,
                         summarize_metrics)
from .workload import (ReplayResult, WorkloadConfig, WorkloadOp,
                       WorkloadTrace, derive_cities, generate_workload,
                       load_trace, replay_trace, replays_identical,
                       resume_point, resumed_tail_identical,
                       save_trace, trace_from_bytes, trace_from_payload,
                       trace_to_bytes, trace_to_payload)

__all__ = [
    "WorkloadOp",
    "WorkloadConfig",
    "WorkloadTrace",
    "generate_workload",
    "derive_cities",
    "trace_to_bytes",
    "trace_from_bytes",
    "trace_to_payload",
    "trace_from_payload",
    "save_trace",
    "load_trace",
    "replay_trace",
    "replays_identical",
    "resume_point",
    "resumed_tail_identical",
    "ReplayResult",
    "ExperimentConfig",
    "EXPERIMENT_SCHEMA_VERSION",
    "run_experiment",
    "summarize_metrics",
    "format_experiment_table",
]
