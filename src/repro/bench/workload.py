"""Seeded workload traces: generate, record, replay, compare.

A :class:`WorkloadTrace` is a *frozen unit of traffic*: a set of named
initial city graphs plus an ordered list of ``score`` / ``update`` /
``evict`` (and optionally ``rollout``) ops, where every update carries
the concrete :class:`~repro.stream.delta.GraphDelta` it applies.  Because the deltas
are materialised at generation time (not re-drawn at replay time), the
same trace replayed against *any* backend topology — one in-process
engine, a 3-shard fleet, a fleet with a shard dying mid-run — issues the
identical request sequence, and deterministic scoring makes the float64
score trajectories comparable bit-for-bit
(:func:`replays_identical`).

Generation (:func:`generate_workload`) draws every decision — which city
an op hits, which op kind fires, which evolution scenario produces the
next delta — from one ``numpy`` generator seeded by
:class:`WorkloadConfig.seed`, so a ``(graphs, config)`` pair always
yields the same trace.  Deltas are produced with
:func:`repro.synth.evolution.generate_step` against each city's *current*
state, so a trace's updates always apply cleanly in order.

Traces record to an ``.npz`` archive (:func:`trace_to_bytes` /
:func:`save_trace`; graphs and deltas nest as their own npz archives) and
to a JSON wire payload (:func:`trace_to_payload`, reusing
:mod:`repro.serve.wire` encodings) — both lossless, both covered by
round-trip property tests.

Replay (:func:`replay_trace`) drives anything speaking the
:class:`~repro.serve.fleet.ShardBackend` stream protocol.  It is
deliberately sequential: deterministic op order is the whole point (the
concurrency soak tests drive the router directly instead).
"""

from __future__ import annotations

import hashlib
import io
import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..data.graph_io import graph_from_bytes, graph_to_bytes
from ..stream.delta import GraphDelta, delta_from_bytes, delta_to_bytes
from ..synth.evolution import EvolutionConfig, generate_step
from ..urg.graph import UrbanRegionGraph

__all__ = [
    "WorkloadOp", "WorkloadConfig", "WorkloadTrace",
    "generate_workload", "derive_cities",
    "trace_to_bytes", "trace_from_bytes",
    "trace_to_payload", "trace_from_payload",
    "save_trace", "load_trace",
    "replay_trace", "replays_identical", "ReplayResult",
    "resume_point", "resumed_tail_identical",
    "score_digest",
    "with_rollout", "replay_rollout_trace", "RolloutReplayResult",
    "rollout_replays_identical",
]

#: archive/payload schema marker, checked on decode
TRACE_FORMAT_VERSION = 1

#: the op kinds a trace may contain.  ``rollout`` is a control op: at
#: that point in the trace a staged canary rollout is started
#: (:func:`replay_rollout_trace`); plain :func:`replay_trace` treats it
#: as a no-op so rollout traces stay replayable on any backend.
OP_KINDS = ("score", "update", "evict", "rollout")

#: the op kinds the generator draws (weights map 1:1 onto these;
#: ``rollout`` ops are inserted deliberately via :func:`with_rollout`,
#: never drawn at random)
_GENERATED_OPS = ("score", "update", "evict")


@dataclass(frozen=True)
class WorkloadOp:
    """One request in a workload trace."""

    op: str
    city: str
    delta: Optional[GraphDelta] = None

    def __post_init__(self) -> None:
        if self.op not in OP_KINDS:
            raise ValueError(f"op must be one of {OP_KINDS}, got {self.op!r}")
        if not self.city or not isinstance(self.city, str):
            raise ValueError(f"city must be a non-empty string, got "
                             f"{self.city!r}")
        if (self.op == "update") != (self.delta is not None):
            raise ValueError("exactly the 'update' ops carry a delta "
                             f"(op={self.op!r}, delta "
                             f"{'present' if self.delta is not None else 'missing'})")


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the workload generator.

    The three weights set the op mix (normalised internally); scenarios
    cycle per city, so each city's update stream interleaves feature-only
    and topology deltas the same way :func:`generate_evolution` does.
    """

    ops: int = 32
    seed: int = 0
    score_weight: float = 0.6
    update_weight: float = 0.3
    evict_weight: float = 0.1
    scenarios: Tuple[str, ...] = ("poi_churn", "imagery_refresh",
                                  "road_rewiring", "region_growth")
    #: evolution knobs for the update deltas (its own ``steps``/
    #: ``scenarios``/``seed`` fields are ignored — this module drives the
    #: stepping, the scenario cycle and the RNG)
    evolution: EvolutionConfig = field(default_factory=EvolutionConfig)

    def __post_init__(self) -> None:
        if self.ops < 0:
            raise ValueError("ops must be non-negative")
        weights = (self.score_weight, self.update_weight, self.evict_weight)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("op weights must be non-negative with a "
                             f"positive sum, got {weights}")
        if not self.scenarios:
            raise ValueError("scenarios must not be empty")
        # delegate scenario-name validation to EvolutionConfig
        replace(self.evolution, scenarios=tuple(self.scenarios))

    @property
    def weights(self) -> np.ndarray:
        raw = np.asarray([self.score_weight, self.update_weight,
                          self.evict_weight], dtype=np.float64)
        return raw / raw.sum()


@dataclass
class WorkloadTrace:
    """A frozen, replayable unit of traffic."""

    cities: "OrderedDict[str, UrbanRegionGraph]"
    ops: List[WorkloadOp]
    seed: int = 0
    name: str = "workload"
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.cities = OrderedDict(self.cities)
        unknown = {op.city for op in self.ops} - set(self.cities)
        if unknown:
            raise ValueError(f"ops reference cities not in the trace: "
                             f"{sorted(unknown)}")

    def __len__(self) -> int:
        return len(self.ops)

    def op_counts(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in OP_KINDS}
        for op in self.ops:
            counts[op.op] += 1
        return counts

    def summary(self) -> Dict[str, object]:
        return {"name": self.name, "seed": self.seed,
                "cities": len(self.cities), "ops": len(self.ops),
                **self.op_counts()}


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------
def derive_cities(graph: UrbanRegionGraph, count: int,
                  seed: int = 0,
                  config: Optional[EvolutionConfig] = None,
                  ) -> "OrderedDict[str, UrbanRegionGraph]":
    """Deterministic multi-city variants of one base graph.

    City 0 is the base graph itself; each further city applies a seeded
    road-rewiring plus a POI-churn delta, so the variants keep the base
    feature dimensionality (they score through the same model bundle) but
    differ *structurally* — distinct
    :meth:`~repro.urg.graph.UrbanRegionGraph.structural_fingerprint`
    routing keys, so a fleet spreads them across shards.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    config = config or EvolutionConfig()
    rng = np.random.default_rng(seed)
    base_name = graph.name.lower() or "city"
    cities: "OrderedDict[str, UrbanRegionGraph]" = OrderedDict()
    cities[f"{base_name}-0"] = graph
    for i in range(1, count):
        variant = graph
        for kind in ("road_rewiring", "poi_churn"):
            delta = generate_step(variant, kind, config, rng)
            if delta is not None:
                variant = delta.apply(variant)
        cities[f"{base_name}-{i}"] = variant
    return cities


def generate_workload(graphs: Mapping[str, UrbanRegionGraph],
                      config: Optional[WorkloadConfig] = None,
                      name: Optional[str] = None) -> WorkloadTrace:
    """Generate a deterministic mixed-op trace over ``graphs``.

    Every op picks a city uniformly and an op kind by the configured
    weights.  Updates materialise the next delta of the city's scenario
    cycle against its *current* (already-updated) state; a scenario that
    cannot fire falls through to the next one in the cycle, and an update
    with no applicable scenario degrades to a score op — deterministically,
    so the trace never depends on replay-time state.
    """
    config = config or WorkloadConfig()
    names = sorted(graphs)
    if not names:
        raise ValueError("generate_workload needs at least one city graph")
    evolution = replace(config.evolution, scenarios=tuple(config.scenarios))
    rng = np.random.default_rng(config.seed)
    weights = config.weights
    current: Dict[str, UrbanRegionGraph] = {n: graphs[n] for n in names}
    cycle_at: Dict[str, int] = {n: 0 for n in names}
    ops: List[WorkloadOp] = []
    for _ in range(config.ops):
        city = names[int(rng.integers(len(names)))]
        kind = _GENERATED_OPS[int(rng.choice(len(_GENERATED_OPS),
                                             p=weights))]
        if kind == "update":
            delta = None
            for probe in range(len(config.scenarios)):
                scenario = config.scenarios[
                    (cycle_at[city] + probe) % len(config.scenarios)]
                delta = generate_step(current[city], scenario, evolution, rng)
                if delta is not None:
                    break
            cycle_at[city] += 1
            if delta is None:
                kind = "score"
            else:
                current[city] = delta.apply(current[city])
                ops.append(WorkloadOp("update", city, delta))
                continue
        ops.append(WorkloadOp(kind, city))
    trace = WorkloadTrace(
        cities=OrderedDict((n, graphs[n]) for n in names),
        ops=ops, seed=config.seed,
        name=name or f"workload-seed{config.seed}",
        meta={"scenarios": list(config.scenarios),
              "weights": [float(w) for w in weights],
              "requested_ops": config.ops})
    trace.meta.update(trace.op_counts())
    return trace


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
def trace_to_bytes(trace: WorkloadTrace) -> bytes:
    """Serialise a trace to an in-memory ``.npz`` archive.

    Graphs and deltas nest as their own npz archives (bit-exact float64
    round-trips via :func:`graph_to_bytes` / :func:`delta_to_bytes`); op
    order, city order and metadata live in a JSON ``meta`` member.
    """
    meta = {
        "format_version": TRACE_FORMAT_VERSION,
        "name": trace.name,
        "seed": int(trace.seed),
        "meta": trace.meta,
        "cities": list(trace.cities),
        "ops": [{"op": op.op, "city": op.city,
                 "delta": (f"delta_{i}" if op.delta is not None else None)}
                for i, op in enumerate(trace.ops)],
    }
    arrays: Dict[str, np.ndarray] = {
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"),
                              dtype=np.uint8)}
    for j, graph in enumerate(trace.cities.values()):
        arrays[f"city_{j}"] = np.frombuffer(graph_to_bytes(graph),
                                            dtype=np.uint8)
    for i, op in enumerate(trace.ops):
        if op.delta is not None:
            arrays[f"delta_{i}"] = np.frombuffer(delta_to_bytes(op.delta),
                                                 dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def trace_from_bytes(data: bytes) -> WorkloadTrace:
    """Rebuild a trace from :func:`trace_to_bytes` output."""
    try:
        archive = np.load(io.BytesIO(data))
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
    except Exception as error:
        # np.load's own ValueError on garbage bytes talks about pickled
        # data and allow_pickle — wrap it too, not just non-ValueErrors
        raise ValueError(f"invalid trace archive: {error}") from error
    if meta.get("format_version") != TRACE_FORMAT_VERSION:
        raise ValueError("unsupported trace archive version %r (expected %d)"
                         % (meta.get("format_version"), TRACE_FORMAT_VERSION))
    try:
        cities: "OrderedDict[str, UrbanRegionGraph]" = OrderedDict()
        for j, city_name in enumerate(meta["cities"]):
            cities[str(city_name)] = graph_from_bytes(
                bytes(archive[f"city_{j}"]))
        ops: List[WorkloadOp] = []
        for entry in meta["ops"]:
            delta = None
            if entry.get("delta") is not None:
                delta = delta_from_bytes(bytes(archive[str(entry["delta"])]))
            ops.append(WorkloadOp(str(entry["op"]), str(entry["city"]),
                                  delta))
    except ValueError:
        raise
    except Exception as error:
        raise ValueError(f"malformed trace archive: {error}") from error
    return WorkloadTrace(cities=cities, ops=ops, seed=int(meta.get("seed", 0)),
                         name=str(meta.get("name", "workload")),
                         meta=dict(meta.get("meta") or {}))


def trace_to_payload(trace: WorkloadTrace,
                     encoding: str = "npz") -> Dict[str, object]:
    """Encode a trace as a JSON-serialisable wire payload.

    ``'npz'`` base64-armours the whole archive into one field; ``'json'``
    nests per-city graph payloads and per-op delta payloads (themselves
    ``encoding='json'``), human-readable and still float64-exact.
    """
    import base64
    from ..serve.wire import WIRE_VERSION, delta_to_payload, graph_to_payload
    if encoding == "npz":
        return {"wire_version": WIRE_VERSION, "encoding": "npz",
                "trace_base64": base64.b64encode(
                    trace_to_bytes(trace)).decode("ascii")}
    if encoding == "json":
        return {
            "wire_version": WIRE_VERSION,
            "encoding": "json",
            "name": trace.name,
            "seed": int(trace.seed),
            "meta": dict(trace.meta),
            "cities": {name: graph_to_payload(graph, encoding="json")
                       for name, graph in trace.cities.items()},
            "city_order": list(trace.cities),
            "ops": [{"op": op.op, "city": op.city,
                     "delta": (delta_to_payload(op.delta, encoding="json")
                               if op.delta is not None else None)}
                    for op in trace.ops],
        }
    raise ValueError(f"unknown trace encoding {encoding!r} "
                     "(use 'npz' or 'json')")


def trace_from_payload(payload: Dict[str, object]) -> WorkloadTrace:
    """Decode a payload produced by :func:`trace_to_payload`."""
    import base64
    from ..serve.wire import WIRE_VERSION, delta_from_payload, graph_from_payload
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    if payload.get("wire_version") != WIRE_VERSION:
        raise ValueError("unsupported trace wire version %r (expected %d)"
                         % (payload.get("wire_version"), WIRE_VERSION))
    encoding = payload.get("encoding")
    if encoding == "npz":
        try:
            raw = base64.b64decode(payload["trace_base64"], validate=True)
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"invalid trace_base64 payload: {error}") from error
        return trace_from_bytes(raw)
    if encoding == "json":
        try:
            city_payloads = payload["cities"]
            order = payload.get("city_order") or list(city_payloads)
            cities: "OrderedDict[str, UrbanRegionGraph]" = OrderedDict(
                (str(name), graph_from_payload(city_payloads[name]))
                for name in order)
            ops = []
            for entry in payload["ops"]:
                delta = None
                if entry.get("delta") is not None:
                    delta = delta_from_payload(entry["delta"])
                ops.append(WorkloadOp(str(entry["op"]), str(entry["city"]),
                                      delta))
        except ValueError:
            raise
        except Exception as error:
            raise ValueError(f"malformed json trace payload: {error}") from error
        return WorkloadTrace(cities=cities, ops=ops,
                             seed=int(payload.get("seed", 0)),
                             name=str(payload.get("name", "workload")),
                             meta=dict(payload.get("meta") or {}))
    raise ValueError(f"unknown trace encoding {encoding!r}")


def save_trace(trace: WorkloadTrace, path) -> str:
    """Record a trace to disk (npz archive); returns the path written."""
    data = trace_to_bytes(trace)
    with open(path, "wb") as handle:
        handle.write(data)
    return str(path)


def load_trace(path) -> WorkloadTrace:
    """Load a trace recorded by :func:`save_trace`."""
    with open(path, "rb") as handle:
        return trace_from_bytes(handle.read())


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def score_digest(probabilities) -> str:
    """Canonical sha256 of a float64 score vector.

    Bit-exact: two score vectors digest equal iff their float64 bytes are
    identical, which is exactly the fleet's bit-identity invariant.  Used
    by the digest replay mode (``keep_scores=False``) and the concurrent
    load driver to verify trajectories without retaining O(ops x N)
    arrays.
    """
    array = np.ascontiguousarray(probabilities, dtype=np.float64)
    return hashlib.sha256(array.tobytes()).hexdigest()


@dataclass
class ReplayResult:
    """The score trajectory one backend produced for one trace."""

    trace_name: str
    #: initial score vector per city (float64), from the opening rescore
    #: — empty when replayed with ``keep_scores=False`` (digest mode)
    opening_scores: "OrderedDict[str, np.ndarray]"
    #: one entry per op: the float64 score vector for score/update ops,
    #: None for evict ops (and updates replayed with rescore=False) —
    #: all None when replayed with ``keep_scores=False``
    scores: List[Optional[np.ndarray]]
    op_kinds: List[str]
    elapsed_s: float
    #: backend stats snapshot taken right after the last op
    stats: Optional[Dict[str, object]] = None
    #: sha256 per opening score vector — always populated (digests cost
    #: one hash per op, not O(N) retained memory)
    opening_digests: "OrderedDict[str, str]" = field(
        default_factory=OrderedDict)
    #: one entry per op: sha256 of the score vector where one was
    #: produced, None otherwise — aligned with ``scores``
    score_digests: List[Optional[str]] = field(default_factory=list)

    @property
    def completed_ops(self) -> int:
        return len(self.scores)

    @property
    def ops_per_second(self) -> float:
        return self.completed_ops / self.elapsed_s if self.elapsed_s else 0.0

    def summary(self) -> Dict[str, object]:
        return {"trace": self.trace_name, "ops": self.completed_ops,
                "cities": len(self.opening_digests or self.opening_scores),
                "elapsed_s": round(self.elapsed_s, 3),
                "ops_per_second": round(self.ops_per_second, 2)}


def replay_trace(trace: WorkloadTrace, backend,
                 rescore_updates: bool = True,
                 open_options: Optional[Dict[str, object]] = None,
                 collect_stats: bool = True,
                 start_at: int = 0,
                 open_cities: bool = True,
                 keep_scores: bool = True) -> ReplayResult:
    """Drive ``trace`` against ``backend`` and collect the score trajectory.

    ``backend`` is anything speaking the
    :class:`~repro.serve.fleet.ShardBackend` stream protocol — a single
    :class:`~repro.serve.fleet.EngineShard` (the oracle), a
    :class:`~repro.serve.fleet.RemoteShard`, or a whole
    :class:`~repro.serve.fleet.FleetRouter`.  Every city is opened first
    (with an eager rescore, so the opening scores are comparable too),
    then the ops run strictly in trace order.

    ``start_at`` / ``open_cities=False`` support *resuming* a trace on a
    restored backend (e.g. after ``FleetRouter.restore()``): the first
    ``start_at`` ops are skipped and the cities are assumed already open
    at the state those ops produced — use :func:`resume_point` to derive
    the index from the restored per-city versions.  The returned
    ``opening_scores`` are empty when ``open_cities`` is False.

    ``keep_scores=False`` switches to *digest mode*: the float64 arrays
    are hashed (:func:`score_digest`) and dropped instead of retained,
    so a long trace replays in O(1) score memory instead of O(ops x N).
    :func:`replays_identical` compares digests whenever either side lacks
    the arrays, so digest replays verify bit-identity all the same.
    """
    if not 0 <= start_at <= len(trace.ops):
        raise ValueError(f"start_at must be in [0, {len(trace.ops)}], "
                         f"got {start_at}")
    start = time.perf_counter()
    opening: "OrderedDict[str, np.ndarray]" = OrderedDict()
    opening_digests: "OrderedDict[str, str]" = OrderedDict()
    if open_cities:
        for name, graph in trace.cities.items():
            payload = backend.open_stream(name, graph, rescore=True,
                                          **(open_options or {}))
            vector = np.asarray(payload["score"]["probabilities"],
                                dtype=np.float64)
            opening_digests[name] = score_digest(vector)
            if keep_scores:
                opening[name] = vector
    scores: List[Optional[np.ndarray]] = []
    digests: List[Optional[str]] = []

    def record(probabilities) -> None:
        if probabilities is None:
            scores.append(None)
            digests.append(None)
            return
        vector = np.asarray(probabilities, dtype=np.float64)
        digests.append(score_digest(vector))
        scores.append(vector if keep_scores else None)

    for op in trace.ops[start_at:]:
        if op.op == "score":
            payload = backend.score_stream(op.city)
            record(payload["probabilities"])
        elif op.op == "update":
            payload = backend.update_stream(op.city, op.delta,
                                            rescore=rescore_updates)
            record(payload["score"]["probabilities"]
                   if rescore_updates else None)
        elif op.op == "evict":
            backend.evict_stream(op.city)
            record(None)
        else:  # rollout — a control marker; plain replay skips it so
            # rollout traces stay replayable on any backend
            record(None)
    elapsed = time.perf_counter() - start
    stats = None
    if collect_stats:
        try:
            stats = backend.stats()
        except Exception:
            stats = None
    return ReplayResult(trace_name=trace.name, opening_scores=opening,
                        scores=scores,
                        op_kinds=[op.op for op in trace.ops[start_at:]],
                        elapsed_s=elapsed, stats=stats,
                        opening_digests=opening_digests,
                        score_digests=digests)


def resume_point(trace: WorkloadTrace,
                 versions: Mapping[str, int]) -> int:
    """The op index a restored backend should resume ``trace`` at.

    ``versions`` maps city name → restored stream version (the number of
    *updates* the durable history contains — e.g. from
    ``FleetRouter.restore()`` or ``FleetRouter.cities()``).  Returns the
    smallest index ``i`` such that the update ops among ``trace.ops[:i]``
    reproduce exactly those per-city counts; score/evict ops at the
    boundary are replayed (re-running a read is harmless and keeps the
    resumed trajectory aligned with the full one).  Raises ``ValueError``
    when no prefix matches — the trace and the durable history disagree.
    """
    counts = {name: 0 for name in trace.cities}
    target = {name: int(versions.get(name, 0)) for name in trace.cities}
    index = 0
    while counts != target:
        if index >= len(trace.ops):
            raise ValueError(
                f"trace {trace.name!r} has no prefix with update counts "
                f"{target} (reached {counts}) — restored state does not "
                "come from this trace")
        op = trace.ops[index]
        if op.op == "update":
            if counts.get(op.city, 0) >= target.get(op.city, 0):
                raise ValueError(
                    f"trace {trace.name!r} update #{index} for city "
                    f"{op.city!r} overshoots restored version "
                    f"{target.get(op.city, 0)} — restored state does not "
                    "come from this trace")
            counts[op.city] += 1
        index += 1
    return index


class _ScoreComparer:
    """Pairwise score comparison that degrades from arrays to digests.

    When both sides retained the float64 arrays the comparison reports
    ``max_abs_difference`` exactly; when either side is a digest replay
    (``keep_scores=False``) the digests decide bit-identity and a
    mismatch reports ``max_diff = nan`` (the magnitude is unknowable
    from hashes alone).
    """

    def __init__(self) -> None:
        self.identical = True
        self.max_diff = 0.0
        self._digest_mismatch = False

    def compare(self, left, right, left_digest, right_digest,
                label: str) -> None:
        if left is not None and right is not None:
            if left.shape != right.shape:
                raise ValueError(f"{label}: score shapes differ "
                                 f"({left.shape} vs {right.shape})")
            if not np.array_equal(left, right):
                self.identical = False
                self.max_diff = max(self.max_diff,
                                    float(np.max(np.abs(left - right))))
            return
        if left_digest is not None and right_digest is not None:
            if left_digest != right_digest:
                self.identical = False
                self._digest_mismatch = True
            return
        raise ValueError(f"{label}: neither arrays nor digests available "
                         "on both sides — replays not comparable")

    def result(self) -> Tuple[bool, float]:
        if self._digest_mismatch and self.max_diff == 0.0:
            return self.identical, float("nan")
        return self.identical, self.max_diff


def _op_scored(result: ReplayResult, index: int) -> bool:
    """Whether op ``index`` produced a score (array or digest)."""
    if index < len(result.score_digests) and \
            result.score_digests[index] is not None:
        return True
    return result.scores[index] is not None


def _digest_at(result: ReplayResult, index: int) -> Optional[str]:
    if index < len(result.score_digests):
        return result.score_digests[index]
    return None


def resumed_tail_identical(full: ReplayResult, resumed: ReplayResult,
                           start_at: int) -> Tuple[bool, float]:
    """Compare a resumed replay against the tail of an uninterrupted one.

    ``full`` is a complete replay of the trace (the oracle), ``resumed``
    a replay with ``start_at=start_at, open_cities=False`` on a restored
    backend.  Returns ``(bit_identical, max_abs_difference)`` over the
    overlapping ops, with the same misalignment errors as
    :func:`replays_identical`.  Digest replays compare by hash.
    """
    if not 0 <= start_at <= len(full.scores):
        raise ValueError(f"start_at {start_at} outside the full replay's "
                         f"{len(full.scores)} ops")
    if full.op_kinds[start_at:] != resumed.op_kinds:
        raise ValueError("resumed replay ran different ops than the "
                         "oracle's tail — wrong start_at?")
    comparer = _ScoreComparer()
    for i in range(len(resumed.scores)):
        if _op_scored(full, start_at + i) != _op_scored(resumed, i):
            raise ValueError(f"tail op {i}: one replay scored, the other "
                             "did not")
        if not _op_scored(resumed, i):
            continue
        comparer.compare(full.scores[start_at + i], resumed.scores[i],
                         _digest_at(full, start_at + i),
                         _digest_at(resumed, i), f"tail op {i}")
    return comparer.result()


def replays_identical(a: ReplayResult, b: ReplayResult) -> Tuple[bool, float]:
    """Compare two replays of the *same* trace.

    Returns ``(bit_identical, max_abs_difference)`` across the opening
    scores and every per-op score vector.  Misaligned replays (different
    op counts, different cities, a score where the other has None) raise
    ``ValueError`` — that is a harness bug, not a numeric difference.

    Works across replay modes: when either side replayed with
    ``keep_scores=False`` the sha256 digests decide bit-identity (and a
    mismatch reports ``max_diff = nan``, since hashes carry no magnitude).
    """
    a_cities = list(a.opening_digests) or list(a.opening_scores)
    b_cities = list(b.opening_digests) or list(b.opening_scores)
    if a_cities != b_cities:
        raise ValueError("replays opened different city sets: "
                         f"{a_cities} vs {b_cities}")
    if a.op_kinds != b.op_kinds or len(a.scores) != len(b.scores):
        raise ValueError("replays ran different op sequences — are they "
                         "from the same trace?")
    comparer = _ScoreComparer()
    for name in a_cities:
        comparer.compare(a.opening_scores.get(name),
                         b.opening_scores.get(name),
                         a.opening_digests.get(name),
                         b.opening_digests.get(name), f"opening[{name}]")
    for i in range(len(a.scores)):
        if _op_scored(a, i) != _op_scored(b, i):
            raise ValueError(f"op {i}: one replay scored, the other did not")
        if _op_scored(a, i):
            comparer.compare(a.scores[i], b.scores[i], _digest_at(a, i),
                             _digest_at(b, i), f"op[{i}]")
    return comparer.result()


# ----------------------------------------------------------------------
# rollout replay
# ----------------------------------------------------------------------
def with_rollout(trace: WorkloadTrace, at: int) -> WorkloadTrace:
    """A copy of ``trace`` with a ``rollout`` control op inserted at
    op index ``at`` — the point where :func:`replay_rollout_trace`
    starts the staged canary rollout."""
    if not 0 <= at <= len(trace.ops):
        raise ValueError(f"at must be in [0, {len(trace.ops)}], got {at}")
    first_city = next(iter(trace.cities))
    ops = list(trace.ops)
    ops.insert(at, WorkloadOp("rollout", first_city))
    return WorkloadTrace(cities=OrderedDict(trace.cities), ops=ops,
                         seed=trace.seed, name=f"{trace.name}+rollout@{at}",
                         meta={**trace.meta, "rollout_at": int(at)})


@dataclass
class RolloutReplayResult(ReplayResult):
    """A :class:`ReplayResult` plus the rollout's decision record.

    ``decisions`` is the controller's per-request canary log (stream,
    canary flag, stage, state — in arrival order) and
    ``rollout_status`` its final status snapshot; together with the
    score trajectory they are what two replays of the same trace must
    reproduce bit-for-bit."""

    decisions: List[Dict[str, object]] = field(default_factory=list)
    rollout_status: Optional[Dict[str, object]] = None


def replay_rollout_trace(trace: WorkloadTrace, controller,
                         rescore_updates: bool = True,
                         open_options: Optional[Dict[str, object]] = None,
                         collect_stats: bool = True,
                         keep_scores: bool = True,
                         open_cities: bool = True) -> RolloutReplayResult:
    """Replay ``trace`` through a staged canary rollout.

    ``controller`` is a :class:`~repro.serve.rollout.RolloutController`
    whose backend speaks the stream protocol; score ops route through
    :meth:`~repro.serve.rollout.RolloutController.score` (so canary
    streams are hot-swapped and shadow-paired), update/evict ops hit the
    backend directly, and a ``rollout`` op starts the rollout over the
    trace's cities.  Everything that makes the rollout observable — the
    per-request canary decisions and the float64 score trajectory — is
    deterministic: replaying the same trace against an identically
    configured controller twice produces bit-identical results
    (:func:`rollout_replays_identical`).
    """
    backend = controller.backend
    start = time.perf_counter()
    opening: "OrderedDict[str, np.ndarray]" = OrderedDict()
    opening_digests: "OrderedDict[str, str]" = OrderedDict()
    if open_cities:
        for name, graph in trace.cities.items():
            payload = backend.open_stream(name, graph, rescore=True,
                                          **(open_options or {}))
            vector = np.asarray(payload["score"]["probabilities"],
                                dtype=np.float64)
            opening_digests[name] = score_digest(vector)
            if keep_scores:
                opening[name] = vector
    scores: List[Optional[np.ndarray]] = []
    digests: List[Optional[str]] = []

    def record(probabilities) -> None:
        if probabilities is None:
            scores.append(None)
            digests.append(None)
            return
        vector = np.asarray(probabilities, dtype=np.float64)
        digests.append(score_digest(vector))
        scores.append(vector if keep_scores else None)

    for op in trace.ops:
        if op.op == "score":
            payload = controller.score(op.city)
            record(payload["probabilities"])
        elif op.op == "update":
            payload = backend.update_stream(op.city, op.delta,
                                            rescore=rescore_updates)
            record(payload["score"]["probabilities"]
                   if rescore_updates else None)
        elif op.op == "evict":
            backend.evict_stream(op.city)
            record(None)
        else:  # rollout — start the staged rollout here
            controller.start(list(trace.cities))
            record(None)
    elapsed = time.perf_counter() - start
    stats = None
    if collect_stats:
        try:
            stats = backend.stats()
        except Exception:
            stats = None
    return RolloutReplayResult(
        trace_name=trace.name, opening_scores=opening, scores=scores,
        op_kinds=[op.op for op in trace.ops], elapsed_s=elapsed,
        stats=stats, opening_digests=opening_digests, score_digests=digests,
        decisions=[dict(d) for d in controller.decisions],
        rollout_status=controller.status())


def rollout_replays_identical(a: RolloutReplayResult,
                              b: RolloutReplayResult) -> Tuple[bool, float]:
    """:func:`replays_identical` plus routing-decision equality.

    Two rollout replays agree only when the score trajectories are
    bit-identical *and* every per-request canary decision (stream,
    canary flag, stage, state) matches exactly.
    """
    identical, max_diff = replays_identical(a, b)
    if a.decisions != b.decisions:
        return False, max_diff
    return identical, max_diff

