"""Open-loop concurrent load generation for the fleet serving stack.

:func:`replay_trace` is deliberately *sequential* — deterministic op
order is its whole point — which means it can only ever measure routing
overhead, never the parallelism a :class:`~repro.serve.fleet.FleetRouter`
exists for.  This module drives the same deterministic
:class:`~repro.bench.workload.WorkloadTrace` traffic the way a
production scoring service is actually loaded (the Locust model):

* **N worker threads** act as independent clients.  The trace's cities
  are partitioned across the workers, and each worker issues *its*
  cities' ops in trace order — so every per-city request sequence is
  identical to the serial replay's, per-city score trajectories stay
  comparable to a 1-shard oracle (via sha256 digests,
  :func:`~repro.bench.workload.score_digest`), and concurrent clients
  still never race each other on one stream's update chain.
* **Open-loop arrival rate**: with ``arrival_rate`` set, each worker
  fires its ops on a fixed schedule (aggregate rate split evenly across
  workers) regardless of how fast responses come back.  Latency is
  measured from the *scheduled* arrival, not from the moment the worker
  got around to sending — so queueing delay under saturation is charged
  to the service, not silently forgiven (no coordinated omission).
  ``arrival_rate=None`` is closed-loop saturation mode: every worker
  issues back-to-back, measuring the service's ceiling.
* **Warm-up exclusion**: the stream opens plus each worker's first
  ``warmup_ops`` ops prime caches and plans; they are issued and
  digest-verified but excluded from the latency/throughput statistics.
* **Observability**: every op lands in a :mod:`repro.obs` histogram
  (``repro_load_op_seconds{op=...}``) and counter
  (``repro_load_ops_total{op=...,status=...}``) against the registry you
  pass in, so load runs expose the same Prometheus surface as the
  serving stack they exercise.

The headline report — p50/p95/p99 latency plus throughput, overall and
for score ops alone — feeds the schema-pinned ``BENCH_load.json``
(``LOAD_SCHEMA_VERSION``) written by ``benchmarks/test_load_throughput.py``
and the ``repro-uv load`` CLI, both of which gate on score-throughput
scaling across fleet sizes.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..obs import MetricsRegistry
from ..serve.resilience import Deadline, ShedError, deadline_scope
from .workload import ReplayResult, WorkloadTrace, score_digest

__all__ = [
    "LOAD_SCHEMA_VERSION",
    "LoadConfig",
    "OpRecord",
    "LoadResult",
    "run_load",
    "load_matches_serial_oracle",
    "format_load_report",
]

#: schema marker of the ``BENCH_load.json`` report payloads (2: shed /
#: degraded aware — per-op ``status``, goodput + shed counts in the
#: summary, deadline support)
LOAD_SCHEMA_VERSION = 2

#: the latency percentiles every report carries
_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class LoadConfig:
    """Knobs of one open-loop load run."""

    #: concurrent client threads; clamped to the trace's city count so
    #: every worker owns at least one city (cities are never shared —
    #: per-city op order must stay serial for bit-identity)
    workers: int = 4
    #: aggregate target arrival rate in ops/s, split evenly across the
    #: workers; ``None`` (or 0) = closed-loop saturation
    arrival_rate: Optional[float] = None
    #: leading ops per worker excluded from the latency/throughput stats
    warmup_ops: int = 0
    #: forward to ``update_stream`` — ``False`` applies deltas without
    #: scoring (no digest for those ops, same as the serial replayer)
    rescore_updates: bool = True
    #: per-stream options forwarded to every ``open_stream``
    open_options: Optional[Mapping[str, object]] = None
    #: per-op deadline budget (milliseconds): each op runs under a fresh
    #: :func:`~repro.serve.resilience.deadline_scope`, so the budget
    #: propagates through the router (and over the wire) and work past
    #: its deadline is shed before compute.  ``None`` = no deadlines
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.arrival_rate is not None and self.arrival_rate < 0:
            raise ValueError("arrival_rate must be >= 0 (or None for "
                             "saturation mode)")
        if self.warmup_ops < 0:
            raise ValueError("warmup_ops must be >= 0")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None)")

    @property
    def saturation(self) -> bool:
        return not self.arrival_rate

    def to_dict(self) -> Dict[str, object]:
        return {"workers": self.workers,
                "arrival_rate": self.arrival_rate,
                "mode": "saturation" if self.saturation else "open-loop",
                "warmup_ops": self.warmup_ops,
                "rescore_updates": self.rescore_updates,
                "deadline_ms": self.deadline_ms}


@dataclass
class OpRecord:
    """One issued request, as observed by its worker."""

    index: int            # position in the trace's global op order
    city: str
    kind: str             # score | update | evict
    worker: int
    #: seconds from run start the op was *scheduled* to fire (equals
    #: ``started_s`` in saturation mode)
    scheduled_s: float
    started_s: float
    ended_s: float
    warmup: bool
    digest: Optional[str] = None
    error: Optional[str] = None
    #: how the op resolved: ``ok`` (served fresh), ``shed`` (503/504 —
    #: the service protected itself), ``degraded`` (answered from the
    #: stale cache, flagged ``degraded: true``), or ``error``
    status: str = "ok"

    @property
    def accepted(self) -> bool:
        """Whether the client got an answer (fresh or degraded)."""
        return self.status in ("ok", "degraded")

    @property
    def latency_s(self) -> float:
        """Client-observed latency from the scheduled arrival.

        Under open-loop load a response that arrives late delays the ops
        queued behind it; measuring from the schedule charges that
        queueing delay to the service (coordinated-omission aware).
        """
        return self.ended_s - self.scheduled_s

    @property
    def service_s(self) -> float:
        """Wall time of the backend call alone."""
        return self.ended_s - self.started_s


def _percentile_summary(latencies_s: Sequence[float]) -> Dict[str, object]:
    if not latencies_s:
        return {"count": 0, "p50_ms": None, "p95_ms": None, "p99_ms": None,
                "mean_ms": None, "max_ms": None}
    values = np.asarray(latencies_s, dtype=np.float64) * 1000.0
    p50, p95, p99 = (float(np.percentile(values, q)) for q in _PERCENTILES)
    return {"count": int(values.size),
            "p50_ms": round(p50, 3), "p95_ms": round(p95, 3),
            "p99_ms": round(p99, 3),
            "mean_ms": round(float(values.mean()), 3),
            "max_ms": round(float(values.max()), 3)}


@dataclass
class LoadResult:
    """Everything one load run produced."""

    trace_name: str
    config: LoadConfig
    #: actual worker count after clamping to the city count
    workers: int
    #: worker index -> the cities it owned
    assignment: Dict[int, List[str]]
    records: List[OpRecord]
    #: sha256 of each city's opening score (the streams are opened —
    #: and therefore warmed — before the clock starts)
    opening_digests: "OrderedDict[str, str]"
    open_elapsed_s: float
    #: run start (all workers released) to last op completed
    elapsed_s: float
    errors: List[str] = field(default_factory=list)
    #: backend stats snapshot taken right after the run
    stats: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    def measured(self, kind: Optional[str] = None) -> List[OpRecord]:
        """Fresh ``ok`` post-warm-up records (optionally one op kind).

        Shed and degraded ops are excluded: latency/throughput of the
        *fresh* path is what the scaling gates compare, and only fresh
        answers are digest-comparable to the serial oracle.
        """
        return [r for r in self.records
                if not r.warmup and r.status == "ok"
                and (kind is None or r.kind == kind)]

    def accepted(self, kind: Optional[str] = None) -> List[OpRecord]:
        """Post-warm-up records the client got *an* answer for (fresh or
        degraded) — the population whose latency must stay bounded under
        overload."""
        return [r for r in self.records
                if not r.warmup and r.accepted
                and (kind is None or r.kind == kind)]

    def count(self, status: str) -> int:
        return sum(1 for r in self.records
                   if not r.warmup and r.status == status)

    def latency_summary(self, kind: Optional[str] = None) -> Dict[str, object]:
        return _percentile_summary(
            [r.latency_s for r in self.measured(kind)])

    def accepted_latency_summary(
            self, kind: Optional[str] = None) -> Dict[str, object]:
        return _percentile_summary(
            [r.latency_s for r in self.accepted(kind)])

    def throughput(self, kind: Optional[str] = None) -> float:
        """Measured completions per second over the measurement window.

        The window spans the first measured op's start to the last
        measured op's completion, so warm-up time never inflates (or
        deflates) the rate.
        """
        records = self.measured(kind)
        if not records:
            return 0.0
        window = (max(r.ended_s for r in records)
                  - min(r.started_s for r in records))
        return len(records) / window if window > 0 else 0.0

    def goodput(self, kind: str = "score") -> float:
        """Fresh successful completions per second — shed and degraded
        answers do not count.  The overload gate's headline number: under
        2x saturation the service keeps doing useful work instead of
        collapsing into queueing or retry storms."""
        return self.throughput(kind)

    def per_city_digests(self) -> Dict[str, List[Optional[str]]]:
        """Each city's score-digest sequence in trace order.

        Workers own disjoint city sets and issue their ops in trace
        order, so sorting a city's records by trace index reconstructs
        exactly the sequence a serial replay would have produced — the
        hook :func:`load_matches_serial_oracle` compares against.
        """
        per_city: Dict[str, List[Optional[str]]] = {}
        for record in sorted(self.records, key=lambda r: r.index):
            per_city.setdefault(record.city, []).append(record.digest)
        return per_city

    def summary(self) -> Dict[str, object]:
        """The JSON-shaped report block for one fleet size."""
        measured = self.measured()
        warmup = sum(1 for r in self.records if r.warmup)
        return {
            "trace": self.trace_name,
            "workers": self.workers,
            "config": self.config.to_dict(),
            "ops_issued": len(self.records),
            "ops_measured": len(measured),
            "warmup_ops_excluded": warmup,
            "errors": len(self.errors),
            "sheds": self.count("shed"),
            "degraded": self.count("degraded"),
            "open_elapsed_s": round(self.open_elapsed_s, 4),
            "elapsed_s": round(self.elapsed_s, 4),
            "throughput": {
                "overall_ops_per_s": round(self.throughput(), 2),
                "score_ops_per_s": round(self.throughput("score"), 2),
                "score_goodput_per_s": round(self.goodput("score"), 2),
            },
            "latency": {
                "overall": self.latency_summary(),
                "score": self.latency_summary("score"),
                "update": self.latency_summary("update"),
                "evict": self.latency_summary("evict"),
                "accepted_score": self.accepted_latency_summary("score"),
            },
        }


def _partition_cities(names: Sequence[str],
                      workers: int) -> Dict[int, List[str]]:
    """Round-robin the trace's cities across the workers (disjoint)."""
    assignment: Dict[int, List[str]] = {w: [] for w in range(workers)}
    for i, name in enumerate(names):
        assignment[i % workers].append(name)
    return assignment


def _is_shed_response(error: BaseException) -> bool:
    """Shed responses, in-process (:class:`ShedError`) or remote
    (a 503/504 ``status`` attribute on the client error)."""
    if isinstance(error, ShedError):
        return True
    status = getattr(error, "status", None)
    return isinstance(status, int) and status in (503, 504)


def _issue(backend, op, rescore_updates: bool) -> Tuple[Optional[str], str]:
    """Fire one trace op at the backend → (score digest, status).

    A degraded answer (``degraded: true`` in the payload — the service
    served a stale cached score instead of shedding) carries no digest:
    it is by definition not the oracle's fresh answer for this op.
    """
    if op.op == "score":
        payload = backend.score_stream(op.city)
        if payload.get("degraded"):
            return None, "degraded"
        return score_digest(payload["probabilities"]), "ok"
    if op.op == "update":
        payload = backend.update_stream(op.city, op.delta,
                                        rescore=rescore_updates)
        if rescore_updates:
            return score_digest(payload["score"]["probabilities"]), "ok"
        return None, "ok"
    backend.evict_stream(op.city)
    return None, "ok"


def run_load(trace: WorkloadTrace, backend,
             config: Optional[LoadConfig] = None,
             metrics: Optional[MetricsRegistry] = None,
             collect_stats: bool = True) -> LoadResult:
    """Drive ``trace`` at ``backend`` with concurrent open-loop clients.

    ``backend`` is anything speaking the
    :class:`~repro.serve.fleet.ShardBackend` protocol — usually a
    :class:`~repro.serve.fleet.FleetRouter`, which is the whole point:
    concurrent clients hitting different cities exercise the router's
    per-city locking and the shards' per-stream scorers in parallel.

    Every stream is opened (and warmed) before the clock starts; worker
    errors abort that worker's remaining ops (a failed update would
    invalidate every later delta of its cities) but never the other
    workers.
    """
    config = config or LoadConfig()
    names = list(trace.cities)
    if not names:
        raise ValueError("trace has no cities to load")
    workers = max(1, min(config.workers, len(names)))
    assignment = _partition_cities(names, workers)
    owned_by = {name: worker for worker, cities in assignment.items()
                for name in cities}

    hist = ops_total = None
    if metrics is not None:
        hist = metrics.histogram(
            "repro_load_op_seconds",
            "Client-observed latency of load-driver ops, measured from "
            "the scheduled arrival time (includes open-loop queueing).",
            labelnames=("op",))
        ops_total = metrics.counter(
            "repro_load_ops_total",
            "Ops issued by the load driver, by kind and outcome.",
            labelnames=("op", "status"))

    # warm-up part 1: open every stream (serially — opens are rare,
    # expensive, and their cold cost must not pollute the measurement)
    open_start = time.perf_counter()
    opening: "OrderedDict[str, str]" = OrderedDict()
    for name, graph in trace.cities.items():
        payload = backend.open_stream(name, graph, rescore=True,
                                      **dict(config.open_options or {}))
        opening[name] = score_digest(payload["score"]["probabilities"])
    open_elapsed = time.perf_counter() - open_start

    per_worker_ops: Dict[int, List[Tuple[int, object]]] = {
        w: [] for w in range(workers)}
    for index, op in enumerate(trace.ops):
        per_worker_ops[owned_by[op.city]].append((index, op))

    # each worker fires at rate/workers, so the aggregate arrival rate
    # across the fleet is the configured one
    interval = (workers / config.arrival_rate
                if not config.saturation else None)

    records: List[OpRecord] = []
    errors: List[str] = []
    sink_lock = threading.Lock()
    barrier = threading.Barrier(workers + 1)
    run_start: List[float] = [0.0]

    def worker(wid: int) -> None:
        mine = per_worker_ops[wid]
        local: List[OpRecord] = []
        try:
            barrier.wait()
        except threading.BrokenBarrierError:  # pragma: no cover
            return
        t0 = run_start[0]
        for position, (index, op) in enumerate(mine):
            if interval is not None:
                scheduled = position * interval
                wait = t0 + scheduled - time.perf_counter()
                if wait > 0:
                    time.sleep(wait)
                started = time.perf_counter() - t0
            else:
                started = time.perf_counter() - t0
                scheduled = started
            warmup = position < config.warmup_ops
            digest = None
            error = None
            status = "ok"
            scope = (deadline_scope(Deadline.after_ms(config.deadline_ms))
                     if config.deadline_ms is not None
                     else contextlib.nullcontext())
            try:
                with scope:
                    digest, status = _issue(backend, op,
                                            config.rescore_updates)
            except Exception as exc:
                if _is_shed_response(exc):
                    # the service protected itself — by design, not a
                    # failure.  The op keeps its latency (the client
                    # waited that long for the 503) but no digest
                    status = "shed"
                else:
                    status = "error"
                    error = f"{type(exc).__name__}: {exc}"
            ended = time.perf_counter() - t0
            record = OpRecord(index=index, city=op.city, kind=op.op,
                              worker=wid, scheduled_s=scheduled,
                              started_s=started, ended_s=ended,
                              warmup=warmup, digest=digest, error=error,
                              status=status)
            local.append(record)
            if hist is not None:
                hist.labels(op=op.op).observe(record.latency_s)
            if ops_total is not None:
                ops_total.labels(op=op.op, status=status).inc()
            if error is not None:
                # later deltas of this worker's cities assume this op
                # succeeded; continuing would cascade spurious failures
                with sink_lock:
                    errors.append(f"worker {wid} op {index} "
                                  f"({op.op} {op.city}): {error}")
                break
            if status == "shed" and op.op == "update":
                # a shed update was never applied: every later delta of
                # this worker's cities builds on it, so the worker must
                # stop (shed scores/evicts are harmless — carry on)
                break
        with sink_lock:
            records.extend(local)

    threads = [threading.Thread(target=worker, args=(wid,),
                                name=f"load-worker-{wid}", daemon=True)
               for wid in range(workers)]
    for thread in threads:
        thread.start()
    run_start[0] = time.perf_counter()
    barrier.wait()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - run_start[0]

    stats = None
    if collect_stats:
        try:
            stats = backend.stats()
        except Exception:
            stats = None
    records.sort(key=lambda r: r.index)
    return LoadResult(trace_name=trace.name, config=config, workers=workers,
                      assignment=assignment, records=records,
                      opening_digests=opening, open_elapsed_s=open_elapsed,
                      elapsed_s=elapsed, errors=errors, stats=stats)


def load_matches_serial_oracle(trace: WorkloadTrace, result: LoadResult,
                               oracle: ReplayResult,
                               ) -> Tuple[bool, List[str]]:
    """Verify a concurrent load run against a serial oracle replay.

    ``oracle`` is a full :func:`~repro.bench.workload.replay_trace` of
    the same trace (``keep_scores=False`` recommended — digests are all
    this check needs).  Per-city digest sequences must match exactly:
    concurrency may interleave *different* cities any way the scheduler
    likes, but each individual city's trajectory is bit-determined.

    Shed and degraded ops are skipped: a 503 carries no answer to
    compare, and a degraded answer is *defined* to be stale.  Every op
    the service answered fresh (``status == "ok"``) must match the
    oracle's digest for that exact trace position — under overload the
    service may answer fewer requests, but never different ones.

    Returns ``(identical, mismatches)`` with one human-readable line per
    divergence (including load-run errors, which make the comparison
    fail by construction).
    """
    mismatches: List[str] = [f"load error: {line}" for line in result.errors]
    oracle_openings = oracle.opening_digests or {
        name: score_digest(vector)
        for name, vector in oracle.opening_scores.items()}
    for name in trace.cities:
        expected = oracle_openings.get(name)
        got = result.opening_digests.get(name)
        if expected != got:
            mismatches.append(f"opening[{name}]: {got} != {expected}")

    expected_digests: List[Optional[str]] = []
    for index, op in enumerate(trace.ops):
        expected_digests.append(
            oracle.score_digests[index]
            if index < len(oracle.score_digests) else
            (score_digest(oracle.scores[index])
             if oracle.scores[index] is not None else None))
    for record in result.records:
        if record.status != "ok":
            continue  # no fresh answer to compare
        expected = expected_digests[record.index]
        if record.digest != expected:
            mismatches.append(f"{record.city} op #{record.index} "
                              f"({record.kind}): {record.digest} != "
                              f"{expected}")
    return not mismatches, mismatches


def format_load_report(summary: Mapping[str, object]) -> str:
    """Render one load run's summary as the CLI/benchmark text block.

    The ``latency:``/``throughput:`` lines are grep targets of the CI
    smoke job — keep their shape stable.
    """
    throughput = summary["throughput"]
    latency = summary["latency"]["overall"]
    score_latency = summary["latency"]["score"]
    lines = [
        "load: %(ops_measured)d measured ops (+%(warmup_ops_excluded)d "
        "warm-up) from %(workers)d workers in %(elapsed_s).2fs, "
        "%(errors)d error(s)" % summary,
        f"throughput: overall={throughput['overall_ops_per_s']:.1f} ops/s, "
        f"score={throughput['score_ops_per_s']:.1f} ops/s",
    ]
    sheds = int(summary.get("sheds", 0) or 0)
    degraded = int(summary.get("degraded", 0) or 0)
    if sheds or degraded:
        lines.append(f"resilience: shed={sheds}, degraded={degraded}, "
                     f"goodput={throughput.get('score_goodput_per_s', 0.0):.1f} "
                     "score ops/s")
    if latency["count"]:
        lines.append("latency: " + ", ".join(
            f"{key.replace('_ms', '')}={latency[key]:.2f}ms"
            for key in ("p50_ms", "p95_ms", "p99_ms")
            if latency[key] is not None))
    if score_latency["count"]:
        lines.append("score latency: " + ", ".join(
            f"{key.replace('_ms', '')}={score_latency[key]:.2f}ms"
            for key in ("p50_ms", "p95_ms", "p99_ms")
            if score_latency[key] is not None))
    return "\n".join(lines)
