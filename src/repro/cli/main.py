"""Argument parsing and dispatch for the ``repro-uv`` command-line tool."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..durable import FSYNC_POLICIES, DurabilityError
from ..serve.client import ScoringServiceError
from ..serve.fleet import FleetError
from . import commands


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro-uv",
        description="Urban village detection with the contextual master-slave "
                    "framework (CMSF) on synthetic urban region graphs.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # ------------------------------------------------------------------
    # generate-city
    # ------------------------------------------------------------------
    generate = subparsers.add_parser(
        "generate-city", help="generate a synthetic city and save it to disk")
    generate.add_argument("--preset", default="mini", help="city preset name")
    generate.add_argument("--seed", type=int, default=None, help="override the preset seed")
    generate.add_argument("--output", required=True, help="output directory for the city")
    generate.set_defaults(handler=commands.cmd_generate_city)

    # ------------------------------------------------------------------
    # build-graph
    # ------------------------------------------------------------------
    build = subparsers.add_parser(
        "build-graph", help="build the urban region graph of a city")
    source = build.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset", help="generate the city from this preset")
    source.add_argument("--city-dir", help="load a previously saved city directory")
    build.add_argument("--seed", type=int, default=None, help="override the preset seed")
    build.add_argument("--ablation", default="full",
                       help="data ablation (full, noImage, noCate, noRad, noIndex, "
                            "noProx, noRoad)")
    build.add_argument("--image-dim", type=int, default=128,
                       help="PCA reduction of the image features (0 keeps raw)")
    build.add_argument("--block-size", type=int, default=5,
                       help="coarse block size for the splitting protocol")
    build.add_argument("--output", required=True, help="output .npz path for the graph")
    build.set_defaults(handler=commands.cmd_build_graph)

    # ------------------------------------------------------------------
    # show-city
    # ------------------------------------------------------------------
    show = subparsers.add_parser(
        "show-city", help="print ASCII maps and statistics of a city")
    show_source = show.add_mutually_exclusive_group(required=True)
    show_source.add_argument("--preset", help="generate the city from this preset")
    show_source.add_argument("--city-dir", help="load a previously saved city directory")
    show.add_argument("--seed", type=int, default=None)
    show.add_argument("--labels", action="store_true",
                      help="also print the label map of the built URG")
    show.set_defaults(handler=commands.cmd_show_city)

    # ------------------------------------------------------------------
    # train
    # ------------------------------------------------------------------
    train = subparsers.add_parser(
        "train", help="train a detector and export a ranked screening list")
    train_source = train.add_mutually_exclusive_group(required=True)
    train_source.add_argument("--preset", help="city preset to train on")
    train_source.add_argument("--graph", help="previously built graph (.npz)")
    train.add_argument("--method", default="CMSF", help="detector name (see evaluate)")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--epochs", type=int, default=None, help="override training epochs")
    train.add_argument("--predictions", default=None,
                       help="write the ranked screening list to this CSV path")
    train.add_argument("--geojson", default=None,
                       help="write region polygons with scores to this GeoJSON path")
    train.add_argument("--top-percent", type=float, default=5.0,
                       help="screening budget used for the printed summary")
    train.add_argument("--dtype", choices=["float64", "float32"], default=None,
                       help="compute precision for CMSF variants: float64 "
                            "(default, bit-reproducible) or float32 (the "
                            "fast path, roughly half the memory traffic)")
    train.set_defaults(handler=commands.cmd_train)

    # ------------------------------------------------------------------
    # evaluate
    # ------------------------------------------------------------------
    evaluate = subparsers.add_parser(
        "evaluate", help="cross-validate detectors under the paper's protocol")
    evaluate_source = evaluate.add_mutually_exclusive_group(required=True)
    evaluate_source.add_argument("--preset", help="city preset to evaluate on")
    evaluate_source.add_argument("--graph", help="previously built graph (.npz)")
    evaluate.add_argument("--methods", default="MLP,CMSF",
                          help="comma-separated detector names")
    evaluate.add_argument("--folds", type=int, default=3)
    evaluate.add_argument("--seeds", default="0", help="comma-separated seeds")
    evaluate.add_argument("--epochs", type=int, default=None)
    evaluate.add_argument("--markdown", action="store_true",
                          help="print the comparison as a markdown table")
    evaluate.set_defaults(handler=commands.cmd_evaluate)

    # ------------------------------------------------------------------
    # reproduce
    # ------------------------------------------------------------------
    reproduce = subparsers.add_parser(
        "reproduce", help="regenerate one of the paper's tables or figures")
    reproduce.add_argument("experiment",
                           choices=["table1", "table2", "table3", "fig5a", "fig5b",
                                    "fig6a", "fig6b", "fig6c", "fig7"],
                           help="which table / figure to regenerate")
    reproduce.add_argument("--cities", default=None,
                           help="comma-separated subset of evaluation cities")
    reproduce.set_defaults(handler=commands.cmd_reproduce)

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    registry = subparsers.add_parser(
        "registry", help="inspect or populate the on-disk dataset registry")
    registry.add_argument("--root", required=True, help="registry root directory")
    registry.add_argument("--materialize", default=None,
                          help="comma-separated presets to materialise")
    registry.set_defaults(handler=commands.cmd_registry)

    # ------------------------------------------------------------------
    # package
    # ------------------------------------------------------------------
    package = subparsers.add_parser(
        "package", help="train a CMSF detector and package it as a model bundle")
    package_source = package.add_mutually_exclusive_group(required=True)
    package_source.add_argument("--preset", help="city preset to train on")
    package_source.add_argument("--graph", help="previously built graph (.npz)")
    package.add_argument("--method", default="CMSF",
                         help="CMSF variant (CMSF, CMSF-M, CMSF-G, CMSF-H)")
    package.add_argument("--seed", type=int, default=None,
                         help="override the preset's city seed and the "
                              "training seed (default: keep the preset city, "
                              "train with seed 0)")
    package.add_argument("--epochs", type=int, default=None,
                         help="override training epochs")
    package.add_argument("--dtype", choices=["float64", "float32"], default=None,
                         help="compute precision of the packaged detector "
                              "(recorded in the bundle manifest and enforced "
                              "at load time)")
    package_dest = package.add_mutually_exclusive_group(required=True)
    package_dest.add_argument("--output", help="write the bundle to this directory")
    package_dest.add_argument("--registry", dest="model_registry",
                              help="publish into this model-registry root")
    package.add_argument("--name", default=None,
                         help="bundle name (defaults to the city name)")
    package.add_argument("--version", default=None,
                         help="bundle version (auto-incremented in a registry)")
    package.set_defaults(handler=commands.cmd_package)

    # ------------------------------------------------------------------
    # serve
    # ------------------------------------------------------------------
    serve = subparsers.add_parser(
        "serve", help="run the HTTP scoring service over a model registry")
    serve.add_argument("--registry", required=True,
                       help="model-registry root with published bundles")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="port to bind (0 picks an ephemeral port)")
    serve.add_argument("--cache-size", type=int, default=32,
                       help="LRU capacity of each engine's result cache")
    serve.add_argument("--batch-size", type=int, default=2048,
                       help="region micro-batch of the cold scoring path "
                            "(0 disables chunking)")
    serve.add_argument("--workers", type=int, default=4,
                       help="thread-pool width for concurrent scoring")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    serve.add_argument("--wal-dir", default=None,
                       help="durability root: write-ahead-log every stream "
                            "delta and checkpoint snapshots in the "
                            "background")
    serve.add_argument("--max-concurrent", type=int, default=None,
                       help="admission control: per-endpoint concurrency "
                            "bound; overflow queues then sheds 503 + "
                            "Retry-After (default: unbounded)")
    serve.add_argument("--max-queue", type=int, default=16,
                       help="admission queue depth beyond the concurrency "
                            "bound before requests shed immediately")
    serve.add_argument("--queue-timeout", type=float, default=1.0,
                       help="seconds a request may wait in the admission "
                            "queue before shedding with 503")
    serve.add_argument("--degraded", action="store_true",
                       help="serve stale cached scores (flagged "
                            "degraded=true) instead of shedding warm "
                            "streams under overload")
    serve.add_argument("--max-staleness", type=int, default=8,
                       help="degraded mode: max stream-version lag a stale "
                            "cached score may have before shedding anyway")
    serve.set_defaults(handler=commands.cmd_serve)

    # ------------------------------------------------------------------
    # stream
    # ------------------------------------------------------------------
    stream = subparsers.add_parser(
        "stream", help="evolve a city through incremental deltas and report "
                       "the score drift")
    stream_source = stream.add_mutually_exclusive_group(required=True)
    stream_source.add_argument("--preset", help="build the graph from this preset")
    stream_source.add_argument("--graph", help="previously built graph (.npz)")
    stream.add_argument("--seed", type=int, default=None,
                        help="override the preset seed")
    stream_backend = stream.add_mutually_exclusive_group(required=True)
    stream_backend.add_argument("--url", help="push deltas to this running "
                                              "scoring service")
    stream_backend.add_argument("--registry",
                                help="score in-process with a bundle from "
                                     "this model-registry root")
    stream.add_argument("--model", required=True, help="published model name")
    stream.add_argument("--version", default=None, help="model version (latest)")
    stream.add_argument("--stream", default=None,
                        help="stream name on the service (default: derived "
                             "from the city name)")
    stream.add_argument("--steps", type=int, default=8,
                        help="number of evolution steps to generate")
    stream.add_argument("--evolution-seed", type=int, default=0,
                        help="seed of the evolution scenario generator")
    stream.add_argument("--scenarios", default="",
                        help="comma-separated scenario kinds (default: all; "
                             "poi_churn, imagery_refresh, road_rewiring, "
                             "region_growth)")
    stream.add_argument("--threshold", type=float, default=0.5,
                        help="operating threshold for drift crossing counts")
    stream.add_argument("--incremental", default="auto",
                        choices=("auto", "always", "never"),
                        help="delta-localised rescoring policy: recompute "
                             "only a delta's receptive field (auto falls "
                             "back to full rescoring for city-wide deltas)")
    stream.add_argument("--stats", action="store_true",
                        help="print compute-plan cache and incremental "
                             "rescoring counters after the run")
    stream.add_argument("--json", default=None,
                        help="write the drift report to this JSON path")
    stream.add_argument("--wal-dir", default=None,
                        help="durability root: write-ahead-log every delta "
                             "of the in-process stream (incompatible with "
                             "--url — the server owns durability there)")
    stream.add_argument("--fsync", default="interval",
                        choices=FSYNC_POLICIES,
                        help="when the write-ahead log calls fsync: on every "
                             "append, on a timer, or never (OS flush only)")
    stream.set_defaults(handler=commands.cmd_stream)

    # ------------------------------------------------------------------
    # workload
    # ------------------------------------------------------------------
    workload = subparsers.add_parser(
        "workload", help="generate and record a deterministic mixed "
                         "score/update/evict workload trace")
    workload_source = workload.add_mutually_exclusive_group(required=True)
    workload_source.add_argument("--preset", help="build the base graph "
                                                  "from this preset")
    workload_source.add_argument("--graph", help="previously built graph (.npz)")
    workload.add_argument("--seed", type=int, default=None,
                          help="override the preset seed")
    workload.add_argument("--cities", type=int, default=2,
                          help="number of city variants derived from the "
                               "base graph (distinct routing keys)")
    workload.add_argument("--ops", type=int, default=32,
                          help="number of ops in the trace")
    workload.add_argument("--workload-seed", type=int, default=0,
                          help="seed of the workload generator")
    workload.add_argument("--score-weight", type=float, default=0.6)
    workload.add_argument("--update-weight", type=float, default=0.3)
    workload.add_argument("--evict-weight", type=float, default=0.1)
    workload.add_argument("--scenarios", default="",
                          help="comma-separated delta scenario kinds for "
                               "the update ops (default: all)")
    workload.add_argument("--output", required=True,
                          help="record the trace to this .npz path")
    workload.set_defaults(handler=commands.cmd_workload)

    # ------------------------------------------------------------------
    # fleet
    # ------------------------------------------------------------------
    fleet = subparsers.add_parser(
        "fleet", help="replay a workload trace against a sharded "
                      "multi-engine fleet with failover")
    fleet.add_argument("--registry", required=True,
                       help="model-registry root with published bundles")
    fleet.add_argument("--model", required=True, help="published model name")
    fleet.add_argument("--version", default=None, help="model version (latest)")
    fleet.add_argument("--shards", type=int, default=2,
                       help="number of shard workers")
    fleet.add_argument("--replication", type=int, default=2,
                       help="replica-set size per city (1 disables failover)")
    fleet.add_argument("--cache-size", type=int, default=32,
                       help="LRU capacity of each shard engine's result "
                            "cache (in-process shards only; remote shards "
                            "use their server's setting)")
    fleet.add_argument("--incremental", default="auto",
                       choices=("auto", "always", "never"),
                       help="delta-localised rescoring policy of the "
                            "per-shard streams")
    fleet.add_argument("--urls", default=None,
                       help="comma-separated scoring-service URLs: use "
                            "remote shards against running servers instead "
                            "of in-process engines")
    fleet_trace = fleet.add_mutually_exclusive_group(required=True)
    fleet_trace.add_argument("--trace", help="replay this recorded trace "
                                             "(see 'repro-uv workload')")
    fleet_trace.add_argument("--preset", help="generate an ad-hoc workload "
                                              "from this preset")
    fleet_trace.add_argument("--graph", help="generate an ad-hoc workload "
                                             "from this graph (.npz)")
    fleet.add_argument("--seed", type=int, default=None,
                       help="override the preset seed")
    fleet.add_argument("--ops", type=int, default=32,
                       help="ops of the ad-hoc workload (no --trace)")
    fleet.add_argument("--workload-seed", type=int, default=0,
                       help="seed of the ad-hoc workload (no --trace)")
    fleet.add_argument("--kill-shard", type=int, default=None,
                       help="chaos demo: wrap this shard index so it starts "
                            "failing mid-replay (needs replication >= 2)")
    fleet.add_argument("--kill-after", type=int, default=5,
                       help="delegated calls before the killed shard fails")
    fleet.add_argument("--verify-single", action="store_true",
                       help="also replay on a single-engine oracle and "
                            "verify the fleet's scores are bit-identical "
                            "(exit 1 on mismatch)")
    fleet.add_argument("--json", default=None,
                       help="write the replay report to this JSON path")
    fleet.add_argument("--wal-dir", default=None,
                       help="durability root: write-ahead-log every "
                            "accepted delta so a killed replay can be "
                            "resumed with --restore")
    fleet.add_argument("--restore", action="store_true",
                       help="recover every stream from --wal-dir, resume "
                            "the --trace at the recovered versions, and "
                            "verify the resumed tail is bit-identical to "
                            "an uninterrupted single-engine oracle "
                            "(exit 1 on mismatch)")
    fleet.add_argument("--fsync", default="interval",
                       choices=FSYNC_POLICIES,
                       help="when the write-ahead log calls fsync: on every "
                            "append, on a timer, or never (OS flush only)")
    fleet.add_argument("--timeout", type=float, default=None,
                       help="per-request timeout in seconds for remote "
                            "shards: a hung shard fails over within this "
                            "bound (default: the transport's 30s)")
    fleet.set_defaults(handler=commands.cmd_fleet)

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    load = subparsers.add_parser(
        "load", help="open-loop concurrent load generation against fleets "
                     "of increasing size, reporting latency percentiles "
                     "and score-throughput scaling")
    load.add_argument("--registry", required=True,
                      help="model-registry root with published bundles")
    load.add_argument("--model", required=True, help="published model name")
    load.add_argument("--version", default=None, help="model version (latest)")
    load.add_argument("--shards", default="1,2",
                      help="comma-separated fleet sizes to load in turn "
                           "(scaling is reported last vs first)")
    load.add_argument("--replication", type=int, default=2,
                      help="replica-set size per city, clamped to each "
                           "fleet size")
    load.add_argument("--cache-size", type=int, default=8,
                      help="LRU capacity of each shard engine's result cache")
    load.add_argument("--incremental", default="auto",
                      choices=("auto", "always", "never"),
                      help="delta-localised rescoring policy of the "
                           "per-shard streams")
    load.add_argument("--urls", default=None,
                      help="comma-separated scoring-service URLs: load "
                           "remote shards instead of in-process engines")
    load_trace_source = load.add_mutually_exclusive_group(required=True)
    load_trace_source.add_argument("--trace",
                                   help="load this recorded trace "
                                        "(see 'repro-uv workload')")
    load_trace_source.add_argument("--preset",
                                   help="generate an ad-hoc workload from "
                                        "this preset")
    load_trace_source.add_argument("--graph",
                                   help="generate an ad-hoc workload from "
                                        "this graph (.npz)")
    load.add_argument("--seed", type=int, default=None,
                      help="override the preset seed")
    load.add_argument("--cities", type=int, default=6,
                      help="city variants of the ad-hoc workload (no --trace)")
    load.add_argument("--ops", type=int, default=96,
                      help="ops of the ad-hoc workload (no --trace)")
    load.add_argument("--workload-seed", type=int, default=0,
                      help="seed of the ad-hoc workload (no --trace)")
    load.add_argument("--score-weight", type=float, default=0.8)
    load.add_argument("--update-weight", type=float, default=0.15)
    load.add_argument("--evict-weight", type=float, default=0.05)
    load.add_argument("--workers", type=int, default=4,
                      help="concurrent client threads (clamped to the "
                           "trace's city count)")
    load.add_argument("--arrival-rate", type=float, default=None,
                      help="aggregate open-loop arrival rate in ops/s "
                           "(default: closed-loop saturation)")
    load.add_argument("--warmup", type=int, default=2,
                      help="leading ops per worker excluded from the stats")
    load.add_argument("--timeout", type=float, default=5.0,
                      help="per-request timeout for remote shards — "
                           "deliberately lower than 'fleet' so hung shards "
                           "fail over fast under load")
    load.add_argument("--verify-single", action="store_true",
                      help="digest-verify every run against a serial "
                           "1-shard oracle replay (exit 1 on mismatch)")
    load.add_argument("--min-scaling", type=float, default=None,
                      help="fail (exit 1) unless score throughput at the "
                           "largest fleet is at least this multiple of the "
                           "smallest fleet's")
    load.add_argument("--json", default=None,
                      help="write the schema-pinned BENCH_load.json report "
                           "to this path")
    load.add_argument("--deadline-ms", type=float, default=None,
                      help="attach this per-op deadline so slow requests "
                           "are shed server-side with 504 instead of "
                           "queueing forever")
    load.add_argument("--max-concurrent", type=int, default=None,
                      help="admission control on the fleet router: "
                           "per-endpoint concurrency bound, overflow "
                           "queues then sheds (default: unbounded)")
    load.add_argument("--max-queue", type=int, default=16,
                      help="admission queue depth beyond the concurrency "
                           "bound before requests shed immediately")
    load.add_argument("--queue-timeout", type=float, default=1.0,
                      help="seconds a request may wait in the admission "
                           "queue before shedding")
    load.add_argument("--degraded", action="store_true",
                      help="serve stale cached scores (flagged degraded) "
                           "instead of shedding warm streams under "
                           "overload")
    load.add_argument("--chaos", default=None,
                      choices=("slow-shard", "flaky", "kill"),
                      help="inject a fault into one shard of every fleet: "
                           "fixed latency (gray failure), seeded random "
                           "errors, or a hard kill — breakers and failover "
                           "must absorb it; chaos is cleared at the end of "
                           "each run and auto-revival is reported")
    load.add_argument("--chaos-shard", type=int, default=0,
                      help="shard index the chaos wraps (mod fleet size)")
    load.add_argument("--chaos-latency-ms", type=float, default=80.0,
                      help="injected per-call latency of --chaos slow-shard")
    load.add_argument("--chaos-flaky-rate", type=float, default=0.2,
                      help="per-call failure probability of --chaos flaky")
    load.add_argument("--kill-after", type=int, default=5,
                      help="delegated calls before --chaos kill fails the "
                           "shard")
    load.set_defaults(handler=commands.cmd_load)

    # ------------------------------------------------------------------
    # rollout
    # ------------------------------------------------------------------
    rollout = subparsers.add_parser(
        "rollout", help="staged canary rollout of a new model version "
                        "across a fleet, with shadow scoring, drift-gated "
                        "promotion and automatic rollback")
    rollout.add_argument("--registry", required=True,
                         help="model-registry root with published bundles")
    rollout.add_argument("--model", required=True, help="published model name")
    rollout.add_argument("--version", default=None,
                         help="baseline version serving before the rollout "
                              "(latest)")
    rollout.add_argument("--new-version", required=True,
                         help="bundle version to roll out")
    rollout.add_argument("--shards", type=int, default=2,
                         help="number of in-process shard workers")
    rollout.add_argument("--replication", type=int, default=2,
                         help="replica-set size per city")
    rollout.add_argument("--cache-size", type=int, default=32,
                         help="LRU capacity of each shard engine's result "
                              "cache")
    rollout.add_argument("--incremental", default="auto",
                         choices=("auto", "always", "never"),
                         help="delta-localised rescoring policy of the "
                              "per-shard streams")
    rollout_trace = rollout.add_mutually_exclusive_group(required=True)
    rollout_trace.add_argument("--trace",
                               help="replay this recorded trace through the "
                                    "rollout (see 'repro-uv workload')")
    rollout_trace.add_argument("--preset",
                               help="generate an ad-hoc workload from this "
                                    "preset")
    rollout_trace.add_argument("--graph",
                               help="generate an ad-hoc workload from this "
                                    "graph (.npz)")
    rollout.add_argument("--seed", type=int, default=None,
                         help="override the preset seed")
    rollout.add_argument("--cities", type=int, default=3,
                         help="city variants of the ad-hoc workload "
                              "(no --trace)")
    rollout.add_argument("--ops", type=int, default=32,
                         help="ops of the ad-hoc workload (no --trace)")
    rollout.add_argument("--workload-seed", type=int, default=0,
                         help="seed of the ad-hoc workload (no --trace)")
    rollout.add_argument("--rollout-at", type=int, default=0,
                         help="op index where the rollout starts (ignored "
                              "when the trace already has a rollout op)")
    rollout.add_argument("--rollout-seed", type=int, default=0,
                         help="canary-assignment seed (same seed => same "
                              "canary decisions on replay)")
    rollout.add_argument("--canary-fraction", type=float, default=0.05,
                         help="first-stage canary fraction; the ladder "
                              "continues through the defaults to 100%%")
    rollout.add_argument("--auto-promote", action="store_true",
                         help="let the drift policy promote/rollback "
                              "automatically as shadow pairs accumulate "
                              "(default: evaluate once after the replay)")
    rollout.add_argument("--abort", action="store_true",
                         help="abort at the end of the replay, restoring "
                              "the baseline version fleet-wide")
    rollout.add_argument("--max-mean-abs-change", type=float, default=0.05,
                         help="policy: rollback when the shadow pairs' mean "
                              "absolute probability change exceeds this")
    rollout.add_argument("--min-rank-correlation", type=float, default=0.8,
                         help="policy: rollback when the worst Spearman "
                              "rank correlation falls below this")
    rollout.add_argument("--max-crossing-fraction", type=float, default=0.02,
                         help="policy: rollback when the fraction of "
                              "regions crossing the operating threshold "
                              "exceeds this")
    rollout.add_argument("--min-pairs", type=int, default=3,
                         help="policy: hold until at least this many shadow "
                              "pairs exist per stage")
    rollout.add_argument("--threshold", type=float, default=0.5,
                         help="operating threshold for drift crossing "
                              "counts")
    rollout.add_argument("--verify-replay", action="store_true",
                         help="replay the rollout twice on fresh fleets and "
                              "verify canary decisions and float64 scores "
                              "are bit-identical (exit 1 on mismatch)")
    rollout.add_argument("--json", default=None,
                         help="write the rollout report to this JSON path")
    rollout.set_defaults(handler=commands.cmd_rollout)

    # ------------------------------------------------------------------
    # experiment
    # ------------------------------------------------------------------
    experiment = subparsers.add_parser(
        "experiment", help="sweep fleet size x replication over workload "
                           "traces, measuring each cell through a fresh "
                           "metrics registry")
    experiment.add_argument("--registry", required=True,
                            help="model-registry root with published bundles")
    experiment.add_argument("--model", required=True,
                            help="published model name")
    experiment.add_argument("--version", default=None,
                            help="model version (latest)")
    experiment.add_argument("--fleet-sizes", default="1,2",
                            help="comma-separated shard counts to sweep")
    experiment.add_argument("--replications", default="2",
                            help="comma-separated replica-set sizes to sweep "
                                 "(clamped to each cell's fleet size)")
    experiment.add_argument("--cache-size", type=int, default=8,
                            help="LRU capacity of each shard engine's "
                                 "result cache")
    experiment.add_argument("--incremental", default="auto",
                            choices=("auto", "always", "never"),
                            help="delta-localised rescoring policy of the "
                                 "per-shard streams")
    experiment_trace = experiment.add_mutually_exclusive_group(required=True)
    experiment_trace.add_argument("--trace",
                                  help="comma-separated recorded traces to "
                                       "replay (see 'repro-uv workload')")
    experiment_trace.add_argument("--preset",
                                  help="generate an ad-hoc workload from "
                                       "this preset")
    experiment_trace.add_argument("--graph",
                                  help="generate an ad-hoc workload from "
                                       "this graph (.npz)")
    experiment.add_argument("--seed", type=int, default=None,
                            help="override the preset seed")
    experiment.add_argument("--cities", type=int, default=3,
                            help="city variants of the ad-hoc workload "
                                 "(no --trace)")
    experiment.add_argument("--ops", type=int, default=32,
                            help="ops of the ad-hoc workload (no --trace)")
    experiment.add_argument("--workload-seed", type=int, default=0,
                            help="seed of the ad-hoc workload (no --trace)")
    experiment.add_argument("--no-verify", action="store_true",
                            help="skip the bit-identity check against each "
                                 "trace's first cell")
    experiment.add_argument("--output", default="EXPERIMENT.json",
                            help="write the machine-readable report to this "
                                 "JSON path")
    experiment.set_defaults(handler=commands.cmd_experiment)

    # ------------------------------------------------------------------
    # score
    # ------------------------------------------------------------------
    score = subparsers.add_parser(
        "score", help="score a graph against a running scoring service")
    score.add_argument("--url", required=True,
                       help="base URL of the service (e.g. http://127.0.0.1:8000)")
    score_source = score.add_mutually_exclusive_group(required=True)
    score_source.add_argument("--preset", help="build the graph from this preset")
    score_source.add_argument("--graph", help="previously built graph (.npz)")
    score.add_argument("--seed", type=int, default=None,
                       help="override the preset seed")
    score.add_argument("--model", required=True, help="published model name")
    score.add_argument("--version", default=None, help="model version (latest)")
    score.add_argument("--top-percent", type=float, default=None,
                       help="also report the top-k%% screening shortlist")
    score.add_argument("--threshold", type=float, default=None,
                       help="also report binary predictions at this threshold")
    score.add_argument("--predictions", default=None,
                       help="write the ranked scores to this CSV path")
    score.set_defaults(handler=commands.cmd_score)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return int(args.handler(args) or 0)
    except (ValueError, KeyError, FileNotFoundError) as error:
        # str(KeyError(msg)) is the repr of msg — unwrap so registry
        # lookups don't print their message wrapped in stray quotes
        message = (error.args[0] if isinstance(error, KeyError) and error.args
                   else error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    except (ScoringServiceError, FleetError, DurabilityError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
