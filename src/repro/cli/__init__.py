"""Command-line interface for the CMSF reproduction.

The CLI mirrors the workflow a city-planning data team would run:

1. ``generate-city`` — materialise a synthetic city (the stand-in for the
   paper's proprietary multi-source data collection);
2. ``build-graph`` — construct the urban region graph from the raw city;
3. ``show-city`` — inspect a city as an ASCII land-use / label map;
4. ``train`` — fit a detector and export a ranked screening list;
5. ``evaluate`` — run the paper's block-level cross-validation protocol for
   one or more methods;
6. ``reproduce`` — regenerate one of the paper's tables or figures;
7. ``registry`` — inspect the on-disk dataset registry.

Every command is importable and callable in-process (``main([...])``), which
is how the test suite exercises it.
"""

from .main import build_parser, main

__all__ = ["main", "build_parser"]
