"""Implementations of the ``repro-uv`` sub-commands.

Each handler takes the parsed ``argparse`` namespace, prints human-readable
output and returns an exit code (``None`` means success).  Handlers are thin:
all real work happens in the library packages so the CLI stays a veneer.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import Optional

import numpy as np

from ..baselines import available_methods, make_detector
from ..core.config import CMSFConfig
from ..data import (DatasetRegistry, export_predictions_csv, load_city_dir,
                    load_graph_npz, regions_to_geojson, save_city_dir,
                    save_geojson, save_graph_npz)
from ..eval import block_kfold, compare_methods, rank_regions
from ..eval.reporting import TABLE2_HEADERS, format_table, table2_rows
from ..experiments import (run_fig5a, run_fig5b, run_fig6a, run_fig6b, run_fig6c,
                           run_fig7, run_table1, run_table2, run_table3)
from ..synth import generate_city, get_preset
from ..synth.city import SyntheticCity
from ..urg import UrgBuildConfig, build_urg, build_urg_variant
from ..urg.graph import UrbanRegionGraph
from ..urg.image_features import ImageFeatureConfig
from ..viz import comparison_markdown, render_detection_map, render_label_map, render_land_use_map


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def _load_or_generate_city(args: argparse.Namespace) -> SyntheticCity:
    if getattr(args, "city_dir", None):
        return load_city_dir(args.city_dir)
    config = get_preset(args.preset)
    if getattr(args, "seed", None) is not None:
        config = replace(config, seed=args.seed)
    return generate_city(config)


def _load_or_build_graph(args: argparse.Namespace) -> UrbanRegionGraph:
    if getattr(args, "graph", None):
        return load_graph_npz(args.graph)
    city = _load_or_generate_city(args)
    return build_urg(city)


def _detector_factory(method: str, epochs: Optional[int]):
    def make(seed: int):
        if method.upper().startswith("CMSF"):
            config = CMSFConfig()
            if epochs is not None:
                config = config.with_overrides(master_epochs=epochs,
                                               slave_epochs=max(epochs // 4, 5))
            return make_detector(method, seed=seed, cmsf_config=config)
        return make_detector(method, seed=seed, epochs=epochs)
    return make


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_generate_city(args: argparse.Namespace) -> int:
    city = _load_or_generate_city(args)
    directory = save_city_dir(city, args.output)
    summary = city.summary()
    print(f"wrote city '{city.name}' to {directory}")
    print("  regions: %(regions)d, POIs: %(pois)d, road intersections: "
          "%(road_intersections)d" % summary)
    print("  true UV regions: %(true_uv_regions)d, labelled UV: %(labeled_uv)d, "
          "labelled non-UV: %(labeled_non_uv)d" % summary)
    return 0


def cmd_build_graph(args: argparse.Namespace) -> int:
    city = _load_or_generate_city(args)
    image = ImageFeatureConfig(reduce_dim=args.image_dim if args.image_dim > 0 else None)
    base = UrgBuildConfig(image=image, block_size=args.block_size)
    graph = build_urg_variant(city, args.ablation, base)
    path = save_graph_npz(graph, args.output)
    summary = graph.summary()
    print(f"wrote graph for '{graph.name}' ({args.ablation}) to {path}")
    print("  regions: %(regions)d, undirected edges: %(edges)d, labelled UV: %(uvs)d, "
          "labelled non-UV: %(non_uvs)d" % summary)
    print(f"  POI features: {graph.poi_dim}, image features: {graph.image_dim}")
    return 0


def cmd_show_city(args: argparse.Namespace) -> int:
    city = _load_or_generate_city(args)
    print(render_land_use_map(city))
    print()
    for key, value in city.summary().items():
        print(f"  {key}: {value}")
    if args.labels:
        graph = build_urg(city)
        print()
        print(render_label_map(graph))
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    graph = _load_or_build_graph(args)
    detector = _detector_factory(args.method, args.epochs)(args.seed)
    print(f"training {detector.name} on '{graph.name}' "
          f"({len(graph.labeled_indices())} labelled regions) ...")
    detector.fit(graph, graph.labeled_indices())
    scores = detector.predict_proba(graph)

    pool = np.arange(graph.num_nodes)
    detected = rank_regions(detector, graph, pool=pool, top_percent=args.top_percent)
    hits = int(graph.ground_truth[detected].sum())
    print(f"top {args.top_percent:g}% screening list: {detected.size} regions, "
          f"{hits} overlap ground-truth urban villages")
    print(render_detection_map(graph, detected))

    if args.predictions:
        path = export_predictions_csv(graph, scores, args.predictions)
        print(f"wrote ranked predictions to {path}")
    if args.geojson:
        path = save_geojson(regions_to_geojson(graph, scores=scores), args.geojson)
        print(f"wrote region GeoJSON to {path}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    graph = _load_or_build_graph(args)
    methods = [name.strip() for name in args.methods.split(",") if name.strip()]
    known = {name.upper() for name in available_methods()}
    for method in methods:
        if method.upper() not in known:
            raise KeyError(f"unknown method {method!r}; available: {available_methods()}")
    seeds = tuple(int(seed) for seed in args.seeds.split(","))
    factories = {method: _detector_factory(method, args.epochs) for method in methods}
    results = compare_methods(factories, graph, n_folds=args.folds, seeds=seeds,
                              verbose=True)
    if args.markdown:
        print(comparison_markdown({graph.name: results}, methods,
                                  title=f"Evaluation on {graph.name}"))
    else:
        rows = table2_rows(graph.name, results, methods)
        print(format_table(TABLE2_HEADERS, rows,
                           title=f"Evaluation on {graph.name} "
                                 f"({args.folds}-fold, seeds {seeds})"))
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    cities = None
    if args.cities:
        cities = tuple(city.strip() for city in args.cities.split(",") if city.strip())
    runners = {
        "table1": lambda: run_table1(cities or ("shenzhen", "fuzhou", "beijing")),
        "table2": lambda: run_table2(cities) if cities else run_table2(),
        "table3": lambda: run_table3(cities) if cities else run_table3(),
        "fig5a": lambda: run_fig5a(cities) if cities else run_fig5a(),
        "fig5b": lambda: run_fig5b(cities) if cities else run_fig5b(),
        "fig6a": lambda: run_fig6a(cities[0]) if cities else run_fig6a(),
        "fig6b": lambda: run_fig6b(cities[0]) if cities else run_fig6b(),
        "fig6c": lambda: run_fig6c(cities[0]) if cities else run_fig6c(),
        "fig7": lambda: run_fig7(cities) if cities else run_fig7(),
    }
    runners[args.experiment]()
    return 0


def cmd_registry(args: argparse.Namespace) -> int:
    registry = DatasetRegistry(args.root)
    if args.materialize:
        for preset in args.materialize.split(","):
            preset = preset.strip()
            if not preset:
                continue
            print(f"materialising {preset} ...")
            registry.materialize_graph(preset)
        registry.save_manifest()
    print(registry.describe())
    return 0
