"""Implementations of the ``repro-uv`` sub-commands.

Each handler takes the parsed ``argparse`` namespace, prints human-readable
output and returns an exit code (``None`` means success).  Handlers are thin:
all real work happens in the library packages so the CLI stays a veneer.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import replace
from typing import Optional

import numpy as np

from ..baselines import available_methods, make_detector
from ..core.cmsf import CMSFDetector
from ..core.config import CMSFConfig
from ..data import (DatasetRegistry, export_predictions_csv, load_city_dir,
                    load_graph_npz, regions_to_geojson, save_city_dir,
                    save_geojson, save_graph_npz)
from ..eval import block_kfold, compare_methods, rank_regions
from ..eval.reporting import TABLE2_HEADERS, format_table, table2_rows
from ..experiments import (run_fig5a, run_fig5b, run_fig6a, run_fig6b, run_fig6c,
                           run_fig7, run_table1, run_table2, run_table3)
from ..analysis import score_drift_report
from ..bench import (LOAD_SCHEMA_VERSION, ExperimentConfig, LoadConfig,
                     WorkloadConfig, derive_cities, format_experiment_table,
                     format_load_report, generate_workload,
                     load_matches_serial_oracle, load_trace,
                     replay_rollout_trace, replay_trace, replays_identical,
                     resume_point, resumed_tail_identical,
                     rollout_replays_identical, run_experiment, run_load,
                     save_trace, summarize_metrics, with_rollout)
from ..durable import DurabilityLog
from ..obs import MetricsRegistry, parse_prometheus_text
from ..nn.graphops import plan_cache_info
from ..serve import (AdmissionConfig, BreakerConfig, ChaosShard, EngineShard,
                     FleetRouter, InferenceEngine, ModelRegistry,
                     RemoteShard, ResilienceConfig, RolloutController,
                     RolloutPolicy, ScoringClient, ScoringServer,
                     read_manifest, save_bundle, stages_for_fraction)
from ..stream import StreamingScorer
from ..synth import (EvolutionConfig, generate_city, generate_evolution,
                     get_preset)
from ..synth.city import SyntheticCity
from ..urg import UrgBuildConfig, build_urg, build_urg_variant
from ..urg.graph import UrbanRegionGraph
from ..urg.image_features import ImageFeatureConfig
from ..viz import comparison_markdown, render_detection_map, render_label_map, render_land_use_map


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def _load_or_generate_city(args: argparse.Namespace) -> SyntheticCity:
    if getattr(args, "city_dir", None):
        return load_city_dir(args.city_dir)
    config = get_preset(args.preset)
    if getattr(args, "seed", None) is not None:
        config = replace(config, seed=args.seed)
    return generate_city(config)


def _load_or_build_graph(args: argparse.Namespace) -> UrbanRegionGraph:
    if getattr(args, "graph", None):
        return load_graph_npz(args.graph)
    city = _load_or_generate_city(args)
    return build_urg(city)


def _detector_factory(method: str, epochs: Optional[int],
                      dtype: Optional[str] = None):
    def make(seed: int):
        if method.upper().startswith("CMSF"):
            config = CMSFConfig()
            if epochs is not None:
                config = config.with_overrides(master_epochs=epochs,
                                               slave_epochs=max(epochs // 4, 5))
            if dtype is not None:
                config = config.with_overrides(dtype=dtype)
            return make_detector(method, seed=seed, cmsf_config=config)
        if dtype is not None and dtype != "float64":
            raise ValueError("--dtype is only supported for CMSF variants; "
                             f"{method!r} always trains in float64")
        return make_detector(method, seed=seed, epochs=epochs)
    return make


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_generate_city(args: argparse.Namespace) -> int:
    city = _load_or_generate_city(args)
    directory = save_city_dir(city, args.output)
    summary = city.summary()
    print(f"wrote city '{city.name}' to {directory}")
    print("  regions: %(regions)d, POIs: %(pois)d, road intersections: "
          "%(road_intersections)d" % summary)
    print("  true UV regions: %(true_uv_regions)d, labelled UV: %(labeled_uv)d, "
          "labelled non-UV: %(labeled_non_uv)d" % summary)
    return 0


def cmd_build_graph(args: argparse.Namespace) -> int:
    city = _load_or_generate_city(args)
    image = ImageFeatureConfig(reduce_dim=args.image_dim if args.image_dim > 0 else None)
    base = UrgBuildConfig(image=image, block_size=args.block_size)
    graph = build_urg_variant(city, args.ablation, base)
    path = save_graph_npz(graph, args.output)
    summary = graph.summary()
    print(f"wrote graph for '{graph.name}' ({args.ablation}) to {path}")
    print("  regions: %(regions)d, undirected edges: %(edges)d, labelled UV: %(uvs)d, "
          "labelled non-UV: %(non_uvs)d" % summary)
    print(f"  POI features: {graph.poi_dim}, image features: {graph.image_dim}")
    return 0


def cmd_show_city(args: argparse.Namespace) -> int:
    city = _load_or_generate_city(args)
    print(render_land_use_map(city))
    print()
    for key, value in city.summary().items():
        print(f"  {key}: {value}")
    if args.labels:
        graph = build_urg(city)
        print()
        print(render_label_map(graph))
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    graph = _load_or_build_graph(args)
    detector = _detector_factory(args.method, args.epochs,
                                 getattr(args, "dtype", None))(args.seed)
    print(f"training {detector.name} on '{graph.name}' "
          f"({len(graph.labeled_indices())} labelled regions) ...")
    detector.fit(graph, graph.labeled_indices())
    scores = detector.predict_proba(graph)

    pool = np.arange(graph.num_nodes)
    detected = rank_regions(detector, graph, pool=pool, top_percent=args.top_percent)
    hits = int(graph.ground_truth[detected].sum())
    print(f"top {args.top_percent:g}% screening list: {detected.size} regions, "
          f"{hits} overlap ground-truth urban villages")
    print(render_detection_map(graph, detected))

    if args.predictions:
        path = export_predictions_csv(graph, scores, args.predictions)
        print(f"wrote ranked predictions to {path}")
    if args.geojson:
        path = save_geojson(regions_to_geojson(graph, scores=scores), args.geojson)
        print(f"wrote region GeoJSON to {path}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    graph = _load_or_build_graph(args)
    methods = [name.strip() for name in args.methods.split(",") if name.strip()]
    known = {name.upper() for name in available_methods()}
    for method in methods:
        if method.upper() not in known:
            raise KeyError(f"unknown method {method!r}; available: {available_methods()}")
    seeds = tuple(int(seed) for seed in args.seeds.split(","))
    factories = {method: _detector_factory(method, args.epochs) for method in methods}
    results = compare_methods(factories, graph, n_folds=args.folds, seeds=seeds,
                              verbose=True)
    if args.markdown:
        print(comparison_markdown({graph.name: results}, methods,
                                  title=f"Evaluation on {graph.name}"))
    else:
        rows = table2_rows(graph.name, results, methods)
        print(format_table(TABLE2_HEADERS, rows,
                           title=f"Evaluation on {graph.name} "
                                 f"({args.folds}-fold, seeds {seeds})"))
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    cities = None
    if args.cities:
        cities = tuple(city.strip() for city in args.cities.split(",") if city.strip())
    runners = {
        "table1": lambda: run_table1(cities or ("shenzhen", "fuzhou", "beijing")),
        "table2": lambda: run_table2(cities) if cities else run_table2(),
        "table3": lambda: run_table3(cities) if cities else run_table3(),
        "fig5a": lambda: run_fig5a(cities) if cities else run_fig5a(),
        "fig5b": lambda: run_fig5b(cities) if cities else run_fig5b(),
        "fig6a": lambda: run_fig6a(cities[0]) if cities else run_fig6a(),
        "fig6b": lambda: run_fig6b(cities[0]) if cities else run_fig6b(),
        "fig6c": lambda: run_fig6c(cities[0]) if cities else run_fig6c(),
        "fig7": lambda: run_fig7(cities) if cities else run_fig7(),
    }
    runners[args.experiment]()
    return 0


def cmd_package(args: argparse.Namespace) -> int:
    # args.seed None keeps the preset's own city seed (unlike `train`, the
    # packaged artifact should default to the canonical city)
    graph = _load_or_build_graph(args)
    detector = _detector_factory(args.method, args.epochs,
                                 getattr(args, "dtype", None))(
        args.seed if args.seed is not None else 0)
    if not isinstance(detector, CMSFDetector):
        raise ValueError(f"only CMSF variants can be packaged into model "
                         f"bundles, not {args.method!r}")
    print(f"training {detector.name} on '{graph.name}' "
          f"({len(graph.labeled_indices())} labelled regions) ...")
    detector.fit(graph, graph.labeled_indices())
    name = args.name or graph.name.lower()
    if args.model_registry:
        registry = ModelRegistry(args.model_registry)
        directory = registry.publish(detector, graph, name, version=args.version)
        registry.save_manifest()
    else:
        directory = save_bundle(detector, args.output, graph, name=name,
                                version=args.version or "1")
    manifest = read_manifest(directory)
    print(f"packaged {manifest.name}:{manifest.version} -> {directory}")
    print(f"  {manifest.describe()}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    registry = ModelRegistry(args.registry)
    if not registry.models():
        raise ValueError(f"model registry at {args.registry} is empty; "
                         "publish a bundle first with 'repro-uv package'")
    admission = None
    if getattr(args, "max_concurrent", None) is not None:
        admission = AdmissionConfig(
            max_concurrency=args.max_concurrent,
            max_queue=getattr(args, "max_queue", 16),
            queue_timeout_s=getattr(args, "queue_timeout", 1.0))
    degraded = bool(getattr(args, "degraded", False))
    try:
        server = ScoringServer(
            registry, host=args.host, port=args.port,
            cache_size=args.cache_size,
            batch_size=args.batch_size if args.batch_size > 0 else None,
            max_workers=args.workers, quiet=not args.verbose,
            wal_dir=args.wal_dir,
            admission=admission, degraded=degraded,
            degraded_max_version_lag=getattr(args, "max_staleness", 8))
    except OSError as error:
        raise ValueError(
            f"cannot bind {args.host}:{args.port}: {error}") from error
    print(f"serving {len(registry.models())} model(s) from {args.registry} "
          f"at {server.url}")
    if args.wal_dir:
        print(f"durability: write-ahead log at {args.wal_dir} "
              "(background checkpointer running)")
    if admission is not None or degraded:
        bits = []
        if admission is not None:
            bits.append(f"admission {admission.max_concurrency} concurrent"
                        f" + {admission.max_queue} queued per endpoint"
                        " (overflow sheds 503 + Retry-After)")
        if degraded:
            bits.append("degraded mode on (stale cached scores, "
                        f"max staleness {getattr(args, 'max_staleness', 8)})")
        print("overload protection: " + ", ".join(bits))
    print("endpoints: GET /healthz /models /models/<name> /streams /stats "
          "/metrics  POST /score /update /evict  (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
    return 0


def cmd_score(args: argparse.Namespace) -> int:
    graph = _load_or_build_graph(args)
    client = ScoringClient(args.url)
    response = client.score(graph, args.model, version=args.version,
                            top_percent=args.top_percent,
                            threshold=args.threshold)
    scores = np.asarray(response["probabilities"], dtype=np.float64)
    print(f"scored '{graph.name}' ({graph.num_nodes} regions) with "
          f"{response.get('model', args.model)}:{response.get('version', '?')} "
          f"in {response['elapsed_ms']:.1f} ms "
          f"({'cache hit' if response['cache_hit'] else 'cold'})")
    cache = response.get("cache", {})
    if cache:
        print("  engine cache: %(hits)d hits / %(misses)d misses "
              "(hit rate %(hit_rate).2f)" % cache)
    if args.top_percent is not None:
        selected = response.get("selected") or []
        print(f"  top {args.top_percent:g}% shortlist: {len(selected)} regions")
    if args.threshold is not None:
        predictions = response.get("predictions") or []
        print(f"  regions over threshold {args.threshold:g}: {sum(predictions)}")
    if args.predictions:
        path = export_predictions_csv(graph, scores, args.predictions)
        print(f"wrote ranked predictions to {path}")
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Drive an evolving-city scenario and report the score drift.

    The graph evolves through a seeded delta sequence; each step is pushed
    incrementally (never re-uploading the whole graph) either to a remote
    scoring service (``--url``) or through an in-process engine loaded
    from a model registry (``--registry``).
    """
    graph = _load_or_build_graph(args)
    scenarios = tuple(name.strip() for name in args.scenarios.split(",")
                      if name.strip())
    overrides = {"scenarios": scenarios} if scenarios else {}
    config = EvolutionConfig(steps=args.steps, seed=args.evolution_seed,
                             **overrides)
    deltas = generate_evolution(graph, config)
    if not deltas:
        raise ValueError("the evolution produced no applicable deltas for "
                         f"'{graph.name}' (scenarios: {args.scenarios})")
    print(f"evolving '{graph.name}' ({graph.num_nodes} regions) through "
          f"{len(deltas)} deltas (seed {args.evolution_seed}): "
          + ", ".join(delta.kind for delta in deltas))

    trajectories = []
    kinds = [delta.kind for delta in deltas]
    topology = [delta.touches_topology for delta in deltas]
    plan_info = None
    if args.url:
        if args.wal_dir:
            raise ValueError(
                "--wal-dir only applies to in-process streams; the server "
                "owns durability when --url is used — start it with "
                "'repro-uv serve --wal-dir' instead")
        client = ScoringClient(args.url)
        stream = args.stream or f"{graph.name.lower()}-evolution"
        opened = client.open_stream(stream, graph, args.model,
                                    version=args.version,
                                    incremental=args.incremental)
        trajectories.append(np.asarray(opened["score"]["probabilities"]))
        reused = incremental = 0
        for delta in deltas:
            response = client.update_stream(stream, delta)
            trajectories.append(np.asarray(response["score"]["probabilities"]))
            reused += int(bool(response.get("plan_reused")))
            incremental += int(response.get("mode") == "incremental")
        stats = response.get("stats", {})
        print(f"stream '{stream}' now at version {response['version']} "
              f"({response['num_regions']} regions); plan reused on "
              f"{reused}/{len(deltas)} updates, incremental rescore on "
              f"{incremental}/{len(deltas)}")
        if args.stats:
            plan_info = client.stats().get("plan_cache", {})
    else:
        registry = ModelRegistry(args.registry)
        engine = InferenceEngine.from_bundle(registry.resolve(args.model,
                                                              args.version))
        wal = None
        if args.wal_dir:
            name = args.stream or f"{graph.name.lower()}-evolution"
            wal = DurabilityLog(args.wal_dir, fsync=args.fsync).stream(name)
            print(f"durability: appending deltas to {args.wal_dir} "
                  f"(stream '{name}', fsync={args.fsync})")
        # warm=True scores the initial version while also priming the
        # incremental activation cache, so the first delta is already fast
        scorer = StreamingScorer(engine, graph, warm=True,
                                 incremental=args.incremental, wal=wal)
        trajectories.append(scorer.predict_proba())
        for delta in deltas:
            update = scorer.update(delta)
            trajectories.append(update.probabilities)
        stats = scorer.stats.to_dict()
        print(f"scored {stats['updates']} updates in-process; plan reused "
              f"on {stats['plan_reuses']}, rebuilt on "
              f"{stats['plan_rebuilds']}; incremental rescore on "
              f"{stats['incremental_rescores']}/{stats['rescores']} scores")
        if args.stats:
            plan_info = plan_cache_info()
    if args.stats:
        print()
        print("plan cache: " + ", ".join(
            f"{key}={value}" for key, value in sorted((plan_info or {}).items())))
        print("stream counters: " + ", ".join(
            f"{key}={value}" for key, value in sorted(stats.items())))

    report = score_drift_report(trajectories, kinds=kinds, topology=topology,
                                threshold=args.threshold)
    print()
    print(report.format())
    if args.json:
        payload = report.to_dict()
        payload["city"] = graph.name
        payload["stats"] = stats
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote drift report to {args.json}")
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    """Generate and record a deterministic workload trace."""
    graph = _load_or_build_graph(args)
    cities = derive_cities(graph, args.cities, seed=args.workload_seed)
    scenarios = tuple(name.strip() for name in args.scenarios.split(",")
                      if name.strip())
    overrides = {"scenarios": scenarios} if scenarios else {}
    config = WorkloadConfig(ops=args.ops, seed=args.workload_seed,
                            score_weight=args.score_weight,
                            update_weight=args.update_weight,
                            evict_weight=args.evict_weight, **overrides)
    trace = generate_workload(cities, config)
    path = save_trace(trace, args.output)
    summary = trace.summary()
    print(f"recorded trace '{trace.name}' to {path}")
    print("  cities: %(cities)d, ops: %(ops)d "
          "(score %(score)d / update %(update)d / evict %(evict)d)" % summary)
    for name, city in cities.items():
        print(f"  {name}: {city.num_nodes} regions, "
              f"routing key {city.structural_fingerprint()[:12]}")
    return 0


def _format_resilience_line(status: dict) -> str:
    """One greppable line summarising a fleet's resilience state."""
    parts = [f"{shard_id}:{entry['state']}(trips={entry['trips']})"
             for shard_id, entry in sorted(status["breakers"].items())]
    budget = status["retry_budget"]
    line = ("resilience: breakers [" + ", ".join(parts) + "], "
            f"retry budget {budget['balance']:.1f}/"
            f"{budget['capacity']:.0f} (denied={budget['retries_denied']})")
    if "admission" in status:
        admission = status["admission"]
        line += (f", admission shed={admission['shed_total']}"
                 f"/{admission['attempts']} attempts")
    if "stale_cache" in status:
        cache = status["stale_cache"]
        line += f", degraded served={cache['served']}"
    return line


def _resilience_from_args(
        args: argparse.Namespace) -> Optional[ResilienceConfig]:
    """Build a :class:`ResilienceConfig` from CLI flags, or None.

    Returns None when no resilience-related flag was given, keeping the
    router on its defaults (breakers + retry budget only).  A
    ``--chaos slow-shard`` run tunes the breaker's explicit latency
    threshold to half the injected delay so the gray failure reliably
    trips it.
    """
    max_concurrent = getattr(args, "max_concurrent", None)
    degraded = bool(getattr(args, "degraded", False))
    chaos = getattr(args, "chaos", None)
    if max_concurrent is None and not degraded and chaos is None:
        return None
    admission = None
    if max_concurrent is not None:
        admission = AdmissionConfig(
            max_concurrency=max_concurrent,
            max_queue=getattr(args, "max_queue", 16),
            queue_timeout_s=getattr(args, "queue_timeout", 1.0))
    breaker = BreakerConfig()
    if chaos == "slow-shard":
        threshold = max(0.001,
                        getattr(args, "chaos_latency_ms", 80.0) / 2000.0)
        breaker = BreakerConfig(latency_threshold_s=threshold,
                                latency_violations=3,
                                backoff_initial_s=0.1, backoff_max_s=2.0)
    elif chaos is not None:
        breaker = BreakerConfig(backoff_initial_s=0.1, backoff_max_s=2.0)
    return ResilienceConfig(breaker=breaker, admission=admission,
                            degraded=degraded, probe_interval_s=0.1)


def _build_fleet(args: argparse.Namespace, registry: ModelRegistry,
                 metrics: Optional[MetricsRegistry] = None,
                 wal: Optional[DurabilityLog] = None,
                 shards_override: Optional[int] = None,
                 replication_override: Optional[int] = None) -> FleetRouter:
    urls = [url.strip() for url in (getattr(args, "urls", None) or "").split(",")
            if url.strip()]
    timeout = getattr(args, "timeout", None)
    num_shards = shards_override if shards_override is not None else args.shards
    replication = (replication_override if replication_override is not None
                   else args.replication)
    chaos_mode = getattr(args, "chaos", None)
    chaos_index = (getattr(args, "chaos_shard", 0) % num_shards
                   if chaos_mode is not None else None)
    shards = []
    for i in range(num_shards):
        if urls:
            shard = RemoteShard(urls[i % len(urls)], args.model,
                                version=args.version, shard_id=f"shard-{i}",
                                timeout=timeout if timeout else 30.0)
        else:
            engine = InferenceEngine.from_bundle(
                registry.resolve(args.model, args.version),
                cache_size=args.cache_size, metrics=metrics)
            shard = EngineShard(engine, shard_id=f"shard-{i}")
        if getattr(args, "kill_shard", None) is not None \
                and args.kill_shard == i:
            shard = ChaosShard(shard, fail_after=args.kill_after)
        elif chaos_index == i:
            chaos = ChaosShard(shard, seed=getattr(args, "workload_seed", 0))
            if chaos_mode == "slow-shard":
                chaos.set_latency(getattr(args, "chaos_latency_ms", 80.0)
                                  / 1000.0)
            elif chaos_mode == "flaky":
                chaos.set_flaky(getattr(args, "chaos_flaky_rate", 0.2))
            elif chaos_mode == "kill":
                chaos.fail_after = getattr(args, "kill_after", 5)
            shard = chaos
        shards.append(shard)
    return FleetRouter(shards, replication=replication, metrics=metrics,
                       wal=wal, request_timeout=timeout,
                       resilience=_resilience_from_args(args))


def cmd_fleet(args: argparse.Namespace) -> int:
    """Replay a workload trace against a sharded fleet and report stats."""
    if args.kill_shard is not None:
        if args.replication < 2:
            raise ValueError("--kill-shard needs --replication >= 2, "
                             "otherwise the killed shard has no failover "
                             "replica")
        if not 0 <= args.kill_shard < args.shards:
            raise ValueError(f"--kill-shard {args.kill_shard} is out of "
                             f"range for {args.shards} shard(s)")
    if args.restore:
        if not args.wal_dir:
            raise ValueError("--restore needs --wal-dir: recovery replays "
                             "the write-ahead log recorded by a previous "
                             "'repro-uv fleet --wal-dir' run")
        if not args.trace:
            raise ValueError("--restore needs --trace: the original trace "
                             "file locates the resume point and supplies "
                             "the remaining ops")
    registry = ModelRegistry(args.registry)
    if args.trace:
        trace = load_trace(args.trace)
    else:
        graph = _load_or_build_graph(args)
        cities = derive_cities(graph, max(2, min(args.shards, 3)),
                               seed=args.workload_seed)
        trace = generate_workload(cities, WorkloadConfig(
            ops=args.ops, seed=args.workload_seed))
    summary = trace.summary()
    print(f"replaying trace '{trace.name}': %(cities)d cities, %(ops)d ops "
          "(score %(score)d / update %(update)d / evict %(evict)d) "
          % summary + f"against {args.shards} shard(s), "
          f"replication {args.replication}")

    # a fresh registry so the scrape below shows this replay's traffic
    # only, not whatever else the process has served
    obs = MetricsRegistry()
    wal = None
    if args.wal_dir:
        wal = DurabilityLog(args.wal_dir, fsync=args.fsync, metrics=obs)
        print(f"durability: write-ahead log at {args.wal_dir} "
              f"(fsync={args.fsync})")
    fleet = _build_fleet(args, registry, metrics=obs, wal=wal)
    # per-open option rather than a shard default, so the incremental
    # policy reaches remote shards (server-side streams) as well as
    # in-process ones — and the oracle replays under the same policy
    open_options = {"incremental": args.incremental}
    start = 0
    if args.restore:
        report = fleet.restore()
        for name, entry in sorted(report.items()):
            line = (f"  restored '{name}' on {entry['shard']}: "
                    f"version {entry['version']} (snapshot seq "
                    f"{entry['snapshot_seq']}, replayed "
                    f"{entry['records_replayed']} record(s), "
                    f"{entry['recovery_seconds'] * 1000:.1f} ms)")
            if entry["truncated_tail"]:
                line += " [torn tail truncated]"
            print(line)
        versions = {name: entry["version"] for name, entry in report.items()}
        start = resume_point(trace, versions)
        print(f"resuming trace '{trace.name}' at op {start}/{len(trace)}")
        result = replay_trace(trace, fleet, open_options=open_options,
                              collect_stats=False, start_at=start,
                              open_cities=False)
    else:
        # fleet.stats() runs below anyway — don't aggregate (and, with
        # remote shards, round-trip /stats) twice
        result = replay_trace(trace, fleet, open_options=open_options,
                              collect_stats=False)
    print(f"completed {result.completed_ops}/{len(trace) - start} ops in "
          f"{result.elapsed_s:.2f}s ({result.ops_per_second:.1f} ops/s)")
    metrics_summary = summarize_metrics(parse_prometheus_text(obs.render()))
    latency = metrics_summary["fleet"]["latency"]
    if latency["count"]:
        print("latency: " + ", ".join(
            f"{key.replace('_ms', '')}={latency[key]:.2f}ms"
            for key in ("p50_ms", "p95_ms", "p99_ms")
            if latency[key] is not None))
    stats = fleet.stats()
    fleet_counters = stats["fleet"]
    totals = stats["totals"]
    print("fleet: " + ", ".join(
        f"{key}={fleet_counters[key]}"
        for key in ("requests", "failovers", "shard_failures",
                    "reopened_streams", "no_replica_errors")))
    print(_format_resilience_line(fleet.resilience_status()))
    print("totals: cache hits=%(hits)d misses=%(misses)d "
          "(hit rate %(hit_rate).2f)" % totals["cache"]
          + f", cold_computes={totals['cold_computes']}"
          + f", stampedes_avoided={totals['stampedes_avoided']}")
    counters = totals["stream_counters"]
    if counters:
        print("streams: " + ", ".join(
            f"{key}={value}" for key, value in sorted(counters.items())))
    for entry in stats["shards"]:
        cache = (entry.get("engine") or {}).get("cache", {})
        print(f"  shard {entry['shard']}: "
              f"{'healthy' if entry['healthy'] else 'DOWN'}, "
              f"{len(entry.get('streams', []))} stream(s), "
              f"{cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses")

    exit_code = 0
    if args.restore:
        # replay the whole trace uninterrupted on a single engine and
        # compare the resumed tail against its tail — recovery must be
        # invisible in the float64 score trajectory
        oracle = EngineShard(
            InferenceEngine.from_bundle(
                registry.resolve(args.model, args.version)),
            shard_id="oracle")
        oracle_result = replay_trace(trace, oracle, collect_stats=False,
                                     open_options=open_options)
        identical, max_diff = resumed_tail_identical(oracle_result, result,
                                                     start)
        print(f"resumed tail vs uninterrupted single-engine oracle: "
              f"bit_identical={identical} max_diff={max_diff:.3e}")
        if not identical:
            exit_code = 1
    elif args.verify_single:
        oracle = EngineShard(
            InferenceEngine.from_bundle(
                registry.resolve(args.model, args.version)),
            shard_id="oracle")
        oracle_result = replay_trace(trace, oracle, collect_stats=False,
                                     open_options=open_options)
        identical, max_diff = replays_identical(oracle_result, result)
        print(f"scores bit-identical to single-engine oracle: "
              f"{'yes' if identical else 'NO'} (max |diff| {max_diff:.3e})")
        if not identical:
            exit_code = 1
    if args.json:
        payload = {"trace": summary, "replay": result.summary(),
                   "stats": stats, "metrics": metrics_summary}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
        print(f"wrote fleet report to {args.json}")
    return exit_code


def cmd_load(args: argparse.Namespace) -> int:
    """Open-loop concurrent load runs across fleet sizes, with scaling."""
    registry = ModelRegistry(args.registry)
    if args.trace:
        trace = load_trace(args.trace)
    else:
        graph = _load_or_build_graph(args)
        cities = derive_cities(graph, args.cities, seed=args.workload_seed)
        trace = generate_workload(cities, WorkloadConfig(
            ops=args.ops, seed=args.workload_seed,
            score_weight=args.score_weight,
            update_weight=args.update_weight,
            evict_weight=args.evict_weight))
    sizes = [int(size) for size in args.shards.split(",") if size.strip()]
    if not sizes:
        raise ValueError("--shards needs at least one fleet size")
    summary = trace.summary()
    mode = (f"open-loop {args.arrival_rate:g} ops/s" if args.arrival_rate
            else "closed-loop saturation")
    if getattr(args, "deadline_ms", None):
        mode += f", {args.deadline_ms:g}ms deadline/op"
    if getattr(args, "chaos", None):
        mode += f", chaos={args.chaos} on shard {args.chaos_shard}"
    print(f"loading trace '{trace.name}': %(cities)d cities, %(ops)d ops "
          "(score %(score)d / update %(update)d / evict %(evict)d) " % summary
          + f"with {args.workers} workers, {mode}, "
          f"warm-up {args.warmup} op(s)/worker")

    config = LoadConfig(workers=args.workers,
                        arrival_rate=args.arrival_rate or None,
                        warmup_ops=args.warmup,
                        deadline_ms=getattr(args, "deadline_ms", None),
                        open_options={"incremental": args.incremental})
    oracle = None
    if args.verify_single:
        oracle_shard = EngineShard(
            InferenceEngine.from_bundle(
                registry.resolve(args.model, args.version)),
            shard_id="oracle")
        # digest mode: bit-identity without retaining O(ops x N) arrays
        oracle = replay_trace(trace, oracle_shard, collect_stats=False,
                              keep_scores=False,
                              open_options=dict(config.open_options))
        oracle_shard.close()

    exit_code = 0
    runs = []
    for size in sizes:
        replication = max(1, min(args.replication, size))
        obs = MetricsRegistry()
        fleet = _build_fleet(args, registry, metrics=obs,
                             shards_override=size,
                             replication_override=replication)
        result = run_load(trace, fleet, config, metrics=obs)
        run_summary = result.summary()
        run_summary["shards"] = size
        run_summary["replication"] = replication
        print()
        print(f"--- {size} shard(s), replication {replication} ---")
        print(format_load_report(run_summary))
        if getattr(args, "chaos", None) is not None:
            victim = f"shard-{args.chaos_shard % size}"
            chaos = fleet.backend(victim)
            transitions = fleet.breaker_transitions(victim)
            print(f"chaos[{args.chaos}] on {victim}: "
                  f"slow_calls={chaos.slow_calls} "
                  f"failed_calls={chaos.failed_calls} "
                  f"breaker_transitions={transitions}")
            # end-of-run recovery: clear the fault and give the
            # background prober a bounded window to close the breaker
            chaos.clear_chaos()
            give_up = time.monotonic() + 5.0
            while time.monotonic() < give_up and fleet.down_shards():
                time.sleep(0.05)
            down = fleet.down_shards()
            print("chaos cleared: "
                  + ("all breakers closed (auto-revived)" if not down
                     else f"breakers still open: {down}"))
        status = fleet.resilience_status()
        print(_format_resilience_line(status))
        run_summary["resilience"] = status
        fleet.close()
        if oracle is not None:
            identical, mismatches = load_matches_serial_oracle(
                trace, result, oracle)
            run_summary["bit_identical_to_oracle"] = identical
            print(f"digests bit-identical to serial 1-shard oracle: "
                  f"{'yes' if identical else 'NO'}")
            if not identical:
                for line in mismatches[:5]:
                    print(f"  {line}")
                exit_code = 1
        runs.append(run_summary)

    scaling = None
    if len(runs) > 1:
        base, top = runs[0], runs[-1]
        base_tp = base["throughput"]["score_ops_per_s"]
        top_tp = top["throughput"]["score_ops_per_s"]
        ratio = round(top_tp / base_tp, 3) if base_tp else None
        scaling = {"baseline_shards": base["shards"],
                   "top_shards": top["shards"],
                   "score_throughput_ratio": ratio}
        print()
        if ratio is not None:
            # grep target of the CI smoke job — keep the shape stable
            print(f"scaling: score throughput x{ratio:.2f} at "
                  f"{top['shards']} shard(s) vs {base['shards']}")
        if args.min_scaling is not None:
            if ratio is None or ratio < args.min_scaling:
                print(f"FAILED scaling gate: x{ratio} < "
                      f"required x{args.min_scaling}")
                exit_code = 1
    if args.json:
        payload = {"schema_version": LOAD_SCHEMA_VERSION,
                   "trace": summary, "runs": runs, "scaling": scaling}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote load report to {args.json}")
    return exit_code


def cmd_rollout(args: argparse.Namespace) -> int:
    """Staged canary rollout of a new bundle version over a live fleet."""
    registry = ModelRegistry(args.registry)
    # resolve both versions up front: a typo'd --new-version must fail
    # before any stream opens, not halfway up the stage ladder
    baseline_version = read_manifest(
        registry.resolve(args.model, args.version)).version
    registry.resolve(args.model, args.new_version)
    if str(args.new_version) == str(baseline_version):
        raise ValueError(f"--new-version {args.new_version} is already the "
                         f"serving baseline — nothing to roll out")

    if args.trace:
        trace = load_trace(args.trace)
    else:
        graph = _load_or_build_graph(args)
        cities = derive_cities(graph, args.cities, seed=args.workload_seed)
        trace = generate_workload(cities, WorkloadConfig(
            ops=args.ops, seed=args.workload_seed))
    if not any(op.op == "rollout" for op in trace.ops):
        trace = with_rollout(trace, args.rollout_at)

    policy = RolloutPolicy(
        max_mean_abs_change=args.max_mean_abs_change,
        min_rank_correlation=args.min_rank_correlation,
        max_crossing_fraction=args.max_crossing_fraction,
        min_pairs=args.min_pairs)
    stages = stages_for_fraction(args.canary_fraction)

    def run_once(obs: MetricsRegistry):
        fleet = _build_fleet(args, registry, metrics=obs)

        def resolve(model, version):
            return InferenceEngine.from_bundle(
                registry.resolve(model, version),
                cache_size=args.cache_size, metrics=obs)

        controller = RolloutController(
            fleet, args.model, str(args.new_version),
            resolve_engine=resolve, policy=policy, stages=stages,
            seed=args.rollout_seed, auto=args.auto_promote,
            threshold=args.threshold, metrics=obs)
        result = replay_rollout_trace(
            trace, controller, collect_stats=False,
            open_options={"incremental": args.incremental})
        return fleet, controller, result

    summary = trace.summary()
    ladder = " -> ".join(f"{stage * 100:g}%" for stage in stages)
    print(f"rolling out '{args.model}:{args.new_version}' over baseline "
          f"'{args.model}:{baseline_version}': {args.shards} shard(s), "
          f"replication {args.replication}, stages {ladder}, canary seed "
          f"{args.rollout_seed}, "
          f"{'auto' if args.auto_promote else 'manual'} promotion")
    print(f"replaying trace '{trace.name}': %(cities)d cities, %(ops)d ops "
          "(score %(score)d / update %(update)d / evict %(evict)d, rollout "
          "at op %(rollout_at)d)"
          % {**summary, "rollout_at": trace.meta.get("rollout_at", 0)})

    obs = MetricsRegistry()
    fleet, controller, result = run_once(obs)
    if not args.auto_promote and controller.machine.state == "canary":
        decision = controller.evaluate(act=True)
        print(f"post-replay policy decision: {decision.action} "
              f"({'; '.join(decision.reasons)})")
    if args.abort and controller.machine.state == "canary":
        report = controller.abort()
        print(f"rollout aborted: restored "
              f"{len(report['restored_streams'])} stream(s) to "
              f"'{args.model}:{baseline_version}'")

    canary_requests = sum(1 for d in result.decisions if d["canary"])
    print(f"completed {result.completed_ops}/{len(trace)} ops in "
          f"{result.elapsed_s:.2f}s — {len(result.decisions)} score "
          f"request(s), {canary_requests} canary")
    for frm, to, stage in controller.machine.transitions:
        if to == "canary" and frm == "idle":
            print(f"rollout started: stage {stage} "
                  f"({stages[stage] * 100:g}% canary)")
        elif to == "canary" and frm == "canary":
            # grep target of the CI smoke job — keep the shape stable
            print(f"promoted to stage {stage} "
                  f"({stages[stage] * 100:g}% canary)")
        elif to == "promoted":
            print("promoted fleet-wide (100% canary held)")
        elif to == "rolled_back":
            print(f"rolled back: baseline '{args.model}:{baseline_version}' "
                  f"restored fleet-wide")
    status = controller.status()
    for index, stage_stats in enumerate(status["stage_history"]):
        print(f"  stage {index} drift: {stage_stats['pairs']} pair(s), "
              f"mean|Δp|={stage_stats['mean_abs_change']:.5f}, "
              f"worst rank-ρ={stage_stats['worst_rank_correlation']:.4f}, "
              f"crossing fraction={stage_stats['crossing_fraction']:.4f}")
    if status["last_decision"] is not None:
        last = status["last_decision"]
        print(f"last policy decision: {last['action']} "
              f"({'; '.join(last['reasons'])})")
    shadow_pairs = (sum(s["pairs"] for s in status["stage_history"])
                    + status["shadow"]["pairs"])
    # grep target of the CI smoke job — keep the shape stable
    print(f"rollout result: state={status['state']} "
          f"promoted={status['promoted']} "
          f"rolled_back={status['rolled_back']} "
          f"aborted={status['aborted']} "
          f"shadow_pairs={shadow_pairs} "
          f"swaps={len(status['swapped_streams'])} "
          f"rollbacks={status['rollbacks']}")
    fleet.close()

    exit_code = 0
    verify = None
    if args.verify_replay:
        obs2 = MetricsRegistry()
        fleet2, _, result2 = run_once(obs2)
        fleet2.close()
        identical, max_diff = rollout_replays_identical(result, result2)
        decisions_match = result.decisions == result2.decisions
        print(f"replay determinism: bit_identical={identical} "
              f"canary_decisions_identical={decisions_match} "
              f"(max |diff| {max_diff:.3e})")
        verify = {"bit_identical": identical,
                  "canary_decisions_identical": decisions_match,
                  "max_diff": max_diff}
        if not identical:
            exit_code = 1
    if args.json:
        payload = {"trace": summary, "stages": list(stages),
                   "baseline_version": str(baseline_version),
                   "new_version": str(args.new_version),
                   "policy": policy.to_dict(), "status": status,
                   "replay": result.summary(), "verify": verify}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
        print(f"wrote rollout report to {args.json}")
    return exit_code


def cmd_experiment(args: argparse.Namespace) -> int:
    """Sweep fleet size x replication over workload traces and report."""
    registry = ModelRegistry(args.registry)
    bundle_dir = registry.resolve(args.model, args.version)
    if args.trace:
        traces = [load_trace(path.strip())
                  for path in args.trace.split(",") if path.strip()]
    else:
        graph = _load_or_build_graph(args)
        cities = derive_cities(graph, args.cities, seed=args.workload_seed)
        traces = [generate_workload(cities, WorkloadConfig(
            ops=args.ops, seed=args.workload_seed))]
    fleet_sizes = tuple(int(size) for size in args.fleet_sizes.split(",")
                        if size.strip())
    replications = tuple(int(repl) for repl in args.replications.split(",")
                         if repl.strip())
    config = ExperimentConfig(fleet_sizes=fleet_sizes,
                              replications=replications,
                              cache_size=args.cache_size,
                              incremental=args.incremental,
                              verify_identical=not args.no_verify)
    print(f"sweeping fleet sizes {sorted(set(fleet_sizes))} x replications "
          f"{sorted(set(replications))} over "
          f"{len(traces)} trace(s) with model '{args.model}'")
    report = run_experiment(bundle_dir, traces, config, model=args.model)
    print()
    print(format_experiment_table(report))

    exit_code = 0
    if config.verify_identical:
        diverged = [cell["cell"] for cell in report["cells"]
                    if not cell["bit_identical_to_baseline"]]
        if diverged:
            print(f"DIVERGED from per-trace baseline: {', '.join(diverged)}")
            exit_code = 1
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote experiment report to {args.output}")
    return exit_code


def cmd_registry(args: argparse.Namespace) -> int:
    registry = DatasetRegistry(args.root)
    if args.materialize:
        for preset in args.materialize.split(","):
            preset = preset.strip()
            if not preset:
                continue
            print(f"materialising {preset} ...")
            registry.materialize_graph(preset)
        registry.save_manifest()
    print(registry.describe())
    return 0
