"""Common detector interface shared by CMSF and every baseline.

Every urban-village detector in this package — the paper's CMSF, its
ablation variants and the seven comparison baselines of Table II — exposes
the same minimal interface so the evaluation protocol, the efficiency
benchmark and the examples can treat them interchangeably:

* :meth:`DetectorBase.fit` trains on an :class:`~repro.urg.graph.UrbanRegionGraph`
  using only the given labelled node indices;
* :meth:`DetectorBase.predict_proba` returns a UV probability for **every**
  node of the graph;
* :meth:`DetectorBase.num_parameters` reports model size for Table III.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .urg.graph import UrbanRegionGraph


class DetectorBase:
    """Abstract base class for urban-village detectors."""

    #: human-readable name used in result tables
    name: str = "detector"

    def fit(self, graph: UrbanRegionGraph, train_indices: np.ndarray) -> "DetectorBase":
        """Train on the labelled regions listed in ``train_indices``."""
        raise NotImplementedError

    def predict_proba(self, graph: UrbanRegionGraph) -> np.ndarray:
        """Return the predicted UV probability for every node in ``graph``."""
        raise NotImplementedError

    def predict(self, graph: UrbanRegionGraph, threshold: float = 0.5) -> np.ndarray:
        """Binary prediction obtained by thresholding :meth:`predict_proba`."""
        return (self.predict_proba(graph) >= threshold).astype(np.int64)

    def num_parameters(self) -> int:
        """Number of trainable scalar parameters (0 if not yet built)."""
        return 0

    def check_fitted(self) -> None:
        """Raise ``RuntimeError`` if the detector has not been fitted."""
        if not getattr(self, "_fitted", False):
            raise RuntimeError(f"{type(self).__name__} must be fitted before prediction")

    def _mark_fitted(self) -> None:
        self._fitted = True

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def validate_train_indices(graph: UrbanRegionGraph, train_indices: np.ndarray,
                           allow_empty: bool = False) -> np.ndarray:
    """Validate and normalise the labelled training indices of a fit call."""
    train_indices = np.asarray(train_indices, dtype=np.int64).reshape(-1)
    if not allow_empty and train_indices.size == 0:
        raise ValueError("training requires at least one labelled region")
    if train_indices.size:
        if train_indices.min() < 0 or train_indices.max() >= graph.num_nodes:
            raise ValueError("train_indices out of range for graph with %d nodes"
                             % graph.num_nodes)
        labels = graph.labels[train_indices]
        if np.any(labels < 0):
            raise ValueError("train_indices must reference labelled regions only")
    return train_indices
