"""Dependency-free text visualisation utilities.

The paper presents its qualitative results as city maps (Figure 7) and its
quantitative results as tables and curves (Tables I-III, Figures 5-6).  This
subpackage renders the same artefacts as plain text so they can be produced
in any environment — terminals, CI logs, benchmark output files — without a
plotting stack:

* :mod:`repro.viz.ascii_map` — city land-use maps, label maps, detection
  maps and cluster maps drawn with one character per region grid cell;
* :mod:`repro.viz.charts` — horizontal bar charts, line plots, sparklines
  and histograms rendered with unicode block characters;
* :mod:`repro.viz.report` — markdown rendering of experiment results
  (Table II comparisons, ablation summaries, training curves).
"""

from .ascii_map import (MapLegend, render_cluster_map, render_detection_map,
                        render_label_map, render_land_use_map, render_score_map)
from .charts import bar_chart, histogram, line_plot, sparkline
from .report import (ablation_markdown, comparison_markdown, markdown_table,
                     series_markdown, training_curve_report)

__all__ = [
    "MapLegend",
    "render_land_use_map",
    "render_label_map",
    "render_detection_map",
    "render_cluster_map",
    "render_score_map",
    "bar_chart",
    "line_plot",
    "sparkline",
    "histogram",
    "markdown_table",
    "ablation_markdown",
    "comparison_markdown",
    "series_markdown",
    "training_curve_report",
]
