"""Text-based charts (bar charts, line plots, sparklines, histograms).

The benchmark harness regenerates the paper's figures as numeric series;
these helpers render those series for terminals and log files.  All functions
return plain strings and never print.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: Unicode blocks from empty to full, used by sparklines and histograms.
BLOCKS = " ▁▂▃▄▅▆▇█"


def _to_float_array(values: Sequence[float]) -> np.ndarray:
    array = np.asarray(list(values), dtype=np.float64)
    if array.ndim != 1:
        raise ValueError("expected a 1-D sequence of numbers")
    return array


def bar_chart(labels: Sequence[str], values: Sequence[float], width: int = 40,
              title: Optional[str] = None, value_format: str = "{:.3f}") -> str:
    """Horizontal bar chart with one labelled row per value.

    Used for the Figure 5 ablation bars: one bar per variant / data source.
    """
    values = _to_float_array(values)
    labels = [str(label) for label in labels]
    if len(labels) != values.size:
        raise ValueError("labels and values must have the same length")
    if values.size == 0:
        return title or ""
    finite = values[np.isfinite(values)]
    top = float(finite.max()) if finite.size else 1.0
    top = top if top > 0 else 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if not np.isfinite(value):
            bar, rendered = "", "n/a"
        else:
            bar = "█" * max(int(round(width * value / top)), 0)
            rendered = value_format.format(value)
        lines.append(f"{label.rjust(label_width)} | {bar} {rendered}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a numeric series (e.g. a training loss curve)."""
    values = _to_float_array(values)
    if values.size == 0:
        return ""
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return " " * values.size
    low, high = float(finite.min()), float(finite.max())
    span = max(high - low, 1e-12)
    chars = []
    for value in values:
        if not np.isfinite(value):
            chars.append(" ")
            continue
        level = (value - low) / span
        chars.append(BLOCKS[1 + int(round(level * (len(BLOCKS) - 2)))])
    return "".join(chars)


def line_plot(xs: Sequence[float], ys: Sequence[float], width: int = 60,
              height: int = 12, title: Optional[str] = None,
              x_label: str = "x", y_label: str = "y") -> str:
    """Scatter-style line plot on a character canvas.

    Used for the Figure 6 sensitivity curves (AUC as a function of K, lambda
    or the labelled-data ratio).
    """
    xs = _to_float_array(xs)
    ys = _to_float_array(ys)
    if xs.size != ys.size:
        raise ValueError("xs and ys must have the same length")
    if xs.size == 0:
        return title or ""
    valid = np.isfinite(xs) & np.isfinite(ys)
    if not valid.any():
        return title or ""
    x_low, x_high = float(xs[valid].min()), float(xs[valid].max())
    y_low, y_high = float(ys[valid].min()), float(ys[valid].max())
    x_span = max(x_high - x_low, 1e-12)
    y_span = max(y_high - y_low, 1e-12)
    canvas = np.full((height, width), " ", dtype="<U1")
    order = np.argsort(xs)
    previous = None
    for index in order:
        if not valid[index]:
            continue
        col = int(round((xs[index] - x_low) / x_span * (width - 1)))
        row = height - 1 - int(round((ys[index] - y_low) / y_span * (height - 1)))
        canvas[row, col] = "o"
        if previous is not None:
            # Connect consecutive points with a sparse straight segment.
            prev_row, prev_col = previous
            steps = max(abs(col - prev_col), abs(row - prev_row))
            for step in range(1, steps):
                interp_col = prev_col + round(step * (col - prev_col) / steps)
                interp_row = prev_row + round(step * (row - prev_row) / steps)
                if canvas[interp_row, interp_col] == " ":
                    canvas[interp_row, interp_col] = "·"
        previous = (row, col)
    lines = [title] if title else []
    lines.append(f"{y_high:.3f} ┐")
    for row in canvas:
        lines.append("       │" + "".join(row))
    lines.append(f"{y_low:.3f} ┘" )
    lines.append(f"        {x_label}: [{x_low:g} .. {x_high:g}]   {y_label} on the vertical axis")
    return "\n".join(lines)


def histogram(values: Sequence[float], bins: int = 10, width: int = 40,
              title: Optional[str] = None) -> str:
    """Text histogram of a numeric sample (e.g. node degree distribution)."""
    values = _to_float_array(values)
    values = values[np.isfinite(values)]
    if values.size == 0:
        return title or ""
    counts, edges = np.histogram(values, bins=bins)
    top = max(int(counts.max()), 1)
    lines = [title] if title else []
    for count, low, high in zip(counts, edges[:-1], edges[1:]):
        bar = "█" * int(round(width * count / top))
        lines.append(f"[{low:9.3f}, {high:9.3f}) | {bar} {count}")
    return "\n".join(lines)
