"""ASCII map rendering of synthetic cities and detection results.

Each region grid cell is drawn as a single character, so a 40x48 city becomes
a 40-line block of text.  The renderers cover the qualitative artefacts of
the paper:

* the hidden land-use map of a synthetic city (simulator ground truth);
* the labelling situation (labelled UV / labelled non-UV / unlabeled);
* the Figure 7 style detection map comparing a detector's top-p% regions with
  the ground-truth urban villages;
* the latent cluster membership learned by GSCM;
* a coarse heat map of predicted probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..synth.city import SyntheticCity
from ..synth.config import LAND_USE_NAMES, LandUse
from ..urg.graph import UrbanRegionGraph

#: Character used for each land-use class on the land-use map.
LAND_USE_CHARS: Dict[int, str] = {
    int(LandUse.WATER_GREEN): "~",
    int(LandUse.SUBURB): ".",
    int(LandUse.INDUSTRIAL): "i",
    int(LandUse.RESIDENTIAL): "r",
    int(LandUse.DOWNTOWN): "D",
    int(LandUse.URBAN_VILLAGE): "V",
}

#: Ramp used by the probability heat map (low -> high).
SCORE_RAMP = " .:-=+*#%@"


@dataclass
class MapLegend:
    """A legend block printed under a map."""

    entries: Dict[str, str]

    def render(self) -> str:
        return "\n".join(f"  {symbol}  {meaning}" for symbol, meaning in self.entries.items())


def _canvas(height: int, width: int, fill: str = " ") -> np.ndarray:
    return np.full((height, width), fill, dtype="<U1")


def _canvas_to_text(canvas: np.ndarray, legend: Optional[MapLegend] = None,
                    title: Optional[str] = None) -> str:
    lines = []
    if title:
        lines.append(title)
    lines.extend("".join(row) for row in canvas)
    if legend is not None:
        lines.append("")
        lines.append(legend.render())
    return "\n".join(lines)


def render_land_use_map(city: SyntheticCity, title: Optional[str] = None,
                        with_legend: bool = True) -> str:
    """Render the hidden land-use map of a synthetic city."""
    land_use = city.land_use.land_use
    height, width = land_use.shape
    canvas = _canvas(height, width)
    for code, char in LAND_USE_CHARS.items():
        canvas[land_use == code] = char
    legend = None
    if with_legend:
        legend = MapLegend({char: LAND_USE_NAMES[LandUse(code)]
                            for code, char in LAND_USE_CHARS.items()})
    return _canvas_to_text(canvas, legend, title or f"{city.name}: latent land use")


def _node_coordinates(graph: UrbanRegionGraph) -> np.ndarray:
    """Row/column of every node in the full city grid, shape ``(N, 2)``."""
    width = graph.grid_shape[1]
    rows, cols = np.divmod(graph.region_index.astype(np.int64), width)
    return np.stack([rows, cols], axis=1)


def render_label_map(graph: UrbanRegionGraph, title: Optional[str] = None,
                     with_legend: bool = True) -> str:
    """Render the labelling situation of an URG.

    ``U`` labelled urban village, ``n`` labelled non-UV, ``?`` unlabeled
    region inside the main urban area, blank outside the main area.
    """
    height, width = graph.grid_shape
    canvas = _canvas(height, width)
    coords = _node_coordinates(graph)
    for node, (row, col) in enumerate(coords):
        if graph.labels[node] == 1:
            canvas[row, col] = "U"
        elif graph.labels[node] == 0:
            canvas[row, col] = "n"
        else:
            canvas[row, col] = "?"
    legend = MapLegend({"U": "labelled urban village", "n": "labelled non-UV",
                        "?": "unlabeled region", " ": "outside main urban area"}) \
        if with_legend else None
    return _canvas_to_text(canvas, legend, title or f"{graph.name}: labels")


def render_detection_map(graph: UrbanRegionGraph, detected: Sequence[int],
                         title: Optional[str] = None,
                         with_legend: bool = True) -> str:
    """Figure 7 style map comparing detections against ground truth.

    ``#`` detected true UV (hit), ``o`` detected non-UV (false alarm),
    ``.`` missed true UV, blank elsewhere.
    """
    height, width = graph.grid_shape
    canvas = _canvas(height, width)
    coords = _node_coordinates(graph)
    for node in np.flatnonzero(graph.ground_truth == 1):
        row, col = coords[node]
        canvas[row, col] = "."
    detected = np.asarray(list(detected), dtype=np.int64)
    for node in detected:
        row, col = coords[int(node)]
        canvas[row, col] = "#" if graph.ground_truth[int(node)] == 1 else "o"
    legend = MapLegend({"#": "detected true UV", "o": "false alarm",
                        ".": "missed true UV"}) if with_legend else None
    return _canvas_to_text(canvas, legend, title or f"{graph.name}: detections")


def render_cluster_map(graph: UrbanRegionGraph, assignment: np.ndarray,
                       title: Optional[str] = None,
                       max_clusters: int = 62) -> str:
    """Render the hard GSCM cluster membership of every region.

    Clusters are drawn with ``0-9a-zA-Z`` (cluster ids above ``max_clusters``
    all share ``*``), which is enough to eyeball whether the clustering is
    spatially coherent or purely semantic.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape[0] != graph.num_nodes:
        raise ValueError("assignment must have one entry per node")
    alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    height, width = graph.grid_shape
    canvas = _canvas(height, width)
    coords = _node_coordinates(graph)
    for node, (row, col) in enumerate(coords):
        cluster = int(assignment[node])
        canvas[row, col] = alphabet[cluster] if cluster < min(max_clusters, len(alphabet)) else "*"
    return _canvas_to_text(canvas, None, title or f"{graph.name}: latent clusters")


def render_score_map(graph: UrbanRegionGraph, scores: np.ndarray,
                     title: Optional[str] = None) -> str:
    """Render predicted UV probabilities as a character heat map."""
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape[0] != graph.num_nodes:
        raise ValueError("scores must have one entry per node")
    low, high = float(np.nanmin(scores)), float(np.nanmax(scores))
    span = max(high - low, 1e-12)
    height, width = graph.grid_shape
    canvas = _canvas(height, width)
    coords = _node_coordinates(graph)
    for node, (row, col) in enumerate(coords):
        level = (scores[node] - low) / span
        index = int(round(level * (len(SCORE_RAMP) - 1)))
        canvas[row, col] = SCORE_RAMP[index]
    legend = MapLegend({SCORE_RAMP[0]: f"lowest score ({low:.3f})",
                        SCORE_RAMP[-1]: f"highest score ({high:.3f})"})
    return _canvas_to_text(canvas, legend, title or f"{graph.name}: predicted UV probability")
